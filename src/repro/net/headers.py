"""Byte-accurate protocol headers for RoCEv2 traffic.

Implements the header stack Lumina observes on the wire:

    Ethernet / IPv4 / UDP / IB BTH / [RETH | AETH] / payload / iCRC

Every header packs to and parses from real wire bytes, which is what the
traffic-dumper records store (trimmed to the first 128 bytes, §5) and
what the analyzers parse back. The switch's metadata-embedding trick
(§3.4) — rewriting TTL, source MAC and destination MAC of mirrored
packets — therefore works on genuine header fields here too.

Opcodes and field layouts follow the InfiniBand Architecture
Specification (RC transport) and the RoCEv2 annex; only the fields
Lumina needs are modelled, but the byte offsets and sizes are faithful.

Hot-path note: each layout is compiled once into a module-level
:class:`struct.Struct` codec and every header class is slotted — a
simulated run packs hundreds of thousands of headers, so the per-call
format-string parse and per-instance ``__dict__`` both matter. The
classes keep dataclass-equivalent semantics (field order, defaults,
``__eq__`` by value with ``NotImplemented`` across types, unhashable,
``repr`` listing every field) so call sites and pickled artifacts are
unaffected.
"""

from __future__ import annotations

from enum import IntEnum
from struct import Struct

__all__ = [
    "Opcode",
    "AethSyndrome",
    "EthernetHeader",
    "Ipv4Header",
    "UdpHeader",
    "BaseTransportHeader",
    "RdmaExtendedHeader",
    "AckExtendedHeader",
    "ETH_HEADER_LEN",
    "IPV4_HEADER_LEN",
    "UDP_HEADER_LEN",
    "BTH_LEN",
    "RETH_LEN",
    "AETH_LEN",
    "ICRC_LEN",
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "ETHERTYPE_IPV4",
    "IPPROTO_UDP",
]

ETH_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
BTH_LEN = 12
RETH_LEN = 16
AETH_LEN = 4
ICRC_LEN = 4

ETHERTYPE_IPV4 = 0x0800
IPPROTO_UDP = 17

# IP ECN codepoints (RFC 3168).
ECN_NOT_ECT = 0b00
ECN_ECT1 = 0b01
ECN_ECT0 = 0b10
ECN_CE = 0b11

# Precompiled wire codecs — one Struct per layout, compiled at import.
_ETH = Struct("!6s6sH")
_IPV4 = Struct("!BBHHHBBHII")
_UDP = Struct("!HHHH")
_BTH = Struct("!BBHB3sB3s")
_RETH = Struct("!QII")
_AETH = Struct("!B3s")

_ETH_PACK = _ETH.pack
_IPV4_PACK = _IPV4.pack
_UDP_PACK = _UDP.pack
_BTH_PACK = _BTH.pack
_RETH_PACK = _RETH.pack
_AETH_PACK = _AETH.pack


class Opcode(IntEnum):
    """IB RC transport opcodes (subset used by Lumina's traffic)."""

    SEND_FIRST = 0x00
    SEND_MIDDLE = 0x01
    SEND_LAST = 0x02
    SEND_ONLY = 0x04
    RDMA_WRITE_FIRST = 0x06
    RDMA_WRITE_MIDDLE = 0x07
    RDMA_WRITE_LAST = 0x08
    RDMA_WRITE_ONLY = 0x0A
    RDMA_READ_REQUEST = 0x0C
    RDMA_READ_RESPONSE_FIRST = 0x0D
    RDMA_READ_RESPONSE_MIDDLE = 0x0E
    RDMA_READ_RESPONSE_LAST = 0x0F
    RDMA_READ_RESPONSE_ONLY = 0x10
    ACKNOWLEDGE = 0x11
    # RoCEv2 congestion notification packet (CNP) opcode.
    CNP = 0x81

    @property
    def is_data(self) -> bool:
        """True for packets that carry message payload toward the receiver.

        Lumina's event injector only targets data packets (§3.3): for
        Read that is the read *response* stream, for Write/Send the
        request stream. Read requests, ACK/NAK and CNPs are control.
        """
        return self in _DATA_OPCODES

    @property
    def is_read_response(self) -> bool:
        return self in (
            Opcode.RDMA_READ_RESPONSE_FIRST,
            Opcode.RDMA_READ_RESPONSE_MIDDLE,
            Opcode.RDMA_READ_RESPONSE_LAST,
            Opcode.RDMA_READ_RESPONSE_ONLY,
        )

    @property
    def is_send(self) -> bool:
        return self in (
            Opcode.SEND_FIRST,
            Opcode.SEND_MIDDLE,
            Opcode.SEND_LAST,
            Opcode.SEND_ONLY,
        )

    @property
    def is_write(self) -> bool:
        return self in (
            Opcode.RDMA_WRITE_FIRST,
            Opcode.RDMA_WRITE_MIDDLE,
            Opcode.RDMA_WRITE_LAST,
            Opcode.RDMA_WRITE_ONLY,
        )

    @property
    def is_first(self) -> bool:
        return self in (
            Opcode.SEND_FIRST,
            Opcode.RDMA_WRITE_FIRST,
            Opcode.RDMA_READ_RESPONSE_FIRST,
        )

    @property
    def is_last(self) -> bool:
        """True if this packet completes a message (LAST or ONLY)."""
        return self in (
            Opcode.SEND_LAST,
            Opcode.SEND_ONLY,
            Opcode.RDMA_WRITE_LAST,
            Opcode.RDMA_WRITE_ONLY,
            Opcode.RDMA_READ_RESPONSE_LAST,
            Opcode.RDMA_READ_RESPONSE_ONLY,
        )


#: Wire value -> member, for the BTH decode hot path. ``Opcode(x)``
#: goes through EnumMeta.__call__, which costs several times a dict hit.
_OPCODE_BY_VALUE = {member.value: member for member in Opcode}

_DATA_OPCODES = frozenset(
    {
        Opcode.SEND_FIRST,
        Opcode.SEND_MIDDLE,
        Opcode.SEND_LAST,
        Opcode.SEND_ONLY,
        Opcode.RDMA_WRITE_FIRST,
        Opcode.RDMA_WRITE_MIDDLE,
        Opcode.RDMA_WRITE_LAST,
        Opcode.RDMA_WRITE_ONLY,
        Opcode.RDMA_READ_RESPONSE_FIRST,
        Opcode.RDMA_READ_RESPONSE_MIDDLE,
        Opcode.RDMA_READ_RESPONSE_LAST,
        Opcode.RDMA_READ_RESPONSE_ONLY,
    }
)


class AethSyndrome(IntEnum):
    """AETH syndrome high bits: ACK vs NAK classes (IB spec 9.7.5.2.4)."""

    ACK = 0b000
    RNR_NAK = 0b001
    NAK = 0b011

    @staticmethod
    def encode(kind: "AethSyndrome", code: int = 0) -> int:
        """Build the 8-bit syndrome field from class + 5-bit code/credit."""
        if not 0 <= code <= 0x1F:
            raise ValueError(f"syndrome code out of range: {code}")
        return (int(kind) << 5) | code

    @staticmethod
    def decode(syndrome: int) -> tuple:
        """Split the 8-bit syndrome into (class, code)."""
        return AethSyndrome((syndrome >> 5) & 0x7), syndrome & 0x1F


#: NAK code for a PSN sequence error (the Go-back-N NAK).
NAK_PSN_SEQUENCE_ERROR = 0


class EthernetHeader:
    """Ethernet II header. MACs are 48-bit integers."""

    __slots__ = ("dst_mac", "src_mac", "ethertype")
    __hash__ = None  # value-equal like the dataclass it replaced

    def __init__(self, dst_mac: int = 0, src_mac: int = 0,
                 ethertype: int = ETHERTYPE_IPV4):
        self.dst_mac = dst_mac
        self.src_mac = src_mac
        self.ethertype = ethertype

    def pack(self) -> bytes:
        return _ETH_PACK(
            self.dst_mac.to_bytes(6, "big"),
            self.src_mac.to_bytes(6, "big"),
            self.ethertype,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "EthernetHeader":
        if len(data) - offset < ETH_HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst, src, ethertype = _ETH.unpack_from(data, offset)
        return cls(int.from_bytes(dst, "big"), int.from_bytes(src, "big"),
                   ethertype)

    def copy(self) -> "EthernetHeader":
        return EthernetHeader(self.dst_mac, self.src_mac, self.ethertype)

    def __eq__(self, other: object) -> object:
        if other.__class__ is not EthernetHeader:
            return NotImplemented
        return (self.dst_mac == other.dst_mac
                and self.src_mac == other.src_mac
                and self.ethertype == other.ethertype)

    def __repr__(self) -> str:
        return (f"EthernetHeader(dst_mac={self.dst_mac!r}, "
                f"src_mac={self.src_mac!r}, ethertype={self.ethertype!r})")


class Ipv4Header:
    """IPv4 header (no options). ``total_length`` covers IP header + payload."""

    __slots__ = ("src_ip", "dst_ip", "total_length", "ttl", "protocol",
                 "dscp", "ecn", "identification")
    __hash__ = None

    def __init__(self, src_ip: int = 0, dst_ip: int = 0,
                 total_length: int = IPV4_HEADER_LEN, ttl: int = 64,
                 protocol: int = IPPROTO_UDP, dscp: int = 0,
                 ecn: int = ECN_ECT0, identification: int = 0):
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.total_length = total_length
        self.ttl = ttl
        self.protocol = protocol
        self.dscp = dscp
        self.ecn = ecn
        self.identification = identification

    def pack(self) -> bytes:
        return _IPV4_PACK(
            (4 << 4) | 5,  # version + IHL
            ((self.dscp & 0x3F) << 2) | (self.ecn & 0x3),
            self.total_length,
            self.identification,
            0,  # flags + fragment offset
            self.ttl,
            self.protocol,
            0,  # header checksum (not modelled; iCRC covers integrity)
            self.src_ip,
            self.dst_ip,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Ipv4Header":
        if len(data) - offset < IPV4_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (version_ihl, tos, total_length, identification, _frag, ttl, protocol,
         _csum, src_ip, dst_ip) = _IPV4.unpack_from(data, offset)
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        return cls(src_ip, dst_ip, total_length, ttl, protocol,
                   tos >> 2, tos & 0x3, identification)

    def copy(self) -> "Ipv4Header":
        return Ipv4Header(
            self.src_ip, self.dst_ip, self.total_length, self.ttl,
            self.protocol, self.dscp, self.ecn, self.identification,
        )

    def __eq__(self, other: object) -> object:
        if other.__class__ is not Ipv4Header:
            return NotImplemented
        return (self.src_ip == other.src_ip
                and self.dst_ip == other.dst_ip
                and self.total_length == other.total_length
                and self.ttl == other.ttl
                and self.protocol == other.protocol
                and self.dscp == other.dscp
                and self.ecn == other.ecn
                and self.identification == other.identification)

    def __repr__(self) -> str:
        return (f"Ipv4Header(src_ip={self.src_ip!r}, dst_ip={self.dst_ip!r}, "
                f"total_length={self.total_length!r}, ttl={self.ttl!r}, "
                f"protocol={self.protocol!r}, dscp={self.dscp!r}, "
                f"ecn={self.ecn!r}, identification={self.identification!r})")


class UdpHeader:
    """UDP header. RoCEv2 uses destination port 4791."""

    __slots__ = ("src_port", "dst_port", "length")
    __hash__ = None

    def __init__(self, src_port: int = 0, dst_port: int = 4791,
                 length: int = UDP_HEADER_LEN):
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length

    def pack(self) -> bytes:
        return _UDP_PACK(self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "UdpHeader":
        if len(data) - offset < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, _csum = _UDP.unpack_from(data, offset)
        return cls(src_port, dst_port, length)

    def copy(self) -> "UdpHeader":
        return UdpHeader(self.src_port, self.dst_port, self.length)

    def __eq__(self, other: object) -> object:
        if other.__class__ is not UdpHeader:
            return NotImplemented
        return (self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.length == other.length)

    def __repr__(self) -> str:
        return (f"UdpHeader(src_port={self.src_port!r}, "
                f"dst_port={self.dst_port!r}, length={self.length!r})")


class BaseTransportHeader:
    """IB Base Transport Header (BTH), 12 bytes.

    Byte 1 carries SE (solicited event), **M (MigReq)** — the field at
    the heart of the CX5/E810 interoperability bug (§6.2.3) — pad count
    and transport version. The A bit (ack request) lives in byte 8.
    """

    __slots__ = ("opcode", "solicited", "migreq", "pad_count", "pkey",
                 "dest_qp", "ack_request", "psn", "becn")
    __hash__ = None

    def __init__(self, opcode: Opcode = Opcode.SEND_ONLY,
                 solicited: bool = False, migreq: bool = True,
                 pad_count: int = 0, pkey: int = 0xFFFF, dest_qp: int = 0,
                 ack_request: bool = False, psn: int = 0, becn: bool = False):
        self.opcode = opcode
        self.solicited = solicited
        self.migreq = migreq
        self.pad_count = pad_count
        self.pkey = pkey
        self.dest_qp = dest_qp
        self.ack_request = ack_request
        self.psn = psn
        # FECN-equivalent bit: RoCEv2 carries congestion in IP.ECN, but
        # the BTH reserved byte is kept for layout fidelity.
        self.becn = becn

    def pack(self) -> bytes:
        return _BTH_PACK(
            int(self.opcode),
            # byte 1: SE | M | pad | transport version (0)
            (int(self.solicited) << 7)
            | (int(self.migreq) << 6)
            | ((self.pad_count & 0x3) << 4),
            self.pkey,
            int(self.becn) << 6,  # reserved byte carries the BECN bit
            (self.dest_qp & 0xFFFFFF).to_bytes(3, "big"),
            int(self.ack_request) << 7,
            (self.psn & 0xFFFFFF).to_bytes(3, "big"),
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "BaseTransportHeader":
        if len(data) - offset < BTH_LEN:
            raise ValueError("truncated BTH")
        opcode, byte1, pkey, resv, dqp, abyte, psn = _BTH.unpack_from(data,
                                                                      offset)
        try:
            # Dict lookup instead of the (slow) EnumMeta call path.
            opcode = _OPCODE_BY_VALUE[opcode]
        except KeyError:
            raise ValueError(f"{opcode} is not a valid Opcode") from None
        return cls(
            opcode,
            bool(byte1 & 0x80),          # solicited
            bool(byte1 & 0x40),          # migreq
            (byte1 >> 4) & 0x3,          # pad_count
            pkey,
            int.from_bytes(dqp, "big"),  # dest_qp
            bool(abyte & 0x80),          # ack_request
            int.from_bytes(psn, "big"),  # psn
            bool(resv & 0x40),           # becn
        )

    def copy(self) -> "BaseTransportHeader":
        return BaseTransportHeader(
            self.opcode, self.solicited, self.migreq, self.pad_count,
            self.pkey, self.dest_qp, self.ack_request, self.psn, self.becn,
        )

    def __eq__(self, other: object) -> object:
        if other.__class__ is not BaseTransportHeader:
            return NotImplemented
        return (self.opcode == other.opcode
                and self.solicited == other.solicited
                and self.migreq == other.migreq
                and self.pad_count == other.pad_count
                and self.pkey == other.pkey
                and self.dest_qp == other.dest_qp
                and self.ack_request == other.ack_request
                and self.psn == other.psn
                and self.becn == other.becn)

    def __repr__(self) -> str:
        return (f"BaseTransportHeader(opcode={self.opcode!r}, "
                f"solicited={self.solicited!r}, migreq={self.migreq!r}, "
                f"pad_count={self.pad_count!r}, pkey={self.pkey!r}, "
                f"dest_qp={self.dest_qp!r}, ack_request={self.ack_request!r}, "
                f"psn={self.psn!r}, becn={self.becn!r})")


class RdmaExtendedHeader:
    """RETH: virtual address, rkey and DMA length (Write / Read request)."""

    __slots__ = ("virtual_address", "rkey", "dma_length")
    __hash__ = None

    def __init__(self, virtual_address: int = 0, rkey: int = 0,
                 dma_length: int = 0):
        self.virtual_address = virtual_address
        self.rkey = rkey
        self.dma_length = dma_length

    def pack(self) -> bytes:
        return _RETH_PACK(self.virtual_address, self.rkey, self.dma_length)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "RdmaExtendedHeader":
        if len(data) - offset < RETH_LEN:
            raise ValueError("truncated RETH")
        va, rkey, dma_len = _RETH.unpack_from(data, offset)
        return cls(va, rkey, dma_len)

    def copy(self) -> "RdmaExtendedHeader":
        return RdmaExtendedHeader(self.virtual_address, self.rkey, self.dma_length)

    def __eq__(self, other: object) -> object:
        if other.__class__ is not RdmaExtendedHeader:
            return NotImplemented
        return (self.virtual_address == other.virtual_address
                and self.rkey == other.rkey
                and self.dma_length == other.dma_length)

    def __repr__(self) -> str:
        return (f"RdmaExtendedHeader(virtual_address={self.virtual_address!r}, "
                f"rkey={self.rkey!r}, dma_length={self.dma_length!r})")


class AckExtendedHeader:
    """AETH: syndrome + MSN, carried by ACK/NAK and read-response packets."""

    __slots__ = ("syndrome", "msn")
    __hash__ = None

    def __init__(self, syndrome: int = 0, msn: int = 0):
        self.syndrome = syndrome
        self.msn = msn

    def pack(self) -> bytes:
        return _AETH_PACK(self.syndrome, (self.msn & 0xFFFFFF).to_bytes(3, "big"))

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "AckExtendedHeader":
        if len(data) - offset < AETH_LEN:
            raise ValueError("truncated AETH")
        syndrome, msn = _AETH.unpack_from(data, offset)
        return cls(syndrome, int.from_bytes(msn, "big"))

    @property
    def is_ack(self) -> bool:
        kind, _ = AethSyndrome.decode(self.syndrome)
        return kind == AethSyndrome.ACK

    @property
    def is_nak(self) -> bool:
        kind, _ = AethSyndrome.decode(self.syndrome)
        return kind == AethSyndrome.NAK

    @property
    def is_rnr(self) -> bool:
        kind, _ = AethSyndrome.decode(self.syndrome)
        return kind == AethSyndrome.RNR_NAK

    @classmethod
    def ack(cls, msn: int = 0) -> "AckExtendedHeader":
        return cls(syndrome=AethSyndrome.encode(AethSyndrome.ACK, 0x1F), msn=msn)

    @classmethod
    def rnr_nak(cls, timer_code: int = 1, msn: int = 0) -> "AckExtendedHeader":
        """Receiver-not-ready NAK: no receive WQE for an inbound Send."""
        return cls(syndrome=AethSyndrome.encode(AethSyndrome.RNR_NAK, timer_code),
                   msn=msn)

    @classmethod
    def nak_sequence_error(cls, msn: int = 0) -> "AckExtendedHeader":
        return cls(
            syndrome=AethSyndrome.encode(AethSyndrome.NAK, NAK_PSN_SEQUENCE_ERROR),
            msn=msn,
        )

    def copy(self) -> "AckExtendedHeader":
        return AckExtendedHeader(self.syndrome, self.msn)

    def __eq__(self, other: object) -> object:
        if other.__class__ is not AckExtendedHeader:
            return NotImplemented
        return self.syndrome == other.syndrome and self.msn == other.msn

    def __repr__(self) -> str:
        return f"AckExtendedHeader(syndrome={self.syndrome!r}, msn={self.msn!r})"
