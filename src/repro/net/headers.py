"""Byte-accurate protocol headers for RoCEv2 traffic.

Implements the header stack Lumina observes on the wire:

    Ethernet / IPv4 / UDP / IB BTH / [RETH | AETH] / payload / iCRC

Every header packs to and parses from real wire bytes, which is what the
traffic-dumper records store (trimmed to the first 128 bytes, §5) and
what the analyzers parse back. The switch's metadata-embedding trick
(§3.4) — rewriting TTL, source MAC and destination MAC of mirrored
packets — therefore works on genuine header fields here too.

Opcodes and field layouts follow the InfiniBand Architecture
Specification (RC transport) and the RoCEv2 annex; only the fields
Lumina needs are modelled, but the byte offsets and sizes are faithful.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

__all__ = [
    "Opcode",
    "AethSyndrome",
    "EthernetHeader",
    "Ipv4Header",
    "UdpHeader",
    "BaseTransportHeader",
    "RdmaExtendedHeader",
    "AckExtendedHeader",
    "ETH_HEADER_LEN",
    "IPV4_HEADER_LEN",
    "UDP_HEADER_LEN",
    "BTH_LEN",
    "RETH_LEN",
    "AETH_LEN",
    "ICRC_LEN",
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "ETHERTYPE_IPV4",
    "IPPROTO_UDP",
]

ETH_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
BTH_LEN = 12
RETH_LEN = 16
AETH_LEN = 4
ICRC_LEN = 4

ETHERTYPE_IPV4 = 0x0800
IPPROTO_UDP = 17

# IP ECN codepoints (RFC 3168).
ECN_NOT_ECT = 0b00
ECN_ECT1 = 0b01
ECN_ECT0 = 0b10
ECN_CE = 0b11


class Opcode(IntEnum):
    """IB RC transport opcodes (subset used by Lumina's traffic)."""

    SEND_FIRST = 0x00
    SEND_MIDDLE = 0x01
    SEND_LAST = 0x02
    SEND_ONLY = 0x04
    RDMA_WRITE_FIRST = 0x06
    RDMA_WRITE_MIDDLE = 0x07
    RDMA_WRITE_LAST = 0x08
    RDMA_WRITE_ONLY = 0x0A
    RDMA_READ_REQUEST = 0x0C
    RDMA_READ_RESPONSE_FIRST = 0x0D
    RDMA_READ_RESPONSE_MIDDLE = 0x0E
    RDMA_READ_RESPONSE_LAST = 0x0F
    RDMA_READ_RESPONSE_ONLY = 0x10
    ACKNOWLEDGE = 0x11
    # RoCEv2 congestion notification packet (CNP) opcode.
    CNP = 0x81

    @property
    def is_data(self) -> bool:
        """True for packets that carry message payload toward the receiver.

        Lumina's event injector only targets data packets (§3.3): for
        Read that is the read *response* stream, for Write/Send the
        request stream. Read requests, ACK/NAK and CNPs are control.
        """
        return self in _DATA_OPCODES

    @property
    def is_read_response(self) -> bool:
        return self in (
            Opcode.RDMA_READ_RESPONSE_FIRST,
            Opcode.RDMA_READ_RESPONSE_MIDDLE,
            Opcode.RDMA_READ_RESPONSE_LAST,
            Opcode.RDMA_READ_RESPONSE_ONLY,
        )

    @property
    def is_send(self) -> bool:
        return self in (
            Opcode.SEND_FIRST,
            Opcode.SEND_MIDDLE,
            Opcode.SEND_LAST,
            Opcode.SEND_ONLY,
        )

    @property
    def is_write(self) -> bool:
        return self in (
            Opcode.RDMA_WRITE_FIRST,
            Opcode.RDMA_WRITE_MIDDLE,
            Opcode.RDMA_WRITE_LAST,
            Opcode.RDMA_WRITE_ONLY,
        )

    @property
    def is_first(self) -> bool:
        return self in (
            Opcode.SEND_FIRST,
            Opcode.RDMA_WRITE_FIRST,
            Opcode.RDMA_READ_RESPONSE_FIRST,
        )

    @property
    def is_last(self) -> bool:
        """True if this packet completes a message (LAST or ONLY)."""
        return self in (
            Opcode.SEND_LAST,
            Opcode.SEND_ONLY,
            Opcode.RDMA_WRITE_LAST,
            Opcode.RDMA_WRITE_ONLY,
            Opcode.RDMA_READ_RESPONSE_LAST,
            Opcode.RDMA_READ_RESPONSE_ONLY,
        )


_DATA_OPCODES = frozenset(
    {
        Opcode.SEND_FIRST,
        Opcode.SEND_MIDDLE,
        Opcode.SEND_LAST,
        Opcode.SEND_ONLY,
        Opcode.RDMA_WRITE_FIRST,
        Opcode.RDMA_WRITE_MIDDLE,
        Opcode.RDMA_WRITE_LAST,
        Opcode.RDMA_WRITE_ONLY,
        Opcode.RDMA_READ_RESPONSE_FIRST,
        Opcode.RDMA_READ_RESPONSE_MIDDLE,
        Opcode.RDMA_READ_RESPONSE_LAST,
        Opcode.RDMA_READ_RESPONSE_ONLY,
    }
)


class AethSyndrome(IntEnum):
    """AETH syndrome high bits: ACK vs NAK classes (IB spec 9.7.5.2.4)."""

    ACK = 0b000
    RNR_NAK = 0b001
    NAK = 0b011

    @staticmethod
    def encode(kind: "AethSyndrome", code: int = 0) -> int:
        """Build the 8-bit syndrome field from class + 5-bit code/credit."""
        if not 0 <= code <= 0x1F:
            raise ValueError(f"syndrome code out of range: {code}")
        return (int(kind) << 5) | code

    @staticmethod
    def decode(syndrome: int) -> tuple:
        """Split the 8-bit syndrome into (class, code)."""
        return AethSyndrome((syndrome >> 5) & 0x7), syndrome & 0x1F


#: NAK code for a PSN sequence error (the Go-back-N NAK).
NAK_PSN_SEQUENCE_ERROR = 0


@dataclass
class EthernetHeader:
    """Ethernet II header. MACs are 48-bit integers."""

    dst_mac: int = 0
    src_mac: int = 0
    ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        return (
            self.dst_mac.to_bytes(6, "big")
            + self.src_mac.to_bytes(6, "big")
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < ETH_HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        return cls(
            dst_mac=int.from_bytes(data[0:6], "big"),
            src_mac=int.from_bytes(data[6:12], "big"),
            ethertype=struct.unpack("!H", data[12:14])[0],
        )

    def copy(self) -> "EthernetHeader":
        return EthernetHeader(self.dst_mac, self.src_mac, self.ethertype)


@dataclass
class Ipv4Header:
    """IPv4 header (no options). ``total_length`` covers IP header + payload."""

    src_ip: int = 0
    dst_ip: int = 0
    total_length: int = IPV4_HEADER_LEN
    ttl: int = 64
    protocol: int = IPPROTO_UDP
    dscp: int = 0
    ecn: int = ECN_ECT0
    identification: int = 0

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        tos = ((self.dscp & 0x3F) << 2) | (self.ecn & 0x3)
        return struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            tos,
            self.total_length,
            self.identification,
            0,  # flags + fragment offset
            self.ttl,
            self.protocol,
            0,  # header checksum (not modelled; iCRC covers integrity)
            self.src_ip,
            self.dst_ip,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (version_ihl, tos, total_length, identification, _frag, ttl, protocol,
         _csum, src_ip, dst_ip) = struct.unpack("!BBHHHBBHII", data[:IPV4_HEADER_LEN])
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        return cls(
            src_ip=src_ip,
            dst_ip=dst_ip,
            total_length=total_length,
            ttl=ttl,
            protocol=protocol,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            identification=identification,
        )

    def copy(self) -> "Ipv4Header":
        return Ipv4Header(
            self.src_ip, self.dst_ip, self.total_length, self.ttl,
            self.protocol, self.dscp, self.ecn, self.identification,
        )


@dataclass
class UdpHeader:
    """UDP header. RoCEv2 uses destination port 4791."""

    src_port: int = 0
    dst_port: int = 4791
    length: int = UDP_HEADER_LEN

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, _csum = struct.unpack("!HHHH", data[:UDP_HEADER_LEN])
        return cls(src_port=src_port, dst_port=dst_port, length=length)

    def copy(self) -> "UdpHeader":
        return UdpHeader(self.src_port, self.dst_port, self.length)


@dataclass
class BaseTransportHeader:
    """IB Base Transport Header (BTH), 12 bytes.

    Byte 1 carries SE (solicited event), **M (MigReq)** — the field at
    the heart of the CX5/E810 interoperability bug (§6.2.3) — pad count
    and transport version. The A bit (ack request) lives in byte 8.
    """

    opcode: Opcode = Opcode.SEND_ONLY
    solicited: bool = False
    migreq: bool = True
    pad_count: int = 0
    pkey: int = 0xFFFF
    dest_qp: int = 0
    ack_request: bool = False
    psn: int = 0
    # FECN-equivalent bit: RoCEv2 carries congestion in IP.ECN, but the
    # BTH reserved byte is kept for layout fidelity.
    becn: bool = False

    def pack(self) -> bytes:
        byte1 = (
            (int(self.solicited) << 7)
            | (int(self.migreq) << 6)
            | ((self.pad_count & 0x3) << 4)
            | 0x0  # transport version
        )
        resv = int(self.becn) << 6
        return struct.pack(
            "!BBHB3sB3s",
            int(self.opcode),
            byte1,
            self.pkey,
            resv,
            (self.dest_qp & 0xFFFFFF).to_bytes(3, "big"),
            int(self.ack_request) << 7,
            (self.psn & 0xFFFFFF).to_bytes(3, "big"),
        )

    @classmethod
    def unpack(cls, data: bytes) -> "BaseTransportHeader":
        if len(data) < BTH_LEN:
            raise ValueError("truncated BTH")
        opcode, byte1, pkey, resv, dqp, abyte, psn = struct.unpack(
            "!BBHB3sB3s", data[:BTH_LEN]
        )
        return cls(
            opcode=Opcode(opcode),
            solicited=bool(byte1 & 0x80),
            migreq=bool(byte1 & 0x40),
            pad_count=(byte1 >> 4) & 0x3,
            pkey=pkey,
            dest_qp=int.from_bytes(dqp, "big"),
            ack_request=bool(abyte & 0x80),
            psn=int.from_bytes(psn, "big"),
            becn=bool(resv & 0x40),
        )

    def copy(self) -> "BaseTransportHeader":
        return BaseTransportHeader(
            self.opcode, self.solicited, self.migreq, self.pad_count,
            self.pkey, self.dest_qp, self.ack_request, self.psn, self.becn,
        )


@dataclass
class RdmaExtendedHeader:
    """RETH: virtual address, rkey and DMA length (Write / Read request)."""

    virtual_address: int = 0
    rkey: int = 0
    dma_length: int = 0

    def pack(self) -> bytes:
        return struct.pack("!QII", self.virtual_address, self.rkey, self.dma_length)

    @classmethod
    def unpack(cls, data: bytes) -> "RdmaExtendedHeader":
        if len(data) < RETH_LEN:
            raise ValueError("truncated RETH")
        va, rkey, dma_len = struct.unpack("!QII", data[:RETH_LEN])
        return cls(virtual_address=va, rkey=rkey, dma_length=dma_len)

    def copy(self) -> "RdmaExtendedHeader":
        return RdmaExtendedHeader(self.virtual_address, self.rkey, self.dma_length)


@dataclass
class AckExtendedHeader:
    """AETH: syndrome + MSN, carried by ACK/NAK and read-response packets."""

    syndrome: int = 0
    msn: int = 0

    def pack(self) -> bytes:
        return struct.pack("!B3s", self.syndrome, (self.msn & 0xFFFFFF).to_bytes(3, "big"))

    @classmethod
    def unpack(cls, data: bytes) -> "AckExtendedHeader":
        if len(data) < AETH_LEN:
            raise ValueError("truncated AETH")
        syndrome, msn = struct.unpack("!B3s", data[:AETH_LEN])
        return cls(syndrome=syndrome, msn=int.from_bytes(msn, "big"))

    @property
    def is_ack(self) -> bool:
        kind, _ = AethSyndrome.decode(self.syndrome)
        return kind == AethSyndrome.ACK

    @property
    def is_nak(self) -> bool:
        kind, _ = AethSyndrome.decode(self.syndrome)
        return kind == AethSyndrome.NAK

    @property
    def is_rnr(self) -> bool:
        kind, _ = AethSyndrome.decode(self.syndrome)
        return kind == AethSyndrome.RNR_NAK

    @classmethod
    def ack(cls, msn: int = 0) -> "AckExtendedHeader":
        return cls(syndrome=AethSyndrome.encode(AethSyndrome.ACK, 0x1F), msn=msn)

    @classmethod
    def rnr_nak(cls, timer_code: int = 1, msn: int = 0) -> "AckExtendedHeader":
        """Receiver-not-ready NAK: no receive WQE for an inbound Send."""
        return cls(syndrome=AethSyndrome.encode(AethSyndrome.RNR_NAK, timer_code),
                   msn=msn)

    @classmethod
    def nak_sequence_error(cls, msn: int = 0) -> "AckExtendedHeader":
        return cls(
            syndrome=AethSyndrome.encode(AethSyndrome.NAK, NAK_PSN_SEQUENCE_ERROR),
            msn=msn,
        )

    def copy(self) -> "AckExtendedHeader":
        return AckExtendedHeader(self.syndrome, self.msn)
