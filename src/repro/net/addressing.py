"""MAC / IPv4 address helpers.

Addresses are stored as integers internally (cheap to hash and compare
in match-action tables) with helpers to render and parse the usual
string forms. The GID used by RoCEv2 traffic generators is an IPv4
address (RoCEv2 uses IPv4/IPv6-based GIDs); §3.2's ``multi-gid`` option
assigns several IPs to one port to emulate traffic from multiple hosts.
"""

from __future__ import annotations

__all__ = [
    "mac_to_int",
    "int_to_mac",
    "ip_to_int",
    "int_to_ip",
    "parse_cidr",
    "ROCEV2_UDP_PORT",
]

#: UDP destination port reserved for RoCEv2 (IANA).
ROCEV2_UDP_PORT = 4791


def mac_to_int(mac: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit integer."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"invalid MAC address: {mac!r}")
    value = 0
    for part in parts:
        byte = int(part, 16)
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"invalid MAC address: {mac!r}")
        value = (value << 8) | byte
    return value


def int_to_mac(value: int) -> str:
    """Render a 48-bit integer as ``aa:bb:cc:dd:ee:ff``."""
    if not 0 <= value <= 0xFFFFFFFFFFFF:
        raise ValueError(f"MAC value out of range: {value:#x}")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in range(40, -8, -8))


def ip_to_int(ip: str) -> int:
    """Parse dotted-quad IPv4 into a 32-bit integer."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 value out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in range(24, -8, -8))


def parse_cidr(cidr: str) -> tuple:
    """Parse ``10.0.0.2/24`` into ``(ip_int, prefix_len)``.

    A bare address is accepted and treated as a /32 host route, matching
    how Listing 1's ``ip-list`` entries may omit the prefix.
    """
    if "/" in cidr:
        addr, prefix = cidr.split("/", 1)
        prefix_len = int(prefix)
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"invalid prefix length in {cidr!r}")
    else:
        addr, prefix_len = cidr, 32
    return ip_to_int(addr), prefix_len
