"""Links, ports and nodes — the physical substrate of the testbed.

A :class:`Port` models a full-duplex NIC/switch port. Its transmit side
serialises one packet at a time at the port's line rate and applies the
cable's propagation delay; an optional bounded egress buffer tail-drops
when full (and counts the drops, which the integrity check reads).

Bandwidths are bits/second, delays are nanoseconds, sizes are bytes.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from ..sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .packet import Packet

__all__ = ["Node", "Port", "connect", "gbps"]


def gbps(value: float) -> int:
    """Convert Gbit/s to bits/s."""
    return int(value * 1_000_000_000)


class Node:
    """Anything with ports: a host NIC, the switch, a dumper server."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.ports: list = []

    def add_port(self, bandwidth_bps: int, queue_bytes: Optional[int] = None,
                 name: Optional[str] = None) -> "Port":
        port = Port(
            self.sim,
            self,
            index=len(self.ports),
            bandwidth_bps=bandwidth_bps,
            queue_bytes=queue_bytes,
            name=name or f"{self.name}.p{len(self.ports)}",
        )
        self.ports.append(port)
        return port

    def handle_packet(self, port: "Port", packet: "Packet") -> None:
        """Called when a packet arrives on ``port``. Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Port:
    """One side of a full-duplex link."""

    def __init__(self, sim: Simulator, node: Node, index: int,
                 bandwidth_bps: int, queue_bytes: Optional[int], name: str):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.node = node
        self.index = index
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.queue_bytes = queue_bytes
        self.peer: Optional["Port"] = None
        self.propagation_delay_ns = 0
        # Transmit-side state: the time the serialiser frees up, and how
        # many bytes are committed but not yet on the wire (the queue).
        self._tx_free_at = 0
        self._queued_bytes = 0
        # Counters (read by the orchestrator's integrity check).
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_drops = 0
        # Optional tap invoked for every packet that leaves this port
        # (test hooks and the switch's egress counter block use this).
        self.tx_tap: Optional[Callable[["Packet"], None]] = None

    # ------------------------------------------------------------------
    def serialization_delay_ns(self, size_bytes: int) -> int:
        """Time to clock ``size_bytes`` onto the wire at line rate."""
        return (size_bytes * 8 * 1_000_000_000 + self.bandwidth_bps - 1) // self.bandwidth_bps

    @property
    def queued_bytes(self) -> int:
        """Bytes committed to the egress buffer but not yet transmitted."""
        return self._queued_bytes

    def send(self, packet: "Packet") -> bool:
        """Transmit ``packet`` to the peer port.

        Returns False (and counts a drop) if the bounded egress buffer
        would overflow. Delivery happens after queueing + serialisation
        + propagation delay; the peer node's ``handle_packet`` runs then.
        """
        if self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        size = packet.size
        now = self.sim.now
        free_at = self._tx_free_at
        if free_at <= now:
            self._queued_bytes = 0  # queue fully drained in the meantime
        if self.queue_bytes is not None and self._queued_bytes + size > self.queue_bytes:
            self.tx_drops += 1
            return False
        start = now if now > free_at else free_at
        bw = self.bandwidth_bps
        self._tx_free_at = free_at = start + (size * 8_000_000_000 + bw - 1) // bw
        self._queued_bytes += size
        self.tx_packets += 1
        self.tx_bytes += size
        if self.tx_tap is not None:
            self.tx_tap(packet)
        self.sim.schedule_at(free_at + self.propagation_delay_ns,
                             self._deliver, packet)
        return True

    def _deliver(self, packet: "Packet") -> None:
        size = packet.size
        queued = self._queued_bytes - size
        self._queued_bytes = queued if queued > 0 else 0
        peer = self.peer
        assert peer is not None
        peer.rx_packets += 1
        peer.rx_bytes += size
        peer.node.handle_packet(peer, packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} {self.bandwidth_bps / 1e9:.0f}Gbps>"


def connect(a: Port, b: Port, propagation_delay_ns: int = 500) -> None:
    """Wire two ports together with a cable of the given one-way delay.

    The 500 ns default approximates ~100 m of fibre — the scale of a
    rack-to-switch run in the paper's testbed.
    """
    if a.peer is not None or b.peer is not None:
        raise RuntimeError("port already connected")
    a.peer = b
    b.peer = a
    a.propagation_delay_ns = propagation_delay_ns
    b.propagation_delay_ns = propagation_delay_ns
