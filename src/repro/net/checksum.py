"""Invariant CRC (iCRC) for RoCEv2 packets.

RoCEv2 protects the IB transport headers and payload with a CRC32
("iCRC") computed over the packet with volatile fields (TTL, ECN, ...)
masked to ones. A corrupted packet — which Lumina's event injector can
create on purpose — fails this check at the receiving RNIC and shows up
in the ``rx_icrc_errors`` counter.

The polynomial is the standard reflected CRC-32 (0xEDB88320) used by
InfiniBand — the same one :func:`zlib.crc32` implements in C. The fold
therefore runs on zlib, with the historical table-driven pure-Python
implementation kept as ``crc32_ib_py``/``icrc_for_py`` both as a
fallback and as an independent oracle for the parity tests. The two
backends are related by a complement at the chaining boundary:
``table_fold(data, crc) ^ 0xFFFFFFFF == zlib.crc32(data, crc ^ 0xFFFFFFFF)``
so every value returned here is bit-identical whichever backend runs.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Iterable, List, Tuple

__all__ = ["crc32_ib", "icrc_for", "icrc_many", "icrc_batch_stats",
           "crc32_ib_py", "icrc_for_py"]

_POLY = 0xEDB88320

#: Reusable all-zero buffer for the simulated payload fold. Payloads in
#: the model are virtual (only their length matters), so the iCRC folds
#: ``payload_len`` zero bytes; the buffer grows to the largest payload
#: seen and is sliced with memoryview (no per-call allocation).
_ZEROS = bytes(4096)


def _zeros(n: int) -> memoryview:
    global _ZEROS
    if n > len(_ZEROS):
        _ZEROS = bytes(max(n, 2 * len(_ZEROS)))
    return memoryview(_ZEROS)[:n]


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32_ib(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """CRC-32 over ``data`` with the IB initial value, returned inverted.

    ``crc`` is a raw (non-inverted) register value, as produced by the
    table fold — callers chaining folds pass the previous *register*,
    not the previous return value. zlib keeps the register complemented
    internally, hence the XORs at the boundary.
    """
    return zlib.crc32(data, crc ^ 0xFFFFFFFF)


@lru_cache(maxsize=4096)
def icrc_for(transport_bytes: bytes, payload_len: int) -> int:
    """The iCRC an RNIC would compute for a packet.

    ``transport_bytes`` are the packed BTH (+ extension headers); the
    payload is simulated, so it contributes as ``payload_len`` zero
    bytes. Volatile IP fields are already excluded by construction —
    the simulation masks them by simply not including the IP header.

    Memoised: traffic generators emit long trains of identical
    transport headers (only the virtual payload differs in length), so
    the ``(transport_bytes, payload_len)`` key repeats constantly and
    the zero-fold over the payload dominates an uncached call.
    """
    crc = zlib.crc32(transport_bytes)
    if payload_len:
        crc = zlib.crc32(_zeros(payload_len), crc)
    return crc


def icrc_many(items: Iterable[Tuple[bytes, int]]) -> List[int]:
    """Batched :func:`icrc_for` for mirror/dumper paths.

    Takes ``(transport_bytes, payload_len)`` pairs and returns the iCRC
    for each. Bypasses the lru_cache bookkeeping per item but keeps the
    same values — mirror trains repeat a handful of header shapes, so a
    local dict catches the duplicates within the batch.
    """
    seen: dict = {}
    out: List[int] = []
    for transport_bytes, payload_len in items:
        key = (transport_bytes, payload_len)
        crc = seen.get(key)
        if crc is None:
            crc = zlib.crc32(transport_bytes)
            if payload_len:
                crc = zlib.crc32(_zeros(payload_len), crc)
            seen[key] = crc
        out.append(crc)
    global _batch_hits, _batch_misses
    _batch_hits += len(out) - len(seen)
    _batch_misses += len(seen)
    return out


#: Process-wide tallies of icrc_many()'s in-batch dedup (telemetry
#: only; the orchestrator records per-run deltas alongside the
#: icrc_for lru_cache stats).
_batch_hits = 0
_batch_misses = 0


def icrc_batch_stats() -> Tuple[int, int]:
    """Cumulative (hits, misses) across all icrc_many() batches."""
    return _batch_hits, _batch_misses


# ----------------------------------------------------------------------
# Pure-Python fallback (the pre-zlib implementation). Kept verbatim as
# an oracle: tests assert bit-parity with the zlib backend over random
# buffers, lengths and chained folds.
# ----------------------------------------------------------------------
def crc32_ib_py(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """Table-driven reference implementation of :func:`crc32_ib`."""
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def icrc_for_py(transport_bytes: bytes, payload_len: int) -> int:
    """Table-driven reference implementation of :func:`icrc_for`."""
    crc = 0xFFFFFFFF
    for byte in transport_bytes:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    for _ in range(payload_len):
        crc = (crc >> 8) ^ _TABLE[crc & 0xFF]
    return crc ^ 0xFFFFFFFF
