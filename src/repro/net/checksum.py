"""Invariant CRC (iCRC) for RoCEv2 packets.

RoCEv2 protects the IB transport headers and payload with a CRC32
("iCRC") computed over the packet with volatile fields (TTL, ECN, ...)
masked to ones. A corrupted packet — which Lumina's event injector can
create on purpose — fails this check at the receiving RNIC and shows up
in the ``rx_icrc_errors`` counter.

The polynomial is the standard CRC-32 used by InfiniBand; a table-driven
implementation keeps per-packet cost low in large simulations.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

__all__ = ["crc32_ib", "icrc_for"]

_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32_ib(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """CRC-32 over ``data`` with the IB initial value, returned inverted."""
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


@lru_cache(maxsize=4096)
def icrc_for(transport_bytes: bytes, payload_len: int) -> int:
    """The iCRC an RNIC would compute for a packet.

    ``transport_bytes`` are the packed BTH (+ extension headers); the
    payload is simulated, so it contributes as ``payload_len`` zero
    bytes. Volatile IP fields are already excluded by construction —
    the simulation masks them by simply not including the IP header.

    Memoised: traffic generators emit long trains of identical
    transport headers (only the virtual payload differs in length), so
    the ``(transport_bytes, payload_len)`` key repeats constantly and
    the zero-fold over the payload dominates an uncached call.
    """
    crc = 0xFFFFFFFF
    for byte in transport_bytes:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    # Payload bytes are all-zero in the model; fold them in.
    for _ in range(payload_len):
        crc = (crc >> 8) ^ _TABLE[crc & 0xFF]
    return crc ^ 0xFFFFFFFF
