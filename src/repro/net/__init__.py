"""Packet, header and link substrate shared by all testbed components."""

from .addressing import (
    ROCEV2_UDP_PORT,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
    parse_cidr,
)
from .checksum import crc32_ib, icrc_for
from .headers import (
    AckExtendedHeader,
    AethSyndrome,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
)
from .link import Node, Port, connect, gbps
from .packet import EventType, Packet

__all__ = [
    "ROCEV2_UDP_PORT",
    "int_to_ip",
    "int_to_mac",
    "ip_to_int",
    "mac_to_int",
    "parse_cidr",
    "crc32_ib",
    "icrc_for",
    "AckExtendedHeader",
    "AethSyndrome",
    "BaseTransportHeader",
    "EthernetHeader",
    "Ipv4Header",
    "Opcode",
    "RdmaExtendedHeader",
    "UdpHeader",
    "ECN_CE",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_NOT_ECT",
    "Node",
    "Port",
    "connect",
    "gbps",
    "EventType",
    "Packet",
]
