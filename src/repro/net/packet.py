"""The in-simulation packet object.

A :class:`Packet` carries parsed header objects plus a *virtual* payload
(only its length is tracked — Lumina never needs payload contents, which
is exactly why the real tool trims dumps to 128 bytes). ``pack()``
produces genuine wire bytes for the headers so dumper records and
analyzers work on the same representation the real system uses.

Mirror metadata (§3.4) is embedded by *rewriting header fields* of the
mirrored copy, exactly as the paper does:

==================  =========================  =======================
Metadata            Field reused               Accessor
==================  =========================  =======================
event type          IPv4 TTL                   ``mirror_event_type``
mirror sequence     Ethernet source MAC        ``mirror_seq``
mirror timestamp    Ethernet destination MAC   ``mirror_timestamp_ns``
==================  =========================  =======================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .checksum import icrc_for
from .headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    ETH_HEADER_LEN,
    ICRC_LEN,
    Ipv4Header,
    IPV4_HEADER_LEN,
    Opcode,
    RdmaExtendedHeader,
    UDP_HEADER_LEN,
    UdpHeader,
    BTH_LEN,
    RETH_LEN,
    AETH_LEN,
)

__all__ = ["Packet", "EventType"]

_packet_ids = itertools.count(1)


class EventType:
    """Injected-event codes embedded in mirrored packets' TTL field."""

    NONE = 0
    ECN = 1
    DROP = 2
    CORRUPT = 3
    REWRITE = 4  # field rewrite, e.g. the MigReq fix-up action (§6.2.3)
    # §7 lists quantitative delay and packet reordering as planned
    # extensions; both are implemented here.
    DELAY = 5
    REORDER = 6

    NAMES = {NONE: "none", ECN: "ecn", DROP: "drop", CORRUPT: "corrupt",
             REWRITE: "rewrite", DELAY: "delay", REORDER: "reorder"}


@dataclass
class Packet:
    """A simulated RoCEv2 (or plain L2/L3) packet."""

    eth: EthernetHeader = field(default_factory=EthernetHeader)
    ip: Optional[Ipv4Header] = None
    udp: Optional[UdpHeader] = None
    bth: Optional[BaseTransportHeader] = None
    reth: Optional[RdmaExtendedHeader] = None
    aeth: Optional[AckExtendedHeader] = None
    payload_len: int = 0
    #: False once the event injector corrupts the packet: the receiving
    #: RNIC's iCRC validation will fail and the packet is discarded.
    icrc_ok: bool = True
    #: Unique id for tracing/debugging inside the simulation only.
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: True on mirrored copies (set by the switch mirror block).
    is_mirror: bool = False
    # Wire-format caches. Headers are immutable between explicit switch
    # rewrites, so serialisation results are reused until a mutation
    # path calls :meth:`invalidate_wire_cache`. Excluded from equality:
    # a cached and an uncached packet are the same packet.
    _packed_headers: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False)
    _icrc_clean: Optional[int] = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def header_len(self) -> int:
        size = ETH_HEADER_LEN
        if self.ip is not None:
            size += IPV4_HEADER_LEN
        if self.udp is not None:
            size += UDP_HEADER_LEN
        if self.bth is not None:
            size += BTH_LEN
        if self.reth is not None:
            size += RETH_LEN
        if self.aeth is not None:
            size += AETH_LEN
        return size

    @property
    def size(self) -> int:
        """Total wire size in bytes (headers + payload + iCRC trailer)."""
        size = self.header_len + self.payload_len
        if self.bth is not None:
            size += ICRC_LEN
        return size

    @property
    def is_roce(self) -> bool:
        return self.bth is not None

    @property
    def opcode(self) -> Optional[Opcode]:
        return self.bth.opcode if self.bth is not None else None

    @property
    def psn(self) -> Optional[int]:
        return self.bth.psn if self.bth is not None else None

    @property
    def dest_qp(self) -> Optional[int]:
        return self.bth.dest_qp if self.bth is not None else None

    # ------------------------------------------------------------------
    # Wire representation
    # ------------------------------------------------------------------
    def invalidate_wire_cache(self) -> None:
        """Drop cached wire bytes after a header field mutation.

        Every path that rewrites headers in place (the event injector's
        ECN mark, rewrite rules, the mirror block's metadata stamping)
        must call this; construction and :meth:`copy` start clean.
        ``icrc_ok`` flips need no invalidation — the corruption xor is
        applied per call on top of the cached clean CRC.
        """
        self._packed_headers = None
        self._icrc_clean = None

    def pack_headers(self) -> bytes:
        """Serialise all headers to wire bytes (no payload, no iCRC)."""
        if self._packed_headers is not None:
            return self._packed_headers
        data = self.eth.pack()
        if self.ip is not None:
            data += self.ip.pack()
        if self.udp is not None:
            data += self.udp.pack()
        if self.bth is not None:
            data += self.bth.pack()
        if self.reth is not None:
            data += self.reth.pack()
        if self.aeth is not None:
            data += self.aeth.pack()
        self._packed_headers = data
        return data

    def icrc(self) -> int:
        """iCRC over transport headers + virtual payload.

        Returns a value that will not match the recomputed CRC when the
        packet has been corrupted in flight (``icrc_ok`` is False).
        """
        value = self._icrc_clean
        if value is None:
            transport = b""
            if self.bth is not None:
                transport += self.bth.pack()
            if self.reth is not None:
                transport += self.reth.pack()
            if self.aeth is not None:
                transport += self.aeth.pack()
            value = icrc_for(transport, self.payload_len)
            self._icrc_clean = value
        if not self.icrc_ok:
            value ^= 0xDEADBEEF  # any bit flip invalidates the CRC
        return value

    def copy(self) -> "Packet":
        """Deep copy with a fresh packet id (used by the mirror block)."""
        return Packet(
            eth=self.eth.copy(),
            ip=self.ip.copy() if self.ip is not None else None,
            udp=self.udp.copy() if self.udp is not None else None,
            bth=self.bth.copy() if self.bth is not None else None,
            reth=self.reth.copy() if self.reth is not None else None,
            aeth=self.aeth.copy() if self.aeth is not None else None,
            payload_len=self.payload_len,
            icrc_ok=self.icrc_ok,
            is_mirror=self.is_mirror,
        )

    # ------------------------------------------------------------------
    # Mirror metadata accessors (decode the rewritten header fields)
    # ------------------------------------------------------------------
    @property
    def mirror_event_type(self) -> int:
        """Injected-event code stored in the TTL field of a mirrored copy."""
        if self.ip is None:
            raise ValueError("mirror metadata requires an IP header")
        return self.ip.ttl

    @property
    def mirror_seq(self) -> int:
        """Global mirror sequence number stored in the source MAC."""
        return self.eth.src_mac

    @property
    def mirror_timestamp_ns(self) -> int:
        """Switch ingress timestamp (ns) stored in the destination MAC."""
        return self.eth.dst_mac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.bth is None:
            return f"<Packet #{self.packet_id} L2 size={self.size}>"
        return (
            f"<Packet #{self.packet_id} {self.bth.opcode.name} "
            f"qp={self.bth.dest_qp:#x} psn={self.bth.psn} size={self.size}>"
        )
