"""The in-simulation packet object.

A :class:`Packet` carries parsed header objects plus a *virtual* payload
(only its length is tracked — Lumina never needs payload contents, which
is exactly why the real tool trims dumps to 128 bytes). ``pack()``
produces genuine wire bytes for the headers so dumper records and
analyzers work on the same representation the real system uses.

Mirror metadata (§3.4) is embedded by *rewriting header fields* of the
mirrored copy, exactly as the paper does:

==================  =========================  =======================
Metadata            Field reused               Accessor
==================  =========================  =======================
event type          IPv4 TTL                   ``mirror_event_type``
mirror sequence     Ethernet source MAC        ``mirror_seq``
mirror timestamp    Ethernet destination MAC   ``mirror_timestamp_ns``
==================  =========================  =======================

``Packet`` is a slotted class (not a dataclass): a run allocates one
instance per simulated packet plus one per mirrored clone, and the
dict-per-instance cost plus dataclass-generated method overhead was
measurable in profiles. Semantics match the dataclass it replaced —
field order, defaults, value-``__eq__`` over every real field including
``packet_id`` (wire caches excluded), unhashable — and pickling for the
spawn pool drops the caches so workers never ship stale wire bytes.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .checksum import icrc_for
from .headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    ETH_HEADER_LEN,
    ICRC_LEN,
    Ipv4Header,
    IPV4_HEADER_LEN,
    Opcode,
    RdmaExtendedHeader,
    UDP_HEADER_LEN,
    UdpHeader,
    BTH_LEN,
    RETH_LEN,
    AETH_LEN,
)

__all__ = ["Packet", "EventType", "pack_cache_hits"]

_packet_ids = itertools.count(1)

#: Process-wide count of pack_headers() calls served from the wire
#: cache. Telemetry-only (the orchestrator records per-run deltas);
#: never feeds simulation state.
_pack_cache_hits = 0


def pack_cache_hits() -> int:
    """Cumulative pack_headers() cache hits in this process."""
    return _pack_cache_hits


class EventType:
    """Injected-event codes embedded in mirrored packets' TTL field."""

    NONE = 0
    ECN = 1
    DROP = 2
    CORRUPT = 3
    REWRITE = 4  # field rewrite, e.g. the MigReq fix-up action (§6.2.3)
    # §7 lists quantitative delay and packet reordering as planned
    # extensions; both are implemented here.
    DELAY = 5
    REORDER = 6

    NAMES = {NONE: "none", ECN: "ecn", DROP: "drop", CORRUPT: "corrupt",
             REWRITE: "rewrite", DELAY: "delay", REORDER: "reorder"}


class Packet:
    """A simulated RoCEv2 (or plain L2/L3) packet."""

    __slots__ = (
        "eth", "ip", "udp", "bth", "reth", "aeth", "payload_len",
        "icrc_ok", "packet_id", "is_mirror",
        # Wire-format caches. Headers are immutable between explicit
        # switch rewrites, so serialisation results are reused until a
        # mutation path calls invalidate_wire_cache(). Excluded from
        # equality and pickling: a cached and an uncached packet are
        # the same packet.
        "_packed_headers", "_icrc_clean", "_wire_size",
    )
    __hash__ = None  # value-equal, like the dataclass it replaced

    def __init__(self,
                 eth: Optional[EthernetHeader] = None,
                 ip: Optional[Ipv4Header] = None,
                 udp: Optional[UdpHeader] = None,
                 bth: Optional[BaseTransportHeader] = None,
                 reth: Optional[RdmaExtendedHeader] = None,
                 aeth: Optional[AckExtendedHeader] = None,
                 payload_len: int = 0,
                 icrc_ok: bool = True,
                 packet_id: Optional[int] = None,
                 is_mirror: bool = False):
        self.eth = eth if eth is not None else EthernetHeader()
        self.ip = ip
        self.udp = udp
        self.bth = bth
        self.reth = reth
        self.aeth = aeth
        self.payload_len = payload_len
        #: False once the event injector corrupts the packet: the
        #: receiving RNIC's iCRC validation will fail and the packet is
        #: discarded.
        self.icrc_ok = icrc_ok
        #: Unique id for tracing/debugging inside the simulation only.
        self.packet_id = packet_id if packet_id is not None else next(_packet_ids)
        #: True on mirrored copies (set by the switch mirror block).
        self.is_mirror = is_mirror
        self._packed_headers: Optional[bytes] = None
        self._icrc_clean: Optional[int] = None
        self._wire_size: Optional[int] = None

    # ------------------------------------------------------------------
    # Value semantics (dataclass-equivalent)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> object:
        if other.__class__ is not Packet:
            return NotImplemented
        return (self.eth == other.eth
                and self.ip == other.ip
                and self.udp == other.udp
                and self.bth == other.bth
                and self.reth == other.reth
                and self.aeth == other.aeth
                and self.payload_len == other.payload_len
                and self.icrc_ok == other.icrc_ok
                and self.packet_id == other.packet_id
                and self.is_mirror == other.is_mirror)

    def __getstate__(self) -> tuple:
        # Caches are process-local; rebuild lazily after unpickling.
        return (self.eth, self.ip, self.udp, self.bth, self.reth, self.aeth,
                self.payload_len, self.icrc_ok, self.packet_id, self.is_mirror)

    def __setstate__(self, state: tuple) -> None:
        (self.eth, self.ip, self.udp, self.bth, self.reth, self.aeth,
         self.payload_len, self.icrc_ok, self.packet_id,
         self.is_mirror) = state
        self._packed_headers = None
        self._icrc_clean = None
        self._wire_size = None

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def header_len(self) -> int:
        size = ETH_HEADER_LEN
        if self.ip is not None:
            size += IPV4_HEADER_LEN
        if self.udp is not None:
            size += UDP_HEADER_LEN
        if self.bth is not None:
            size += BTH_LEN
        if self.reth is not None:
            size += RETH_LEN
        if self.aeth is not None:
            size += AETH_LEN
        return size

    @property
    def size(self) -> int:
        """Total wire size in bytes (headers + payload + iCRC trailer).

        Cached: links read it three times per hop, and headers attached
        after construction (a QP bolting on a RETH/AETH) go through the
        cold-cache path on first read.
        """
        size = self._wire_size
        if size is None:
            size = self.header_len + self.payload_len
            if self.bth is not None:
                size += ICRC_LEN
            self._wire_size = size
        return size

    @property
    def is_roce(self) -> bool:
        return self.bth is not None

    @property
    def opcode(self) -> Optional[Opcode]:
        return self.bth.opcode if self.bth is not None else None

    @property
    def psn(self) -> Optional[int]:
        return self.bth.psn if self.bth is not None else None

    @property
    def dest_qp(self) -> Optional[int]:
        return self.bth.dest_qp if self.bth is not None else None

    # ------------------------------------------------------------------
    # Wire representation
    # ------------------------------------------------------------------
    def invalidate_wire_cache(self) -> None:
        """Drop cached wire bytes after a header field mutation.

        Every path that rewrites headers in place (the event injector's
        ECN mark, rewrite rules, the mirror block's metadata stamping)
        must call this; construction and :meth:`copy` start clean.
        ``icrc_ok`` flips need no invalidation — the corruption xor is
        applied per call on top of the cached clean CRC.
        """
        self._packed_headers = None
        self._icrc_clean = None
        self._wire_size = None

    def pack_headers(self) -> bytes:
        """Serialise all headers to wire bytes (no payload, no iCRC)."""
        data = self._packed_headers
        if data is not None:
            global _pack_cache_hits
            # repro-lint: ignore[RACE001] — perf counter read as per-run
            # deltas by the orchestrator's telemetry; worker-local by design.
            _pack_cache_hits += 1  # repro-lint: ignore[RACE001]
            return data
        data = self.eth.pack()
        if self.ip is not None:
            data += self.ip.pack()
        if self.udp is not None:
            data += self.udp.pack()
        if self.bth is not None:
            data += self.bth.pack()
        if self.reth is not None:
            data += self.reth.pack()
        if self.aeth is not None:
            data += self.aeth.pack()
        self._packed_headers = data
        return data

    def icrc(self) -> int:
        """iCRC over transport headers + virtual payload.

        Returns a value that will not match the recomputed CRC when the
        packet has been corrupted in flight (``icrc_ok`` is False).
        """
        value = self._icrc_clean
        if value is None:
            transport = b""
            if self.bth is not None:
                transport += self.bth.pack()
            if self.reth is not None:
                transport += self.reth.pack()
            if self.aeth is not None:
                transport += self.aeth.pack()
            value = icrc_for(transport, self.payload_len)
            self._icrc_clean = value
        if not self.icrc_ok:
            value ^= 0xDEADBEEF  # any bit flip invalidates the CRC
        return value

    def copy(self) -> "Packet":
        """Deep copy with a fresh packet id (used by the mirror block).

        Built via ``__new__`` + direct slot stores: the mirror block
        clones every RoCE packet, and skipping ``__init__``'s keyword
        processing is a measurable win on that path.
        """
        clone = Packet.__new__(Packet)
        clone.eth = self.eth.copy()
        ip = self.ip
        clone.ip = ip.copy() if ip is not None else None
        udp = self.udp
        clone.udp = udp.copy() if udp is not None else None
        bth = self.bth
        clone.bth = bth.copy() if bth is not None else None
        reth = self.reth
        clone.reth = reth.copy() if reth is not None else None
        aeth = self.aeth
        clone.aeth = aeth.copy() if aeth is not None else None
        clone.payload_len = self.payload_len
        clone.icrc_ok = self.icrc_ok
        clone.packet_id = next(_packet_ids)
        clone.is_mirror = self.is_mirror
        clone._packed_headers = None
        clone._icrc_clean = None
        clone._wire_size = self._wire_size
        return clone

    # ------------------------------------------------------------------
    # Mirror metadata accessors (decode the rewritten header fields)
    # ------------------------------------------------------------------
    @property
    def mirror_event_type(self) -> int:
        """Injected-event code stored in the TTL field of a mirrored copy."""
        if self.ip is None:
            raise ValueError("mirror metadata requires an IP header")
        return self.ip.ttl

    @property
    def mirror_seq(self) -> int:
        """Global mirror sequence number stored in the source MAC."""
        return self.eth.src_mac

    @property
    def mirror_timestamp_ns(self) -> int:
        """Switch ingress timestamp (ns) stored in the destination MAC."""
        return self.eth.dst_mac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.bth is None:
            return f"<Packet #{self.packet_id} L2 size={self.size}>"
        return (
            f"<Packet #{self.packet_id} {self.bth.opcode.name} "
            f"qp={self.bth.dest_qp:#x} psn={self.bth.psn} size={self.size}>"
        )
