"""Process-pool campaign runner.

Lumina's value comes from running *many* tests, and every
``run_test`` is an independent, seed-deterministic simulation — a
perfect fan-out target. :class:`ParallelRunner` maps picklable task
payloads over a ``spawn``-safe :class:`~concurrent.futures.\
ProcessPoolExecutor` and hides the operational sharp edges:

* ``workers=1`` (or an unavailable pool) degrades to in-process serial
  execution with identical semantics,
* per-task timeouts kill the wedged pool and carry on,
* a worker crash (``BrokenProcessPool``) re-runs the affected tasks on
  a fresh pool, and after ``max_retries`` attempts runs them in-process
  so a dying pool never loses campaign work,
* per-worker telemetry registries are snapshotted in the worker and
  merged into the parent's active session in task order, keeping
  merged metrics deterministic for any worker count.

Determinism contract: the runner never reorders results (outcome ``i``
always corresponds to payload ``i``) and injects no randomness, so any
campaign whose tasks are themselves deterministic produces identical
results for every value of ``workers``.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import pickle
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..coverage import runtime as coverage
from ..telemetry import runtime as telemetry
from . import worker as worker_mod

__all__ = ["TaskOutcome", "RunnerStats", "ParallelRunner",
           "UnpicklableTaskError"]


class UnpicklableTaskError(TypeError):
    """A task function or payload cannot cross the spawn boundary.

    Raised *before* any submission, naming the offending field — a
    non-picklable payload would otherwise surface much later as an
    opaque worker crash followed by pointless retries.
    """


def _unpicklable_path(obj: Any, prefix: str) -> Optional[Tuple[str, str]]:
    """(path, reason) for the deepest unpicklable element, or None.

    Descends dicts, dataclasses and sequences so the error names the
    actual field (``payload['config'].on_done``) rather than the
    payload as a whole.
    """
    try:
        pickle.dumps(obj)
        return None
    except Exception as exc:
        failure = (prefix, f"{type(exc).__name__}: {exc}")
    children: List[Tuple[str, Any]] = []
    if isinstance(obj, dict):
        children = [(f"{prefix}[{key!r}]", value)
                    for key, value in obj.items()]
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        children = [(f"{prefix}.{f.name}", getattr(obj, f.name))
                    for f in dataclasses.fields(obj)]
    elif isinstance(obj, (list, tuple)):
        children = [(f"{prefix}[{index}]", value)
                    for index, value in enumerate(obj)]
    for path, value in children:
        deeper = _unpicklable_path(value, path)
        if deeper is not None:
            return deeper
    return failure

#: Consecutive pool breakages after which the runner stops rebuilding
#: pools and finishes the campaign in-process.
_MAX_POOL_BREAKS = 3


@dataclass
class TaskOutcome:
    """Result envelope for one mapped payload (same index as input).

    ``cached`` marks outcomes replayed from a campaign store rather
    than executed; the runner itself never sets it, but campaign
    front-ends construct cached outcomes so hit and miss cells flow
    through one reporting path.
    """

    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    ran_in_process: bool = False
    cached: bool = False


@dataclass
class RunnerStats:
    """Operational counters accumulated across ``map`` calls."""

    tasks_completed: int = 0
    tasks_failed: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    in_process_runs: int = 0
    pools_created: int = 0


class ParallelRunner:
    """Maps payloads through a task function on a process pool.

    ``task_fn`` must be a module-level callable (pickled by reference
    into ``spawn``-ed workers) taking one picklable payload and
    returning one picklable value.
    """

    def __init__(self, task_fn: Callable[[Any], Any], workers: int = 1,
                 mp_context: str = "spawn",
                 task_timeout_s: Optional[float] = None,
                 max_retries: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers > 1:
            problem = _unpicklable_path(task_fn, "task_fn")
            if problem is not None:
                name = getattr(task_fn, "__qualname__", None) or repr(task_fn)
                raise UnpicklableTaskError(
                    f"task_fn {name} cannot be pickled by reference into "
                    f"spawn workers ({problem[1]}); pass a module-level "
                    f"function (see repro.exec.tasks)")
        self.task_fn = task_fn
        self.workers = workers
        self.task_timeout_s = task_timeout_s
        self.max_retries = max(1, max_retries)
        self.stats = RunnerStats()
        self._mp_context = mp_context
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_dead = False
        self._pool_breaks = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        """The live pool, a fresh one, or None when pools are unusable."""
        if self._pool is not None:
            return self._pool
        if self._pool_dead or self.workers <= 1:
            return None
        try:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(self._mp_context),
                initializer=worker_mod.init_worker,
            )
            self.stats.pools_created += 1
        except Exception:
            # The platform cannot give us a pool (no semaphores, no
            # spawn support, ...): run the whole campaign in-process.
            self._pool_dead = True
            self._pool = None
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down hard (used on timeout / worker crash)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        # shutdown() leaves workers running their current task; a
        # wedged task would otherwise stall interpreter exit.
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        self._pool_breaks += 1
        if self._pool_breaks >= _MAX_POOL_BREAKS:
            self._pool_dead = True

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_in_process(self, index: int, payload: Any,
                        attempts: int = 1) -> TaskOutcome:
        self.stats.in_process_runs += 1
        try:
            value = self.task_fn(payload)
        except Exception as exc:
            self.stats.tasks_failed += 1
            return TaskOutcome(index=index, ok=False,
                               error=f"{type(exc).__name__}: {exc}",
                               attempts=attempts, ran_in_process=True)
        self.stats.tasks_completed += 1
        return TaskOutcome(index=index, ok=True, value=value,
                           attempts=attempts, ran_in_process=True)

    def map(self, payloads: Sequence[Any]) -> List[TaskOutcome]:
        """Run every payload; outcomes come back in payload order.

        Never raises for task-level failures — inspect the outcomes.
        The exception is a *programming* error: a payload that cannot
        be pickled into the spawn workers raises
        :class:`UnpicklableTaskError` (naming the offending field)
        before anything is submitted.
        """
        if self.workers > 1 and not self._pool_dead:
            for index, payload in enumerate(payloads):
                problem = _unpicklable_path(payload, f"payloads[{index}]")
                if problem is not None:
                    path, reason = problem
                    raise UnpicklableTaskError(
                        f"{path} cannot be pickled into spawn workers: "
                        f"{reason}; campaign payloads must be plain "
                        f"picklable data")
        n = len(payloads)
        outcomes: List[Optional[TaskOutcome]] = [None] * n
        session = telemetry.active()
        collect = session is not None and self.workers > 1
        collect_cov = coverage.active() is not None and self.workers > 1

        pending = list(range(n))
        attempts = [0] * n
        snapshots: dict = {}
        while pending:
            pool = self._ensure_pool()
            if pool is None:
                for i in pending:
                    outcomes[i] = self._run_in_process(
                        i, payloads[i], attempts=attempts[i] + 1)
                break
            futures = {
                i: pool.submit(worker_mod.invoke, self.task_fn,
                               payloads[i], collect, collect_cov)
                for i in pending
            }
            next_pending: List[int] = []
            broken = False
            for i in pending:
                if broken:
                    # The pool died mid-batch; everything still
                    # outstanding goes around again on a fresh pool.
                    next_pending.append(i)
                    continue
                try:
                    value, snap = futures[i].result(
                        timeout=self.task_timeout_s)
                except concurrent.futures.TimeoutError:
                    # The worker is wedged; nothing safe to do but
                    # abandon the task and replace the pool.
                    self.stats.timeouts += 1
                    self.stats.tasks_failed += 1
                    outcomes[i] = TaskOutcome(
                        index=i, ok=False, attempts=attempts[i] + 1,
                        error=f"timed out after {self.task_timeout_s}s")
                    self._kill_pool()
                    broken = True
                except (BrokenProcessPool,
                        concurrent.futures.CancelledError):
                    self.stats.worker_crashes += 1
                    attempts[i] += 1
                    if attempts[i] >= self.max_retries:
                        # Last resort: run where a crash cannot be
                        # papered over. The campaign keeps its result.
                        outcomes[i] = self._run_in_process(
                            i, payloads[i], attempts=attempts[i] + 1)
                    else:
                        next_pending.append(i)
                    self._kill_pool()
                    broken = True
                except Exception as exc:
                    # The task itself raised (pool is fine). Tasks are
                    # deterministic, so retrying would fail the same way.
                    self.stats.tasks_failed += 1
                    outcomes[i] = TaskOutcome(
                        index=i, ok=False, attempts=attempts[i] + 1,
                        error=f"{type(exc).__name__}: {exc}")
                else:
                    self.stats.tasks_completed += 1
                    outcomes[i] = TaskOutcome(
                        index=i, ok=True, value=value,
                        attempts=attempts[i] + 1)
                    if snap:
                        snapshots[i] = snap
            if not broken:
                self._pool_breaks = 0
            pending = next_pending

        # Merge worker telemetry in task order so the parent registry
        # is identical for any worker count / completion order.
        if session is not None:
            for i in sorted(snapshots):
                session.registry.merge(snapshots[i])
        return outcomes  # type: ignore[return-value]
