"""Parallel campaign execution.

Lumina campaigns — fuzzing generations, conformance batteries,
benchmark sweeps — are bags of independent, seed-deterministic
simulations. This package fans them out over a spawn-safe process pool
while keeping results byte-identical to serial execution:

* :class:`ParallelRunner` — the pool itself: per-task timeouts,
  retry-on-worker-crash, graceful in-process fallback, per-worker
  telemetry merge.
* :mod:`repro.exec.tasks` — the picklable task functions (score a fuzz
  candidate, run a conformance check, summarise a sweep run).
* :mod:`repro.exec.worker` — the worker-side shim that wraps each task
  in a worker-local telemetry session.
"""

from .runner import (ParallelRunner, RunnerStats, TaskOutcome,
                     UnpicklableTaskError)

__all__ = ["ParallelRunner", "RunnerStats", "TaskOutcome",
           "UnpicklableTaskError"]
