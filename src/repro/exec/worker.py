"""Worker-side shim for the parallel campaign runner.

Everything here must be importable by a freshly ``spawn``-ed process:
the :class:`~repro.exec.runner.ParallelRunner` submits
``invoke(task_fn, payload, collect_telemetry)`` to the pool, and the
child pickles ``task_fn`` *by reference* — so task functions must be
plain module-level callables (see :mod:`repro.exec.tasks`).

Each invocation optionally runs under a private, worker-local
telemetry session. The session's metrics registry is snapshotted into
a plain, picklable structure and shipped back alongside the task value
so the parent can merge it into its own registry (span traces stay in
the worker; only metrics cross the process boundary — they are compact
and mergeable, traces are neither).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

#: True inside pool workers (set by the pool initializer). Task
#: functions may consult this to tell pool execution apart from the
#: in-process fallback path; the runner's fault-injection tests rely
#: on it to crash only inside an expendable worker process.
IN_WORKER = False


def init_worker() -> None:
    """Pool initializer: mark this process as an expendable worker."""
    global IN_WORKER
    # repro-lint: ignore[RACE001] — the flag exists precisely to differ
    # between worker and parent processes; it never feeds results.
    IN_WORKER = True  # repro-lint: ignore[RACE001]


def invoke(task_fn: Callable[[Any], Any], payload: Any,
           collect_telemetry: bool,
           collect_coverage: bool = False) -> Tuple[Any, Optional[list]]:
    """Run one task, optionally under worker-local observability sessions.

    Returns ``(value, metrics_snapshot_or_None)``. Raises whatever the
    task raises — the parent maps exceptions to error outcomes.

    With ``collect_coverage`` a private coverage session is active for
    the task's duration; coverage data crosses the process boundary on
    the task's *return value* (results/scores/check verdicts carry
    their own snapshots), so nothing coverage-related is added to the
    return tuple.
    """
    if collect_coverage:
        from ..coverage import runtime as coverage

        coverage.enable()
    try:
        if not collect_telemetry:
            return task_fn(payload), None
        from ..telemetry import runtime as telemetry

        session = telemetry.enable(None)
        try:
            value = task_fn(payload)
            return value, session.registry.snapshot()
        finally:
            telemetry.disable()
    finally:
        if collect_coverage:
            from ..coverage import runtime as coverage

            coverage.disable()
