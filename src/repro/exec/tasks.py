"""Module-level task functions for the parallel campaign runner.

These are the units of work the :class:`~repro.exec.runner.\
ParallelRunner` ships to pool workers. Spawned workers pickle
functions *by reference*, so everything here is a plain module-level
callable taking one picklable payload dict. Imports of the simulation
stack happen inside the functions: the module itself stays cheap to
import in the parent and the heavy imports run once per worker
process, amortised over every task it serves.

Campaign tasks return *compact* values — a :class:`Score`, a
:class:`CheckResult`, a summary dict — never full packet traces; a
trace can be tens of thousands of parsed records and would make the
result pipe the bottleneck. The exception is :func:`run_config_task`,
the building block of :func:`repro.core.orchestrator.run_tests`, whose
callers explicitly want the full :class:`TestResult` back.
"""

from __future__ import annotations

import time
from typing import Any, Dict

__all__ = [
    "score_config_task",
    "run_check_task",
    "run_config_task",
    "run_summary_task",
    "summarize_result",
    "echo_task",
    "sleep_task",
    "crash_in_worker_task",
    "telemetry_probe_task",
]


def score_config_task(payload: Dict[str, Any]):
    """Fuzzer unit: run one candidate config and return only its Score.

    Payload: ``{"config": TestConfig, "weights": ScoreWeights}``.
    """
    from ..core.fuzz.score import score_result
    from ..core.orchestrator import run_test

    result = run_test(payload["config"])
    score = score_result(result, payload["weights"])
    if result.coverage is not None:
        # Ride the run's coverage on the compact score so the fuzzer's
        # cumulative map grows identically for any worker count.
        score.coverage = result.coverage
    return score


def run_check_task(payload: Dict[str, Any]):
    """Conformance-suite unit: run one named check for (nic, seed).

    Payload: ``{"check": str, "nic": str, "seed": int}`` plus an
    optional ``"faults"`` entry — a measurement-fault scenario name or
    :class:`~repro.faults.scenarios.FaultScenario` — to run the check
    under injected capture faults.
    """
    from ..core.suite import run_single_check

    faults = payload.get("faults")
    if isinstance(faults, str):
        from ..faults.scenarios import get_scenario

        faults = get_scenario(faults)
    return run_single_check(payload["check"], payload["nic"],
                            payload["seed"], faults)


def run_config_task(payload: Dict[str, Any]):
    """Run one test config and return the full TestResult.

    Payload: ``{"config": TestConfig}``. Heavyweight return — prefer
    :func:`run_summary_task` for large sweeps.
    """
    from ..core.orchestrator import run_test

    return run_test(payload["config"])


def summarize_result(result) -> Dict[str, Any]:
    """The sweep's compact summary of one :class:`TestResult`.

    Shared by :func:`run_summary_task` (pool workers) and the campaign
    store's replay path, so a cached cell and a fresh cell summarise
    identically — a prerequisite for byte-identical sweep reports.
    """
    log = result.traffic_log
    summary = {
        "ok": result.ok,
        "integrity_ok": result.integrity.ok,
        "attempts": result.attempts_used,
        "duration_ns": result.duration_ns,
        "trace_packets": len(result.trace),
        "aborted_qps": log.aborted_qps,
        "avg_mct_us": round((log.avg_mct_ns or 0) / 1e3, 2),
        "retransmitted": int(result.requester_counters[
            "retransmitted_packets"]),
        "timeouts": int(result.requester_counters["local_ack_timeout_err"]),
    }
    # Only present when recorded, so coverage-off sweeps summarise
    # byte-identically to before.
    if result.coverage is not None:
        summary["coverage"] = result.coverage
    return summary


def run_summary_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Benchmark-sweep unit: run one config, return a compact summary.

    Payload: ``{"config": TestConfig}``.
    """
    from ..core.orchestrator import run_test

    return summarize_result(run_test(payload["config"]))


# ---------------------------------------------------------------------------
# Diagnostic tasks (runner self-tests and pool health checks)
# ---------------------------------------------------------------------------

def echo_task(payload: Any) -> Any:
    """Return the payload unchanged (pool plumbing check)."""
    return payload


def sleep_task(payload: Dict[str, Any]) -> float:
    """Sleep ``payload["seconds"]`` then return it (timeout check)."""
    seconds = float(payload["seconds"])
    time.sleep(seconds)
    return seconds


def telemetry_probe_task(payload: Dict[str, Any]) -> int:
    """Bump a counter in the executing process's telemetry registry.

    Payload: ``{"n": int}``. Exercises the worker-snapshot → parent
    merge path: in a pool worker the increment lands in the worker's
    private session and reaches the parent only via the snapshot
    shipped back with the result.
    """
    from ..telemetry import runtime as telemetry

    n = int(payload.get("n", 1))
    telemetry.current().counter("exec_probe_events").inc(n)
    return n


def crash_in_worker_task(payload: Any) -> Any:
    """Die abruptly when run inside a pool worker; echo otherwise.

    Exercises the worker-crash recovery path: in a pool worker the
    process exits without cleanup (a segfault stand-in, which the pool
    reports as BrokenProcessPool); on the in-process fallback path it
    completes normally, proving the campaign loses nothing.
    """
    from . import worker

    if worker.IN_WORKER:
        import os

        os._exit(17)
    return payload
