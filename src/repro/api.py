"""The stable programmatic facade: ``import repro.api`` (or just
``repro``) and stop caring where things live.

The internal layout (``core.orchestrator``, ``core.suite``,
``core.fuzz``, ``store.serialize``, …) moves as the testbed grows; the
handful of names here does not. Everything a script, notebook or
downstream harness needs:

* :func:`run_test` — one deterministic end-to-end test run, optionally
  replayed from a campaign store;
* :func:`run_suite` — the conformance battery for one NIC model;
* :func:`run_fuzz_campaign` — Algorithm-1 fuzzing around a base
  config, resumable via ``campaign_dir``;
* :func:`save_result` / :func:`load_result` — lossless TestResult
  round-trip as standalone JSON;
* :func:`iter_analyzers` / :func:`get_analyzer` — the registered trace
  analyzers behind the uniform Analyzer protocol.

Heavy subsystems import lazily inside each function, so ``import
repro.api`` stays cheap (CLI startup, spawn workers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:
    from .core.analyzers.base import Analyzer
    from .core.config import TestConfig
    from .core.fuzz.fuzzer import FuzzReport
    from .core.results import TestResult
    from .core.suite import Scorecard
    from .store.index import CampaignStore

__all__ = ["run_test", "run_suite", "run_fuzz_campaign",
           "save_result", "load_result",
           "get_analyzer", "iter_analyzers", "quick_config"]


def run_test(config: "TestConfig",
             store: Optional["CampaignStore"] = None) -> "TestResult":
    """Run one test end to end (build, simulate, collect, §3.5 retry).

    With a ``store``, a previously-run identical config is replayed
    from disk — full trace included — instead of simulated again.
    """
    from .core.orchestrator import run_test as _run_test

    return _run_test(config, store=store)


def run_suite(nic: str, seed: Optional[int] = None,
              checks: Optional[List[str]] = None, workers: int = 1,
              faults: Optional[str] = None,
              store: Optional["CampaignStore"] = None) -> "Scorecard":
    """Run the conformance battery (or a subset) against one NIC model.

    ``seed=None`` means the battery's canonical seed
    (:data:`repro.core.suite.DEFAULT_SUITE_SEED`).
    """
    from .core.suite import run_conformance_suite

    return run_conformance_suite(nic, seed=seed, checks=checks,
                                 workers=workers, faults=faults, store=store)


def run_fuzz_campaign(base_config: "TestConfig", iterations: int = 20,
                      seed: int = 1, workers: int = 1, batch_size: int = 4,
                      anomaly_threshold: float = 3.0,
                      stop_on_first: bool = False,
                      campaign_dir: Optional[str] = None,
                      store: Optional["CampaignStore"] = None,
                      ) -> "FuzzReport":
    """Fuzz around a base config (Algorithm 1) and return the report.

    ``campaign_dir`` makes the campaign persistent and resumable: runs
    are cached in ``<dir>/store`` and per-generation state journaled in
    ``<dir>/journal.jsonl``, so re-invoking after an interruption
    continues exactly where it stopped and yields a byte-identical
    final report.
    """
    from .core.fuzz import LuminaFuzzer

    fuzzer = LuminaFuzzer(base_config, seed=seed,
                          anomaly_threshold=anomaly_threshold)
    return fuzzer.run(iterations=iterations, stop_on_first=stop_on_first,
                      workers=workers, batch_size=batch_size,
                      store=store, campaign_dir=campaign_dir)


def save_result(result: "TestResult", path: str) -> str:
    """Write one TestResult as standalone JSON; returns ``path``."""
    from .store.serialize import save_result_file

    return save_result_file(result, path)


def load_result(path: str) -> "TestResult":
    """Load a :func:`save_result` file back into a full TestResult.

    The round-trip is lossless: config, metadata, reconstructed trace,
    integrity report, counters, traffic log and retry attempts all
    compare equal to the original.
    """
    from .store.serialize import load_result_file

    return load_result_file(path)


def get_analyzer(name: str) -> "Analyzer":
    """Look up one registered trace analyzer by name."""
    from .core.analyzers.registry import get_analyzer as _get

    return _get(name)


def iter_analyzers():
    """Iterate the registered analyzers in stable name order."""
    from .core.analyzers.registry import iter_analyzers as _iter

    return _iter()


def quick_config(**kwargs) -> "TestConfig":
    """Alias of :func:`repro.quick_config` so the facade is complete."""
    from . import quick_config as _quick_config

    return _quick_config(**kwargs)
