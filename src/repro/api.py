"""The stable programmatic facade: ``import repro.api`` (or just
``repro``) and stop caring where things live.

The internal layout (``core.orchestrator``, ``core.suite``,
``core.fuzz``, ``store.serialize``, …) moves as the testbed grows; the
handful of names here does not. Everything a script, notebook or
downstream harness needs:

* :class:`JobSpec` — one versioned, fingerprinted unit of campaign
  work, shared verbatim by the CLI, this facade and the campaign
  daemon;
* :func:`execute_jobspec` — run a spec locally and get its full
  outcome (report text, exit code, rich result object);
* :class:`Client` — submit/status/results/cancel (plus a blocking
  ``wait()``) against a running ``repro serve`` daemon;
* :func:`run_test` / :func:`run_suite` / :func:`run_fuzz_campaign` —
  the historical one-call helpers, now thin wrappers that build the
  same ``JobSpec`` the CLI builds and execute it locally (signatures
  unchanged);
* :func:`save_result` / :func:`load_result` — lossless TestResult
  round-trip as standalone versioned JSON;
* :func:`iter_analyzers` / :func:`get_analyzer` — the registered trace
  analyzers behind the uniform Analyzer protocol.

Heavy subsystems import lazily inside each function (service names via
module ``__getattr__``), so ``import repro.api`` stays cheap (CLI
startup, spawn workers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:
    from .core.analyzers.base import Analyzer
    from .core.config import TestConfig
    from .core.fuzz.fuzzer import FuzzReport
    from .core.results import TestResult
    from .core.suite import Scorecard
    from .store.index import CampaignStore

__all__ = ["run_test", "run_suite", "run_fuzz_campaign",
           "save_result", "load_result",
           "get_analyzer", "iter_analyzers", "quick_config",
           "JobSpec", "JobOutcome", "execute_jobspec",
           "Client", "ServiceError", "CampaignDaemon"]

#: Facade names that resolve to :mod:`repro.service` on first access.
_SERVICE_NAMES = frozenset({"JobSpec", "JobOutcome", "execute_jobspec",
                            "Client", "ServiceError", "CampaignDaemon"})


def __getattr__(name: str):
    if name in _SERVICE_NAMES:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_test(config: "TestConfig",
             store: Optional["CampaignStore"] = None) -> "TestResult":
    """Run one test end to end (build, simulate, collect, §3.5 retry).

    With a ``store``, a previously-run identical config is replayed
    from disk — full trace included — instead of simulated again.
    Equivalent to executing ``JobSpec.for_run(config)``.
    """
    from .service import JobSpec, execute_jobspec

    spec = JobSpec.for_run(config)
    return execute_jobspec(spec, store=store).value


def run_suite(nic: str, seed: Optional[int] = None,
              checks: Optional[List[str]] = None, workers: int = 1,
              faults=None,
              store: Optional["CampaignStore"] = None) -> "Scorecard":
    """Run the conformance battery (or a subset) against one NIC model.

    ``seed=None`` means the battery's canonical seed
    (:data:`repro.core.suite.DEFAULT_SUITE_SEED`). ``faults`` is a
    scenario name (JobSpec path) or, for ad-hoc experiments, a
    :class:`~repro.faults.FaultScenario` instance — instances are not
    JSON, so they bypass the spec and call the suite directly.
    """
    if faults is not None and not isinstance(faults, str):
        from .core.suite import run_conformance_suite

        return run_conformance_suite(nic, seed=seed, checks=checks,
                                     workers=workers, faults=faults,
                                     store=store)
    from .service import JobSpec, execute_jobspec

    spec = JobSpec.for_suite(nic, seed=seed, checks=checks, faults=faults,
                             workers=workers)
    return execute_jobspec(spec, store=store).value


def run_fuzz_campaign(base_config: "TestConfig", iterations: int = 20,
                      seed: int = 1, workers: int = 1, batch_size: int = 4,
                      anomaly_threshold: float = 3.0,
                      stop_on_first: bool = False,
                      campaign_dir: Optional[str] = None,
                      store: Optional["CampaignStore"] = None,
                      ) -> "FuzzReport":
    """Fuzz around a base config (Algorithm 1) and return the report.

    ``campaign_dir`` makes the campaign persistent and resumable: runs
    are cached in ``<dir>/store`` and per-generation state journaled in
    ``<dir>/journal.jsonl``, so re-invoking after an interruption
    continues exactly where it stopped and yields a byte-identical
    final report. Equivalent to executing ``JobSpec.for_fuzz(...)``.
    """
    from .service import JobSpec, execute_jobspec

    spec = JobSpec.for_fuzz(config=base_config, iterations=iterations,
                            seed=seed, batch=batch_size,
                            threshold=anomaly_threshold,
                            stop_on_first=stop_on_first, workers=workers)
    return execute_jobspec(spec, store=store,
                           campaign_dir=campaign_dir).value


def save_result(result: "TestResult", path: str) -> str:
    """Write one TestResult as standalone JSON; returns ``path``."""
    from .store.serialize import save_result_file

    return save_result_file(result, path)


def load_result(path: str) -> "TestResult":
    """Load a :func:`save_result` file back into a full TestResult.

    The round-trip is lossless: config, metadata, reconstructed trace,
    integrity report, counters, traffic log and retry attempts all
    compare equal to the original.
    """
    from .store.serialize import load_result_file

    return load_result_file(path)


def get_analyzer(name: str) -> "Analyzer":
    """Look up one registered trace analyzer by name."""
    from .core.analyzers.registry import get_analyzer as _get

    return _get(name)


def iter_analyzers():
    """Iterate the registered analyzers in stable name order."""
    from .core.analyzers.registry import iter_analyzers as _iter

    return _iter()


def quick_config(**kwargs) -> "TestConfig":
    """Alias of :func:`repro.quick_config` so the facade is complete."""
    from . import quick_config as _quick_config

    return _quick_config(**kwargs)
