"""Discrete-event simulation substrate (engine, processes, seeded RNG)."""

from .engine import Event, Simulator, SimulationError, US, MS, SEC
from .process import Process, Signal, Timeout, spawn, all_of
from .rng import SimRandom

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "US",
    "MS",
    "SEC",
    "Process",
    "Signal",
    "Timeout",
    "spawn",
    "all_of",
    "SimRandom",
]
