"""Seeded randomness for the simulation.

All stochastic elements of the reproduction — latency jitter in the RNIC
models, the randomly generated QPNs/IPSNs of the traffic generators, the
fuzzer's mutations — draw from :class:`SimRandom` instances derived from
a single run seed, so a test run is exactly reproducible from its
configuration. Components never touch :mod:`random`'s global state.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

__all__ = ["SimRandom"]

T = TypeVar("T")


class SimRandom:
    """A namespaced deterministic random source.

    Child sources are derived by name so that adding a new consumer of
    randomness does not perturb the streams seen by existing consumers
    (important for keeping regression baselines stable).
    """

    def __init__(self, seed: int, namespace: str = "root"):
        self.seed = int(seed)
        self.namespace = namespace
        self._rng = random.Random(f"{seed}:{namespace}")

    def child(self, namespace: str) -> "SimRandom":
        """Derive an independent stream for a sub-component."""
        return SimRandom(self.seed, f"{self.namespace}/{namespace}")

    def getstate(self) -> tuple:
        """Internal generator state (JSON-representable tuple of ints).

        Lets long-running consumers — the fuzzer's campaign journal —
        checkpoint and later resume the stream exactly where it left
        off, which is what makes killed campaigns byte-identical to
        uninterrupted ones on resume.
        """
        return self._rng.getstate()

    def setstate(self, state) -> None:
        """Restore a state captured by :meth:`getstate`.

        Accepts the JSON round-tripped form (nested lists) as well as
        the native tuple.
        """
        version, internal, gauss_next = state
        self._rng.setstate((int(version), tuple(int(v) for v in internal),
                            gauss_next))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def ephemeral_port(self) -> int:
        """Uniform port in [1024, 65535].

        Stream-identical to ``randint(1024, 65535)`` — it replicates
        CPython's ``Random._randbelow`` rejection sampling for a 16-bit
        span over the same ``getrandbits`` source — but skips the
        randint/randrange/_randbelow call tower. The mirror block draws
        one per captured packet, which made the tower measurable.
        """
        getrandbits = self._rng.getrandbits
        r = getrandbits(16)
        while r >= 64512:  # 65535 - 1024 + 1
            r = getrandbits(16)
        return 1024 + r

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def jitter_ns(self, base_ns: int, fraction: float = 0.05) -> int:
        """``base_ns`` perturbed by a uniform +/- ``fraction`` jitter.

        Used by the RNIC profiles so latency curves have realistic
        (but reproducible) variance rather than being perfectly flat.
        A non-negative result is guaranteed.
        """
        if base_ns <= 0:
            return max(0, base_ns)
        spread = base_ns * fraction
        # uniform(-spread, spread) inlined with identical evaluation
        # order (spread - (-spread) == 2.0 * spread exactly in IEEE
        # 754), so the jitter stays bit-identical to the uniform() call
        # it replaces.
        jittered = int(base_ns + (-spread + 2.0 * spread * self._rng.random()))
        return jittered if jittered > 0 else 0

    def qpn(self) -> int:
        """A random 24-bit queue pair number, as RNICs allocate at runtime."""
        return self._rng.randint(0x000100, 0xFFFFFE)

    def psn(self) -> int:
        """A random 24-bit initial packet sequence number."""
        return self._rng.randint(0, 0xFFFFFF)
