"""Coroutine-style processes on top of the event engine.

The traffic generators are easiest to express as sequential programs
("post N requests, wait for completions, synchronise, repeat"), so this
module provides a generator-based process abstraction similar in spirit
to SimPy: a process is a Python generator that yields *waitables* —
:class:`Timeout`, :class:`Signal` or another :class:`Process` — and is
resumed by the engine when the waitable completes.
"""

from __future__ import annotations

from typing import Any, Generator, List

from .engine import Simulator

__all__ = ["Timeout", "Signal", "Process", "spawn"]


class Timeout:
    """Waitable that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0")
        self.delay = int(delay)


class Signal:
    """A broadcast waitable: processes wait on it; ``fire`` resumes them all.

    The value passed to :meth:`fire` is delivered as the result of the
    ``yield``. A signal can be fired once; later waits complete
    immediately with the stored value (like a resolved future).
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._fired = False
        self._value: Any = None
        self._waiters: List["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        """Resume every waiting process with ``value``."""
        if self._fired:
            return
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.schedule(0, proc._resume, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self._sim.schedule(0, proc._resume, self._value)
        else:
            self._waiters.append(proc)


class Process:
    """Wraps a generator and steps it through the simulator.

    The generator's ``return`` value becomes the process result; other
    processes that ``yield`` this process resume with that result.
    """

    def __init__(self, sim: Simulator, gen: Generator, name: str = "proc"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self._completion = Signal(sim)
        sim.schedule(0, self._resume, None)

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        try:
            waitable = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._completion.fire(stop.value)
            return
        self._wait_on(waitable)

    def _wait_on(self, waitable: Any) -> None:
        if isinstance(waitable, Timeout):
            self._sim.schedule(waitable.delay, self._resume, None)
        elif isinstance(waitable, Signal):
            waitable._add_waiter(self)
        elif isinstance(waitable, Process):
            waitable._completion._add_waiter(self)
        else:
            raise TypeError(f"process {self.name!r} yielded {waitable!r}; "
                            "expected Timeout, Signal or Process")

    @property
    def completion(self) -> Signal:
        """Signal fired (with the result) when the process finishes."""
        return self._completion


def spawn(sim: Simulator, gen: Generator, name: str = "proc") -> Process:
    """Start ``gen`` as a process on ``sim`` and return its handle."""
    return Process(sim, gen, name=name)


def all_of(sim: Simulator, procs: List[Process]) -> Signal:
    """Signal that fires once every process in ``procs`` has finished.

    The signal's value is the list of individual results in order. Used
    by the requester for barrier synchronisation across QPs (§3.2).
    """
    barrier = Signal(sim)
    remaining = [len(procs)]
    if not procs:
        barrier.fire([])
        return barrier

    def _one_done(proc: Process) -> None:
        def _cb(gen_inner=None):
            remaining[0] -= 1
            if remaining[0] == 0:
                barrier.fire([p.result for p in procs])
        # Wait via a tiny shim process so Signal semantics stay uniform.
        def _shim():
            yield proc
            _cb()
        spawn(sim, _shim(), name=f"join-{proc.name}")

    for p in procs:
        _one_done(p)
    return barrier
