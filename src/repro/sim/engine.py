"""Discrete-event simulation engine.

Everything in the reproduction runs on this engine: links, switch
pipelines, RNIC models, traffic generators and dumpers all schedule
callbacks on a single :class:`Simulator`. Time is kept as an integer
number of nanoseconds so runs are exactly reproducible — there is no
floating-point drift and no dependence on wall-clock time.

The engine is deliberately small: a binary heap of timestamped events,
a monotonically increasing sequence number to break ties determinist-
ically, and cancellation support. Coroutine-style processes are layered
on top in :mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]

#: One microsecond expressed in engine ticks (nanoseconds).
US = 1_000
#: One millisecond expressed in engine ticks.
MS = 1_000_000
#: One second expressed in engine ticks.
SEC = 1_000_000_000


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` so callers can cancel pending
    work (e.g. a retransmission timer that is defused by an ACK).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} fn={getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with nanosecond resolution.

    Events scheduled for the same tick fire in scheduling order (FIFO),
    which makes multi-component models reproducible without explicit
    tie-breaking by the caller.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all callbacks already queued for the current tick.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        event = Event(self._now + int(delay), next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(int(time), next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time when the run stopped. ``until`` is an
        absolute time; the clock is advanced to ``until`` even if the
        queue drains earlier, mirroring how a testbed run has a fixed
        wall-clock window.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        budget = max_events if max_events is not None else float("inf")
        try:
            while self._queue and budget > 0:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.fn(*event.args)
                self._processed += 1
                budget -= 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ns of simulated time from now."""
        return self.run(until=self._now + int(duration))

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0
        self._processed = 0
