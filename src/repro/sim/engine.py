"""Discrete-event simulation engine.

Everything in the reproduction runs on this engine: links, switch
pipelines, RNIC models, traffic generators and dumpers all schedule
callbacks on a single :class:`Simulator`. Time is kept as an integer
number of nanoseconds so runs are exactly reproducible — there is no
floating-point drift and no dependence on wall-clock time.

The engine is deliberately small: a binary heap of timestamped events,
a monotonically increasing sequence number to break ties determinist-
ically, and cancellation support. Coroutine-style processes are layered
on top in :mod:`repro.sim.process`.

Cancelled events are not removed from the heap eagerly (heap deletion
is O(n)); instead the engine keeps live/cancelled counts and compacts
the heap lazily once cancelled entries outnumber live ones — so long
runs that arm and defuse millions of retransmission timers neither leak
heap memory nor pay per-cancel restructuring costs.

Observability: the engine itself stays telemetry-free, but exposes a
``probe`` attribute (default ``None``). When :mod:`repro.telemetry`
attaches a probe, the run loop times every callback on the wall clock
and reports queue depth — one attribute check per event when disabled.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter_ns
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]

#: One microsecond expressed in engine ticks (nanoseconds).
US = 1_000
#: One millisecond expressed in engine ticks.
MS = 1_000_000
#: One second expressed in engine ticks.
SEC = 1_000_000_000

#: Queues smaller than this are never compacted (not worth the churn).
_COMPACT_MIN_QUEUE = 64


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` so callers can cancel pending
    work (e.g. a retransmission timer that is defused by an ACK).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} fn={getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with nanosecond resolution.

    Events scheduled for the same tick fire in scheduling order (FIFO),
    which makes multi-component models reproducible without explicit
    tie-breaking by the caller.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0        # queued events that are not cancelled
        self._cancelled = 0   # cancelled events still sitting in the heap
        #: Optional telemetry probe (duck-typed; see repro.telemetry).
        self.probe = None

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (not cancelled) events still queued. O(1)."""
        return self._live

    @property
    def queue_size(self) -> int:
        """Heap entries, including not-yet-compacted cancelled events."""
        return len(self._queue)

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all callbacks already queued for the current tick.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        event = Event(self._now + int(delay), next(self._seq), fn, args, self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(int(time), next(self._seq), fn, args, self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _note_cancel(self) -> None:
        """A queued event was cancelled; compact once they dominate."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue) \
                and len(self._queue) >= _COMPACT_MIN_QUEUE:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortised O(n))."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time when the run stopped. ``until`` is an
        absolute time; the clock is advanced to ``until`` even if the
        queue drains earlier, mirroring how a testbed run has a fixed
        wall-clock window.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        budget = max_events if max_events is not None else float("inf")
        probe = self.probe
        try:
            while self._queue and budget > 0:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event._sim = None  # popped: late cancels are accounting no-ops
                self._live -= 1
                self._now = event.time
                if probe is None:
                    event.fn(*event.args)
                else:
                    wall_start = perf_counter_ns()
                    event.fn(*event.args)
                    probe.record(event.fn, perf_counter_ns() - wall_start,
                                 self._now, self._live)
                self._processed += 1
                budget -= 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ns of simulated time from now."""
        return self.run(until=self._now + int(duration))

    def reset(self) -> None:
        """Discard pending events, rewind the clock *and* the tie-break
        sequence, so a reset simulator reproduces the exact event IDs and
        ordering of a fresh one (telemetry span IDs rely on this).
        """
        for event in self._queue:
            event._sim = None  # detach: late cancels must not touch counts
        self._queue.clear()
        self._now = 0
        self._processed = 0
        self._seq = itertools.count()
        self._live = 0
        self._cancelled = 0
