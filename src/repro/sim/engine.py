"""Discrete-event simulation engine.

Everything in the reproduction runs on this engine: links, switch
pipelines, RNIC models, traffic generators and dumpers all schedule
callbacks on a single :class:`Simulator`. Time is kept as an integer
number of nanoseconds so runs are exactly reproducible — there is no
floating-point drift and no dependence on wall-clock time.

Pending events live in a bucketed timer structure: a dict keyed by the
absolute tick holds each tick's FIFO of events, and a binary heap of
the *distinct* tick values orders the buckets. The engine's sequence
counter is monotonic, so plain list appends keep every bucket in exact
``(time, seq)`` order — scheduling into an existing tick (the same-tick
fan-out and zero-delay hand-offs that dominate switch pipelines) is
O(1) with no heap traffic and no Python-level comparisons, and the heap
only ever compares machine ints (C-speed), never :class:`Event`
objects. The dominant per-link serialization delays land one int per
distinct arrival tick in the heap; bursts arriving on the same tick
share a bucket.

Cancelled events are not removed eagerly (bucket deletion is O(n));
instead the engine keeps live/cancelled counts and compacts the
buckets lazily once cancelled entries outnumber live ones — so long
runs that arm and defuse millions of retransmission timers neither leak
memory nor pay per-cancel restructuring costs.

Observability: the engine itself stays telemetry-free, but exposes a
``probe`` attribute (default ``None``). When :mod:`repro.telemetry`
attaches a probe, the run loop times every callback on the wall clock
and reports queue depth — one attribute check per event when disabled.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "Simulator", "SimulationError"]

#: One microsecond expressed in engine ticks (nanoseconds).
US = 1_000
#: One millisecond expressed in engine ticks.
MS = 1_000_000
#: One second expressed in engine ticks.
SEC = 1_000_000_000

#: Queues smaller than this are never compacted (not worth the churn).
_COMPACT_MIN_QUEUE = 64

#: Integer budget sentinel: "no max_events bound". The run loop counts
#: the budget *down to zero*, so any negative start never terminates it
#: — int comparisons only, no float("inf") on the per-event path.
_UNBOUNDED = -1


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` so callers can cancel pending
    work (e.g. a retransmission timer that is defused by an ACK).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} fn={getattr(self.fn, '__name__', self.fn)} {state}>"


#: object.__new__ hoisted for the schedule fast paths.
_new_event = Event.__new__


class Simulator:
    """Deterministic discrete-event simulator with nanosecond resolution.

    Events scheduled for the same tick fire in scheduling order (FIFO),
    which makes multi-component models reproducible without explicit
    tie-breaking by the caller.

    Slotted: the dispatch loop touches simulator state on every event,
    and slot access is measurably cheaper than an instance dict.
    """

    __slots__ = ("_now", "_seq", "_running", "_processed", "_live",
                 "_cancelled", "_size", "_times", "_buckets", "_active",
                 "_active_pos", "_active_time", "probe")

    def __init__(self) -> None:
        self._now: int = 0
        self._seq = 0  # next tie-break sequence number (plain int: cheaper than an iterator on the schedule fast path)
        self._running = False
        self._processed = 0
        self._live = 0        # queued events that are not cancelled
        self._cancelled = 0   # cancelled events still sitting in buckets
        self._size = 0        # all queued events, cancelled included
        # Timer buckets: tick -> FIFO of events, ordered by a heap of
        # the distinct tick values. The bucket being drained is held
        # aside in _active so same-tick appends stay O(1) list pushes.
        self._times: List[int] = []
        self._buckets: Dict[int, List[Event]] = {}
        self._active: List[Event] = []
        self._active_pos = 0
        self._active_time: Optional[int] = None
        #: Optional telemetry probe (duck-typed; see repro.telemetry).
        self.probe = None

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (not cancelled) events still queued. O(1)."""
        return self._live

    @property
    def queue_size(self) -> int:
        """Queued events, including not-yet-compacted cancelled ones."""
        return self._size

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all callbacks already queued for the current tick.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        time = self._now + int(delay)
        # Event built via __new__ + slot stores (skips the __init__
        # frame), then filed inline: the hottest allocation site.
        event = _new_event(Event)
        event.time = time
        event.seq = seq = self._seq
        self._seq = seq + 1
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._sim = self
        if time == self._active_time:
            self._active.append(event)
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [event]
                heapq.heappush(self._times, time)
            else:
                bucket.append(event)
        self._live += 1
        self._size += 1
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        time = int(time)
        # Same fast construction + inline filing as schedule().
        event = _new_event(Event)
        event.time = time
        event.seq = seq = self._seq
        self._seq = seq + 1
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._sim = self
        if time == self._active_time:
            self._active.append(event)
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [event]
                heapq.heappush(self._times, time)
            else:
                bucket.append(event)
        self._live += 1
        self._size += 1
        return event

    def _note_cancel(self) -> None:
        """A queued event was cancelled; compact once they dominate."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled * 2 > self._size and self._size >= _COMPACT_MIN_QUEUE:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the buckets (amortised O(n)).

        Filtering preserves append order, so every rebuilt bucket stays
        seq-sorted; the times heap is rebuilt from the surviving ticks.
        """
        tail = [e for e in self._active[self._active_pos:] if not e.cancelled]
        consumed = self._active_pos
        self._active = self._active[:consumed] + tail
        buckets: Dict[int, List[Event]] = {}
        for time, events in self._buckets.items():
            live = [e for e in events if not e.cancelled]
            if live:
                buckets[time] = live
        self._buckets = buckets
        # In place: the run loop holds an alias to this list. A sorted
        # list is a valid heap.
        self._times[:] = sorted(buckets)
        self._cancelled = 0
        self._size = len(tail) + sum(len(b) for b in buckets.values())

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time when the run stopped. ``until`` is an
        absolute time; the clock is advanced to ``until`` even if the
        queue drains earlier, mirroring how a testbed run has a fixed
        wall-clock window.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Unbounded runs skip budget arithmetic entirely: a per-event
        # integer decrement allocates outside CPython's small-int cache.
        bounded = max_events is not None
        budget = int(max_events) if bounded else 0
        probe = self.probe
        times = self._times
        processed = 0
        try:
            if until is not None and self._active_time is not None \
                    and self._active_pos < len(self._active) \
                    and self._active_time > until:
                # A bounded previous run left a bucket beyond this
                # window half-drained; nothing to do inside it.
                bounded = True
                budget = 0
            heappop = heapq.heappop
            while not bounded or budget > 0:
                pos = self._active_pos
                active = self._active
                try:
                    event = active[pos]
                except IndexError:
                    # Bucket drained: activate the earliest pending one.
                    if not times:
                        break
                    time = times[0]
                    if until is not None and time > until:
                        break
                    heappop(times)
                    active = self._buckets.pop(time)
                    self._active = active
                    self._active_time = time
                    self._now = time
                    pos = 0
                    event = active[0]  # buckets are created non-empty
                self._active_pos = pos + 1
                self._size -= 1
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event._sim = None  # popped: late cancels are accounting no-ops
                self._live -= 1
                if probe is None:
                    event.fn(*event.args)
                else:
                    wall_start = perf_counter_ns()
                    event.fn(*event.args)
                    probe.record(event.fn, perf_counter_ns() - wall_start,
                                 self._now, self._live)
                processed += 1
                if bounded:
                    budget -= 1
            if self._active_pos >= len(self._active) and self._active:
                # Free processed events; keep _active_time so zero-delay
                # appends at the current tick still take the fast path.
                self._active = []
                self._active_pos = 0
        finally:
            # Batched: callbacks never read the processed tally mid-run,
            # and one attribute store replaces one per event.
            self._processed += processed
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ns of simulated time from now."""
        return self.run(until=self._now + int(duration))

    def reset(self) -> None:
        """Discard pending events, rewind the clock *and* the tie-break
        sequence, so a reset simulator reproduces the exact event IDs and
        ordering of a fresh one (telemetry span IDs rely on this).
        """
        for event in self._active[self._active_pos:]:
            event._sim = None  # detach: late cancels must not touch counts
        for bucket in self._buckets.values():
            for event in bucket:
                event._sim = None
        self._times.clear()  # in place: run() may hold an alias
        self._buckets = {}
        self._active = []
        self._active_pos = 0
        self._active_time = None
        self._now = 0
        self._processed = 0
        self._seq = 0
        self._live = 0
        self._cancelled = 0
        self._size = 0
