"""Stable JSON serialization for campaign artefacts.

Everything the store replays — full :class:`TestResult` objects, fuzz
scores, suite check verdicts, fuzz reports — round-trips through plain
JSON dicts such that ``decode(encode(x)) == x`` under dataclass
equality. The trace is the subtle part: parsed records carry no raw
bytes, but every byte of a trimmed dump record is reconstructible from
its headers (payloads are zeroed on capture, §5), so records are
stored as hex wire bytes and reloaded through the same
:func:`~repro.core.trace.reconstruct_trace` path a live run uses —
ITER derivation included, so a replayed trace is indistinguishable
from a fresh one.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Tuple

from ..core.config import TestConfig
from ..core.intent import QpMetadata
from ..core.results import AttemptRecord, HostCounters, TestResult
from ..core.trace import IntegrityReport, PacketTrace, reconstruct_trace
from ..core.trafficgen import MessageRecord, QpStats, TrafficGenLog
from ..dumper.records import TRIM_BYTES, DumpRecord, ParsedRecord
from ..net.headers import ETH_HEADER_LEN
from ..rdma.verbs import Verb, WcStatus

__all__ = [
    "DOCUMENT_SCHEMA_VERSION",
    "wrap_document", "unwrap_document",
    "encode_result", "decode_result",
    "encode_score", "decode_score",
    "encode_check_result", "decode_check_result",
    "encode_analyzer_result", "decode_analyzer_result",
    "encode_fuzz_report", "decode_fuzz_report",
]

#: Version stamped into every JSON document that crosses the wire or
#: lands on disk as a standalone file (job specs, job status payloads,
#: result documents, ``save_result`` files). Bump when an envelope's
#: ``body`` shape changes incompatibly.
DOCUMENT_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Versioned document envelope
# ---------------------------------------------------------------------------

def wrap_document(kind: str, body: Dict) -> Dict:
    """Wrap ``body`` in the versioned envelope every persisted or
    wire-crossing JSON document carries.

    The envelope is deliberately tiny — ``schema-version`` names the
    format revision, ``kind`` what the body is (``job-spec``,
    ``job-status``, ``job-result``, ``test-result``, ...) — so readers
    can dispatch before touching the body.
    """
    return {"schema-version": DOCUMENT_SCHEMA_VERSION, "kind": kind,
            "body": body}


def unwrap_document(data: Dict, kind: Optional[str] = None,
                    ) -> Tuple[int, Dict]:
    """``(schema_version, body)`` of an envelope, tolerating legacy docs.

    A document without a ``schema-version`` key predates the envelope;
    it is returned as-is with version ``0`` and a DeprecationWarning so
    producers migrate. ``kind`` (when given) is validated against the
    envelope, and a document from a *newer* schema than this code
    understands is rejected rather than misread.
    """
    if not isinstance(data, dict):
        raise ValueError(f"expected a JSON object, got {type(data).__name__}")
    if "schema-version" not in data:
        warnings.warn(
            "loading an unversioned legacy document; re-save it to add "
            "the schema-version envelope", DeprecationWarning, stacklevel=2)
        return 0, data
    version = int(data["schema-version"])
    if version > DOCUMENT_SCHEMA_VERSION:
        raise ValueError(
            f"document schema-version {version} is newer than this "
            f"code understands (max {DOCUMENT_SCHEMA_VERSION})")
    if kind is not None and data.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} document, "
                         f"got {data.get('kind')!r}")
    body = data.get("body")
    if not isinstance(body, dict):
        raise ValueError("versioned document has no body object")
    return version, body


# ---------------------------------------------------------------------------
# Trace records
# ---------------------------------------------------------------------------

def _record_raw(rec: ParsedRecord) -> bytes:
    """Rebuild a record's trimmed wire bytes from its parsed headers.

    Mirrors :func:`repro.dumper.records.make_record`: headers packed
    back to back, zero-padded to the trimmed wire length
    ``min(TRIM_BYTES, eth + ip.total_length)`` — payload bytes are
    zeroed at capture time, so nothing is lost.
    """
    parts = [rec.eth.pack(), rec.ip.pack(), rec.udp.pack(), rec.bth.pack()]
    if rec.reth is not None:
        parts.append(rec.reth.pack())
    if rec.aeth is not None:
        parts.append(rec.aeth.pack())
    headers = b"".join(parts)
    wire_len = min(TRIM_BYTES, ETH_HEADER_LEN + rec.ip.total_length)
    if len(headers) >= wire_len:
        return headers[:wire_len]
    return headers + bytes(wire_len - len(headers))


def _encode_trace(trace: PacketTrace) -> Dict:
    return {
        "expected-packets": trace.expected_packets,
        "records": [
            {"raw": _record_raw(p.record).hex(),
             "rx-time-ns": p.record.rx_time_ns,
             "server": p.record.server,
             "core": p.record.core}
            for p in trace.packets
        ],
    }


def _decode_trace(data: Dict) -> PacketTrace:
    records = [
        DumpRecord(raw=bytes.fromhex(r["raw"]), rx_time_ns=r["rx-time-ns"],
                   server=r["server"], core=r["core"])
        for r in data["records"]
    ]
    return reconstruct_trace(records, expected_packets=data["expected-packets"])


# ---------------------------------------------------------------------------
# Result components
# ---------------------------------------------------------------------------

def _encode_integrity(report: IntegrityReport) -> Dict:
    return {
        "seq-consecutive": report.seq_consecutive,
        "mirror-count-matches": report.mirror_count_matches,
        "roce-count-matches": report.roce_count_matches,
        "trace-packets": report.trace_packets,
        "mirrored-packets": report.mirrored_packets,
        "roce-rx-packets": report.roce_rx_packets,
        "missing-seqs": list(report.missing_seqs),
    }


def _decode_integrity(data: Dict) -> IntegrityReport:
    return IntegrityReport(
        seq_consecutive=data["seq-consecutive"],
        mirror_count_matches=data["mirror-count-matches"],
        roce_count_matches=data["roce-count-matches"],
        trace_packets=data["trace-packets"],
        mirrored_packets=data["mirrored-packets"],
        roce_rx_packets=data["roce-rx-packets"],
        missing_seqs=list(data["missing-seqs"]),
    )


def _encode_metadata(meta: QpMetadata) -> Dict:
    return {
        "index": meta.index,
        "requester-ip": meta.requester_ip,
        "requester-qpn": meta.requester_qpn,
        "requester-ipsn": meta.requester_ipsn,
        "responder-ip": meta.responder_ip,
        "responder-qpn": meta.responder_qpn,
        "responder-ipsn": meta.responder_ipsn,
        "verb": meta.verb.value,
    }


def _decode_metadata(data: Dict) -> QpMetadata:
    return QpMetadata(
        index=data["index"],
        requester_ip=data["requester-ip"],
        requester_qpn=data["requester-qpn"],
        requester_ipsn=data["requester-ipsn"],
        responder_ip=data["responder-ip"],
        responder_qpn=data["responder-qpn"],
        responder_ipsn=data["responder-ipsn"],
        verb=Verb(data["verb"]),
    )


def _encode_host_counters(hc: HostCounters) -> Dict:
    return {"host": hc.host, "nic-type": hc.nic_type,
            "canonical": dict(hc.canonical), "vendor": dict(hc.vendor),
            "suppressed": dict(hc.suppressed)}


def _decode_host_counters(data: Dict) -> HostCounters:
    return HostCounters(host=data["host"], nic_type=data["nic-type"],
                        canonical=dict(data["canonical"]),
                        vendor=dict(data["vendor"]),
                        suppressed=dict(data["suppressed"]))


def _encode_message(msg: MessageRecord) -> Dict:
    return {
        "qp-index": msg.qp_index,
        "msg-index": msg.msg_index,
        "wr-id": msg.wr_id,
        "verb": msg.verb.value,
        "size": msg.size,
        "posted-at": msg.posted_at,
        "completed-at": msg.completed_at,
        "status": msg.status.value if msg.status is not None else None,
    }


def _decode_message(data: Dict) -> MessageRecord:
    status = data["status"]
    return MessageRecord(
        qp_index=data["qp-index"],
        msg_index=data["msg-index"],
        wr_id=data["wr-id"],
        verb=Verb(data["verb"]),
        size=data["size"],
        posted_at=data["posted-at"],
        completed_at=data["completed-at"],
        status=WcStatus(status) if status is not None else None,
    )


def _encode_traffic_log(log: TrafficGenLog) -> Dict:
    return {
        "per-qp": [
            {"qp-index": qp.qp_index,
             "messages": [_encode_message(m) for m in qp.messages]}
            for qp in log.per_qp
        ],
        "started-at": log.started_at,
        "finished-at": log.finished_at,
        "aborted-qps": log.aborted_qps,
    }


def _decode_traffic_log(data: Dict) -> TrafficGenLog:
    return TrafficGenLog(
        per_qp=[
            QpStats(qp_index=qp["qp-index"],
                    messages=[_decode_message(m) for m in qp["messages"]])
            for qp in data["per-qp"]
        ],
        started_at=data["started-at"],
        finished_at=data["finished-at"],
        aborted_qps=data["aborted-qps"],
    )


def _encode_attempt(attempt: AttemptRecord) -> Dict:
    return {
        "attempt": attempt.attempt,
        "integrity": _encode_integrity(attempt.integrity),
        "trace-packets": attempt.trace_packets,
        "dumper-discards": attempt.dumper_discards,
        "duration-ns": attempt.duration_ns,
        "backoff-ns": attempt.backoff_ns,
    }


def _decode_attempt(data: Dict) -> AttemptRecord:
    return AttemptRecord(
        attempt=data["attempt"],
        integrity=_decode_integrity(data["integrity"]),
        trace_packets=data["trace-packets"],
        dumper_discards=data["dumper-discards"],
        duration_ns=data["duration-ns"],
        backoff_ns=data["backoff-ns"],
    )


# ---------------------------------------------------------------------------
# TestResult
# ---------------------------------------------------------------------------

def encode_result(result: TestResult) -> Dict:
    """``TestResult`` → JSON-serialisable dict (see :func:`decode_result`)."""
    data = {
        "config": result.config.to_dict(),
        "metadata": [_encode_metadata(m) for m in result.metadata],
        "trace": _encode_trace(result.trace),
        "integrity": _encode_integrity(result.integrity),
        "requester-counters": _encode_host_counters(result.requester_counters),
        "responder-counters": _encode_host_counters(result.responder_counters),
        "traffic-log": _encode_traffic_log(result.traffic_log),
        "switch-counters": result.switch_counters,
        "duration-ns": result.duration_ns,
        "dumper-discards": result.dumper_discards,
        "attempts": [_encode_attempt(a) for a in result.attempts],
        "dumper-core-stats": result.dumper_core_stats,
    }
    # Coverage artefacts appear only when recorded, so a coverage-off
    # encoding stays byte-identical to the pre-coverage format.
    if result.coverage is not None:
        data["coverage"] = result.coverage
    if result.flight_record is not None:
        data["flight-record"] = result.flight_record
    return data


def decode_result(data: Dict) -> TestResult:
    """Inverse of :func:`encode_result`: ``decode(encode(r)) == r``."""
    return TestResult(
        config=TestConfig.from_dict(data["config"]),
        metadata=[_decode_metadata(m) for m in data["metadata"]],
        trace=_decode_trace(data["trace"]),
        integrity=_decode_integrity(data["integrity"]),
        requester_counters=_decode_host_counters(data["requester-counters"]),
        responder_counters=_decode_host_counters(data["responder-counters"]),
        traffic_log=_decode_traffic_log(data["traffic-log"]),
        switch_counters=data["switch-counters"],
        duration_ns=data["duration-ns"],
        dumper_discards=data["dumper-discards"],
        attempts=[_decode_attempt(a) for a in data["attempts"]],
        dumper_core_stats=data["dumper-core-stats"],
        coverage=data.get("coverage"),
        flight_record=data.get("flight-record"),
    )


# ---------------------------------------------------------------------------
# Fuzzing artefacts
# ---------------------------------------------------------------------------

def encode_score(score) -> Dict:
    data = {"total": score.total, "valid": score.valid,
            "components": dict(score.components),
            "anomalies": list(score.anomalies)}
    if getattr(score, "coverage", None) is not None:
        data["coverage"] = score.coverage
    # Campaign-relative novelty appears only when assigned (journaled
    # finding scores, never store candidate entries — those are put
    # before selection runs), so cached scores stay campaign-neutral
    # and pre-novelty encodings are byte-unchanged.
    if getattr(score, "novelty", 0.0):
        data["novelty"] = score.novelty
    return data


def decode_score(data: Dict):
    from ..core.fuzz.score import Score

    return Score(total=data["total"], valid=data["valid"],
                 components=dict(data["components"]),
                 anomalies=list(data["anomalies"]),
                 coverage=data.get("coverage"),
                 novelty=data.get("novelty", 0.0))


def encode_fuzz_report(report) -> Dict:
    data = {
        "iterations-run": report.iterations_run,
        "invalid-runs": report.invalid_runs,
        "pool-scores": list(report.pool_scores),
        "findings": [],
    }
    for f in report.findings:
        finding = {"iteration": f.iteration, "config": f.config.to_dict(),
                   "score": encode_score(f.score)}
        if getattr(f, "count", 1) != 1:
            finding["count"] = f.count
        data["findings"].append(finding)
    if getattr(report, "coverage_growth", None):
        data["coverage-growth"] = list(report.coverage_growth)
    if getattr(report, "coverage", None) is not None:
        data["coverage"] = report.coverage
    # Guided-mode corpus accounting; omitted at zero so blind-GA
    # reports keep their historical byte shape.
    if getattr(report, "rediscoveries", 0):
        data["rediscoveries"] = report.rediscoveries
    if getattr(report, "pool_evictions", 0):
        data["pool-evictions"] = report.pool_evictions
    return data


def decode_fuzz_report(data: Dict):
    from ..core.fuzz.fuzzer import FuzzFinding, FuzzReport

    return FuzzReport(
        iterations_run=data["iterations-run"],
        invalid_runs=data["invalid-runs"],
        pool_scores=list(data["pool-scores"]),
        findings=[
            FuzzFinding(iteration=f["iteration"],
                        config=TestConfig.from_dict(f["config"]),
                        score=decode_score(f["score"]),
                        count=f.get("count", 1))
            for f in data["findings"]
        ],
        coverage_growth=list(data.get("coverage-growth", [])),
        coverage=data.get("coverage"),
        rediscoveries=data.get("rediscoveries", 0),
        pool_evictions=data.get("pool-evictions", 0),
    )


# ---------------------------------------------------------------------------
# Suite artefacts
# ---------------------------------------------------------------------------

def encode_check_result(check) -> Dict:
    data = {"name": check.name, "passed": check.passed,
            "detail": check.detail,
            "outcome": check.outcome.value if check.outcome else None}
    if getattr(check, "coverage", None) is not None:
        data["coverage"] = check.coverage
    if getattr(check, "flight_record", None) is not None:
        data["flight-record"] = check.flight_record
    return data


def decode_check_result(data: Dict):
    from ..core.suite import CheckResult, Outcome

    outcome = data["outcome"]
    return CheckResult(name=data["name"], passed=data["passed"],
                       detail=data["detail"],
                       outcome=Outcome(outcome) if outcome else None,
                       coverage=data.get("coverage"),
                       flight_record=data.get("flight-record"))


def encode_analyzer_result(result) -> Dict:
    """Flat projection of an :class:`AnalyzerResult` (drops ``data``)."""
    return result.to_dict()


def decode_analyzer_result(data: Dict):
    from ..core.analyzers.base import AnalyzerResult

    return AnalyzerResult.from_dict(data)


# ---------------------------------------------------------------------------
# Helpers shared by campaign front-ends
# ---------------------------------------------------------------------------

def save_result_file(result: TestResult, path: str) -> str:
    """Write one result as standalone JSON (the ``repro.api`` format).

    The file carries the versioned document envelope
    (:func:`wrap_document`); :func:`load_result_file` still reads
    pre-envelope files, with a DeprecationWarning.
    """
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(wrap_document("test-result", encode_result(result)),
                  handle, sort_keys=True, indent=1)
    return path


def load_result_file(path: str) -> TestResult:
    """Load a result written by :func:`save_result_file`."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    _version, body = unwrap_document(data, kind=None)
    return decode_result(body)
