"""Append-only campaign journal (JSONL checkpoints).

The fuzzer appends one record per generation — completed-iteration
count, full fuzzer state (RNG stream, seed counter, pool, sorted pool
scores) and the report so far — so a killed ``--campaign`` run resumes
from the last complete generation and finishes byte-identical to an
uninterrupted run. Loading tolerates a torn final line (the one a kill
can produce mid-append); a torn line simply means that generation is
re-run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

__all__ = ["CampaignJournal"]


class CampaignJournal:
    """One JSONL file of campaign checkpoints."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    @property
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, record: Dict) -> None:
        """Append one checkpoint; flushed so a later kill can't lose it."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> List[Dict]:
        """All intact records, in order; a torn tail line is dropped."""
        if not self.exists:
            return []
        records: List[Dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a kill mid-append: ignore
                raise
        return records

    def last(self, record_type: str) -> Optional[Dict]:
        """The most recent record of one type, or None."""
        for record in reversed(self.load()):
            if record.get("type") == record_type:
                return record
        return None
