"""The on-disk content-addressed store.

Entries live one-per-file under ``objects/<fp[:2]>/<fp>.json`` (the
two-hex-digit shard keeps directories small on big campaigns); a small
``index.json`` maps fingerprint → ``{kind, seq}`` where ``seq`` is a
monotonic insertion counter — the store's notion of age, used by
:meth:`CampaignStore.prune` instead of wall-clock timestamps so the
package stays free of nondeterminism (and inside repro-lint's DET001
scope). Writes are atomic (temp file + ``os.replace``); a store whose
index was lost or torn mid-write self-heals by rescanning the objects
tree (:meth:`CampaignStore.gc`).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional

from ..telemetry import runtime as telemetry

__all__ = ["CampaignStore", "StoreError"]

_INDEX_FILE = "index.json"
_OBJECTS_DIR = "objects"


class StoreError(RuntimeError):
    """A store directory is unusable or inconsistent with the campaign."""


def _atomic_write_json(path: str, payload) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
    os.replace(tmp, path)


class CampaignStore:
    """Content-addressed result cache keyed by config fingerprints.

    ``get``/``put`` are the whole hot API: campaign front-ends compute a
    fingerprint (:mod:`repro.store.fingerprint`), probe ``get`` before
    dispatching work, and ``put`` fresh outcomes after. Hits and misses
    are tallied locally (for the CLI's campaign summary) and on the
    telemetry session (``store_hits`` / ``store_misses``).
    """

    def __init__(self, root: str):
        self.root = root
        self._objects = os.path.join(root, _OBJECTS_DIR)
        os.makedirs(self._objects, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._index: Dict[str, Dict] = {}
        self._next_seq = 0
        self._load_index()

    # -- index persistence ---------------------------------------------
    def _index_path(self) -> str:
        return os.path.join(self.root, _INDEX_FILE)

    def _load_index(self) -> None:
        try:
            with open(self._index_path(), "r", encoding="utf-8") as handle:
                data = json.load(handle)
            self._index = dict(data.get("entries", {}))
            self._next_seq = int(data.get("next-seq", 0))
        except FileNotFoundError:
            self.gc()
        except (json.JSONDecodeError, ValueError, KeyError):
            # Torn index (e.g. a kill mid-write before os.replace ever
            # happened, or manual tampering): rebuild from the objects.
            self.gc()

    def _save_index(self) -> None:
        _atomic_write_json(self._index_path(),
                           {"next-seq": self._next_seq,
                            "entries": self._index})

    def _object_path(self, fp: str) -> str:
        return os.path.join(self._objects, fp[:2], fp + ".json")

    # -- the hot API ----------------------------------------------------
    def get(self, fp: str) -> Optional[Dict]:
        """The stored payload for ``fp``, or None (tallied as a miss)."""
        entry = self._index.get(fp)
        if entry is None:
            self.misses += 1
            telemetry.current().counter("store_misses").inc()
            return None
        try:
            with open(self._object_path(fp), "r", encoding="utf-8") as handle:
                obj = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            # Object vanished or was torn: treat as a miss and forget it.
            self._index.pop(fp, None)
            self._save_index()
            self.misses += 1
            telemetry.current().counter("store_misses").inc()
            return None
        self.hits += 1
        telemetry.current().counter("store_hits").inc()
        return obj["data"]

    def put(self, fp: str, kind: str, data) -> None:
        """Store ``data`` (JSON-serialisable) under fingerprint ``fp``."""
        seq = self._next_seq
        self._next_seq += 1
        path = self._object_path(fp)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _atomic_write_json(path, {"fingerprint": fp, "kind": kind,
                                  "seq": seq, "data": data})
        self._index[fp] = {"kind": kind, "seq": seq}
        self._save_index()

    def __contains__(self, fp: str) -> bool:
        return fp in self._index

    def __len__(self) -> int:
        return len(self._index)

    def fingerprints(self, kind: Optional[str] = None) -> Iterator[str]:
        """Stored fingerprints, oldest first (optionally one kind)."""
        entries = sorted(self._index.items(), key=lambda kv: kv[1]["seq"])
        for fp, entry in entries:
            if kind is None or entry["kind"] == kind:
                yield fp

    # -- maintenance ----------------------------------------------------
    def remove(self, fp: str) -> bool:
        """Drop one entry; True when it existed."""
        if fp not in self._index:
            return False
        self._index.pop(fp)
        try:
            os.remove(self._object_path(fp))
        except FileNotFoundError:
            pass
        self._save_index()
        return True

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries (by insertion seq) down to ``max_entries``."""
        if max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        excess = len(self._index) - max_entries
        if excess <= 0:
            return 0
        victims = list(self.fingerprints())[:excess]
        for fp in victims:
            self._index.pop(fp, None)
            try:
                os.remove(self._object_path(fp))
            except FileNotFoundError:
                pass
        self._save_index()
        return len(victims)

    def gc(self) -> int:
        """Rebuild the index from the objects tree; returns entry count.

        Fixes both directions of inconsistency: indexed entries whose
        object file vanished are dropped, and orphan object files (a
        crash between object write and index write) are re-adopted.
        """
        rebuilt: Dict[str, Dict] = {}
        max_seq = -1
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(shard_dir, name), "r",
                              encoding="utf-8") as handle:
                        obj = json.load(handle)
                    fp = obj["fingerprint"]
                    entry = {"kind": obj["kind"], "seq": int(obj["seq"])}
                except (json.JSONDecodeError, KeyError, ValueError):
                    continue  # torn object: ignore, a future put re-creates
                rebuilt[fp] = entry
                max_seq = max(max_seq, entry["seq"])
        self._index = rebuilt
        self._next_seq = max(self._next_seq, max_seq + 1)
        self._save_index()
        return len(rebuilt)

    def stats(self) -> str:
        """One-line campaign summary for the CLI."""
        return (f"store: {self.hits} hit(s), {self.misses} miss(es), "
                f"{len(self._index)} entr{'y' if len(self._index) == 1 else 'ies'}")
