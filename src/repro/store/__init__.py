"""Content-addressed campaign store (persistence & dedup layer).

Lumina campaigns — fuzzing generations, conformance batteries, NIC×seed
sweeps — re-execute near-identical configurations constantly. This
package keys every outcome by a *canonical config fingerprint* (stable
JSON of config + NIC profiles + seed + fault scenario + code-version
salt) so identical runs are computed once and replayed from disk ever
after, and journals campaign state so an interrupted campaign resumes
deterministically — the resumed report is byte-identical to an
uninterrupted run's.

Layout of a campaign directory::

    <dir>/store/index.json            fingerprint -> {kind, seq}
    <dir>/store/objects/ab/<fp>.json  one entry per fingerprint
    <dir>/journal.jsonl               append-only campaign checkpoints
"""

from .fingerprint import (
    SCHEMA_VERSION,
    canonical_json,
    canonicalize,
    config_fingerprint,
    fingerprint,
)
from .index import CampaignStore, StoreError
from .journal import CampaignJournal
from .serialize import (
    decode_analyzer_result,
    decode_check_result,
    decode_fuzz_report,
    decode_result,
    decode_score,
    encode_analyzer_result,
    encode_check_result,
    encode_fuzz_report,
    encode_result,
    encode_score,
)

__all__ = [
    "SCHEMA_VERSION",
    "canonicalize",
    "canonical_json",
    "fingerprint",
    "config_fingerprint",
    "CampaignStore",
    "StoreError",
    "CampaignJournal",
    "encode_result",
    "decode_result",
    "encode_score",
    "decode_score",
    "encode_check_result",
    "decode_check_result",
    "encode_analyzer_result",
    "decode_analyzer_result",
    "encode_fuzz_report",
    "decode_fuzz_report",
]
