"""Canonical config fingerprints: the store's content addresses.

A fingerprint is the SHA-256 of a *canonical JSON* document — sorted
keys, compact separators, every value reduced to JSON primitives — so
two configs that are equal as dataclasses hash identically no matter
how their dicts were ordered or which process produced them. The
document covers everything that determines a run's outcome:

* the full :class:`~repro.core.config.TestConfig` (``to_dict`` shape),
  which already folds in the seed, retry policy and any measurement
  fault scenario (:meth:`FaultScenario.apply` writes into the config);
* both hosts' RNIC behaviour profiles, so editing a profile's measured
  latencies invalidates cached results for that NIC;
* a code-version salt (package version + store schema version), so a
  release that changes simulator semantics never replays stale results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from ..core.config import TestConfig

__all__ = ["SCHEMA_VERSION", "canonicalize", "canonical_json",
           "fingerprint", "config_fingerprint"]

#: Bump when the canonical document or stored-entry shape changes.
SCHEMA_VERSION = 1


def _code_salt() -> str:
    from .. import __version__

    return f"repro/{__version__}/store-schema-{SCHEMA_VERSION}"


def canonicalize(obj):
    """Reduce ``obj`` to JSON primitives, deterministically.

    Dataclasses become field dicts (non-compared fields — caches —
    are skipped), enums their values, sets sorted lists, bytes hex.
    Dict keys are stringified so integer-keyed maps survive a JSON
    round-trip unambiguously.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: canonicalize(getattr(obj, f.name))
                for f in fields(obj) if f.compare}
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if isinstance(obj, bytes):
        return obj.hex()
    return obj


def canonical_json(obj) -> str:
    """The unique JSON rendering fingerprints are computed over."""
    return json.dumps(canonicalize(obj), sort_keys=True,
                      separators=(",", ":"))


def fingerprint(kind: str, payload) -> str:
    """SHA-256 hex digest of ``(kind, code salt, canonical payload)``."""
    body = canonical_json({"kind": kind, "salt": _code_salt(),
                           "payload": payload})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def config_fingerprint(config: "TestConfig", kind: str = "result",
                       extra: Optional[dict] = None) -> str:
    """Fingerprint of one test configuration (plus optional context).

    ``extra`` folds caller context into the address — e.g. the fuzzer
    adds its score weights (same config, different weights, different
    score) and the suite adds the check name.
    """
    from ..rdma.profiles import PROFILES

    payload = {
        "config": config.to_dict(),
        "profiles": {
            "requester": canonicalize(
                PROFILES[config.requester.nic_type.lower()]),
            "responder": canonicalize(
                PROFILES[config.responder.nic_type.lower()]),
        },
    }
    if extra:
        payload["extra"] = canonicalize(extra)
    return fingerprint(kind, payload)
