"""Exporters: Chrome trace-event JSON, Prometheus text, JSONL.

Three output formats, all written into a run directory by
:func:`export_run`:

* ``trace.json`` — Chrome trace-event format (the JSON object form with
  a ``traceEvents`` array), loadable in Perfetto or ``chrome://tracing``.
  One trace "process" per simulated host/switch/dumper, one "thread"
  per QP or pipeline stage; timestamps are simulation microseconds and
  every span carries its wall-clock cost in ``args.wall_us``.
* ``metrics.prom`` — Prometheus text exposition of every counter, gauge
  and histogram (gauges also expose a ``_high_water`` sample).
* ``events.jsonl`` — one compact JSON object per span/instant, in
  recording order, for programmatic consumption.

:func:`parse_prometheus` is the matching reader used by
``repro telemetry-report`` and the round-trip tests.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Tracer

__all__ = ["to_chrome_trace", "to_prometheus", "jsonl_lines",
           "export_run", "parse_prometheus",
           "TRACE_FILE", "METRICS_FILE", "EVENTS_FILE"]

TRACE_FILE = "trace.json"
METRICS_FILE = "metrics.prom"
EVENTS_FILE = "events.jsonl"


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def to_chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Render a tracer's records as a Chrome trace-event JSON object."""
    events: List[Dict[str, object]] = []
    for pid, name in sorted(tracer.process_names.items()):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": "", "args": {"name": name}})
    for (pid, tid), name in sorted(tracer.thread_names.items()):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": name}})
    for span in tracer.spans:
        args = dict(span.args)
        args["wall_us"] = round(span.wall_ns / 1e3, 3)
        events.append({
            "ph": "X", "name": span.name, "cat": span.category or "sim",
            "pid": span.pid, "tid": span.tid,
            "ts": span.start_ns / 1e3,
            "dur": max(span.duration_ns, 0) / 1e3,
            "args": args,
        })
    for inst in tracer.instants:
        events.append({
            "ph": "i", "s": "t", "name": inst.name,
            "cat": inst.category or "sim",
            "pid": inst.pid, "tid": inst.tid,
            "ts": inst.ts_ns / 1e3,
            "args": dict(inst.args),
        })
    return {"traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {"producer": "repro.telemetry",
                          "time_domain": "simulation_ns/1000"}}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _fmt_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: set = set()
    for metric in registry.all_metrics():
        name = _sanitize(metric.name)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Counter):
            lines.append(f"{name}{_fmt_labels(metric.labels)} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"{name}{_fmt_labels(metric.labels)} {metric.value}")
            lines.append(f"{name}_high_water{_fmt_labels(metric.labels)} "
                         f"{metric.high_water}")
        elif isinstance(metric, Histogram):
            # Bucket counts are cumulative already (observe() increments
            # every bucket whose bound covers the value).
            for bound, count in zip(metric.buckets, metric.counts):
                le = 'le="%s"' % bound
                lines.append(
                    f"{name}_bucket{_fmt_labels(metric.labels, le)} {count}")
            inf = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{_fmt_labels(metric.labels, inf)}"
                f" {metric.count}")
            lines.append(f"{name}_sum{_fmt_labels(metric.labels)} {metric.sum}")
            lines.append(f"{name}_count{_fmt_labels(metric.labels)} "
                         f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s]+)$')
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def parse_prometheus(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text into {name: {labels: value}}."""
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = tuple(sorted(_LABEL_RE.findall(match.group("labels") or "")))
        samples.setdefault(match.group("name"), {})[labels] = \
            float(match.group("value"))
    return samples


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def jsonl_lines(tracer: Tracer) -> Iterator[str]:
    """Every span and instant as one compact JSON object per line."""
    records = []
    for span in tracer.spans:
        records.append((span.span_id, {
            "kind": "span", "id": span.span_id, "name": span.name,
            "pid": span.pid, "tid": span.tid, "cat": span.category,
            "ts_ns": span.start_ns, "dur_ns": span.duration_ns,
            "wall_ns": span.wall_ns, "args": span.args,
        }))
    for inst in tracer.instants:
        records.append((inst.span_id, {
            "kind": "instant", "id": inst.span_id, "name": inst.name,
            "pid": inst.pid, "tid": inst.tid, "cat": inst.category,
            "ts_ns": inst.ts_ns, "args": inst.args,
        }))
    for _, record in sorted(records, key=lambda r: r[0]):
        yield json.dumps(record, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Run-directory writer
# ----------------------------------------------------------------------
def export_run(registry: MetricsRegistry, tracer: Tracer,
               out_dir) -> Dict[str, str]:
    """Write all three artefacts into ``out_dir``; returns their paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / TRACE_FILE
    with trace_path.open("w") as handle:
        json.dump(to_chrome_trace(tracer), handle)
    metrics_path = out / METRICS_FILE
    metrics_path.write_text(to_prometheus(registry))
    events_path = out / EVENTS_FILE
    with events_path.open("w") as handle:
        for line in jsonl_lines(tracer):
            handle.write(line + "\n")
    return {"trace": str(trace_path), "metrics": str(metrics_path),
            "events": str(events_path)}
