"""Metric primitives and the registry that owns them.

Three familiar primitives — :class:`Counter`, :class:`Gauge` and
:class:`Histogram` — keyed by name plus a set of labels, owned by a
:class:`MetricsRegistry`. Components create their handles once (at
construction) and update them on the hot path; creating a handle for an
existing (name, labels) pair returns the same object, so instrumenting
code never needs to coordinate.

When telemetry is disabled the runtime hands out the ``NULL_*``
singletons instead: every mutator is an empty method, so the only cost
a disabled run pays is one no-op call per instrumented operation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NullCounter", "NullGauge", "NullHistogram", "NullRegistry",
    "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM", "NULL_REGISTRY",
    "DURATION_NS_BUCKETS",
]

#: Default histogram buckets for nanosecond durations (1 µs .. 1 s).
DURATION_NS_BUCKETS = (
    1_000, 10_000, 100_000, 1_000_000, 10_000_000,
    100_000_000, 1_000_000_000,
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """An instantaneous value; remembers its high-water mark."""

    __slots__ = ("name", "labels", "value", "high_water")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0
        self.high_water = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount=1) -> None:
        self.set(self.value + amount)

    def dec(self, amount=1) -> None:
        self.value -= amount


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelsKey = (),
                 buckets: Iterable[float] = DURATION_NS_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Owns every metric of a telemetry session."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None,
                  **labels) -> Histogram:
        if buckets is None:
            buckets = DURATION_NS_BUCKETS
        return self._get(Histogram, name, labels, buckets=buckets)

    def all_metrics(self) -> List[object]:
        """Every registered metric, sorted by (name, labels)."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def find(self, name: str, **labels):
        """Look up an existing metric or return None (for tests/reports)."""
        return self._metrics.get((name, _labels_key(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Cross-process transport (repro.exec worker -> parent merge)
    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict]:
        """Every metric as a plain picklable dict, sorted by key.

        The inverse of :meth:`merge`: a pool worker snapshots its
        registry at task end and ships the snapshot to the parent.
        """
        out: List[Dict] = []
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            entry: Dict = {"name": metric.name, "labels": metric.labels,
                           "kind": metric.kind}
            if metric.kind == "counter":
                entry["value"] = metric.value
            elif metric.kind == "gauge":
                entry["value"] = metric.value
                entry["high_water"] = metric.high_water
            else:
                entry["buckets"] = metric.buckets
                entry["counts"] = list(metric.counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            out.append(entry)
        return out

    def merge(self, snapshot: Iterable[Dict]) -> None:
        """Fold a worker snapshot into this registry.

        Counters and histograms accumulate; gauges adopt the snapshot
        value (last writer wins, matching in-process execution order)
        while high-water marks take the maximum.
        """
        for entry in snapshot:
            labels = dict(entry["labels"])
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(entry["name"], **labels)
                gauge.set(entry["value"])
                if entry["high_water"] > gauge.high_water:
                    gauge.high_water = entry["high_water"]
            else:
                hist = self.histogram(entry["name"],
                                      buckets=entry["buckets"], **labels)
                hist.sum += entry["sum"]
                hist.count += entry["count"]
                if hist.buckets == tuple(entry["buckets"]):
                    for i, count in enumerate(entry["counts"]):
                        hist.counts[i] += count


# ----------------------------------------------------------------------
# Disabled-mode no-op twins. Shared singletons: allocation-free and
# state-free, so handing them out costs nothing and leaks nothing.
# ----------------------------------------------------------------------
class NullCounter:
    __slots__ = ()
    kind = "counter"

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()
    kind = "gauge"

    def set(self, value) -> None:
        pass

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    kind = "histogram"

    def observe(self, value) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry twin returned by the runtime when telemetry is off."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, buckets=None, **labels) -> NullHistogram:
        return NULL_HISTOGRAM

    def all_metrics(self) -> List[object]:
        return []

    def find(self, name: str, **labels):
        return None

    def snapshot(self) -> List[Dict]:
        return []

    def merge(self, snapshot) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
