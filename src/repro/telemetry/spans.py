"""Sim-time spans and instant events.

The :class:`Tracer` records what the testbed is doing *when*, on the
simulation clock: spans (`switch.ingress`, `fuzz.generation`, …) carry
a simulated start time and duration in nanoseconds, with the wall-clock
time the span actually took recorded alongside for profiling. Instant
events mark point occurrences (a retransmission, an injected drop).

Every record is assigned to a *process* (a simulated host, the switch,
a dumper server, the fuzzer) and a *thread* within it (a QP, a pipeline
stage), which is exactly the Chrome trace-event pid/tid model the
exporter maps onto — so a run opens in Perfetto with one lane per
component.

The tracer reads simulation time through a pluggable ``clock`` callable
(wired to ``Simulator.now`` by the instrumentation layer). Components
that do not live on the simulation clock — the fuzzer between runs —
use the wall-domain helpers, which timestamp relative to the tracer's
creation instead; those land on their own process lane.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["SpanRecord", "InstantRecord", "Tracer", "NullTracer",
           "NULL_TRACER"]


@dataclass
class SpanRecord:
    """One completed span."""

    span_id: int
    name: str
    pid: str
    tid: str
    start_ns: int          # simulation time (or wall-domain offset)
    duration_ns: int       # simulated duration
    wall_ns: int           # wall-clock time the span really took
    category: str = ""
    args: Dict[str, object] = field(default_factory=dict)


@dataclass
class InstantRecord:
    """One point event."""

    span_id: int
    name: str
    pid: str
    tid: str
    ts_ns: int
    category: str = ""
    args: Dict[str, object] = field(default_factory=dict)


class _OpenSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_record", "_wall_start", "_wall_domain")

    def __init__(self, tracer: "Tracer", record: SpanRecord,
                 wall_domain: bool):
        self._tracer = tracer
        self._record = record
        self._wall_domain = wall_domain
        self._wall_start = 0

    def set(self, **args) -> None:
        """Attach extra key/value arguments to the span."""
        self._record.args.update(args)

    def __enter__(self) -> "_OpenSpan":
        self._wall_start = time.perf_counter_ns()
        if self._wall_domain:
            self._record.start_ns = self._tracer._wall_now_ns()
        else:
            self._record.start_ns = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        record = self._record
        record.wall_ns = time.perf_counter_ns() - self._wall_start
        if self._wall_domain:
            record.duration_ns = self._tracer._wall_now_ns() - record.start_ns
        else:
            record.duration_ns = self._tracer._clock() - record.start_ns
        self._tracer._finish(record)


class Tracer:
    """Collects spans and instant events for one telemetry session."""

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._clock: Callable[[], int] = clock or (lambda: 0)
        self._wall_epoch = time.perf_counter_ns()
        self._next_id = 0
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        #: pid -> display name
        self.process_names: Dict[str, str] = {}
        #: (pid, tid) -> display name
        self.thread_names: Dict[Tuple[str, str], str] = {}

    # -- clock wiring --------------------------------------------------
    def set_clock(self, clock: Callable[[], int]) -> None:
        """Point the tracer at a simulation clock (``lambda: sim.now``)."""
        self._clock = clock

    def _wall_now_ns(self) -> int:
        return time.perf_counter_ns() - self._wall_epoch

    def _next(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _finish(self, record: SpanRecord) -> None:
        self.spans.append(record)

    # -- naming --------------------------------------------------------
    def set_process_name(self, pid: str, name: str) -> None:
        self.process_names[pid] = name

    def set_thread_name(self, pid: str, tid: str, name: str) -> None:
        self.thread_names[(pid, tid)] = name

    # -- recording -----------------------------------------------------
    def span(self, name: str, pid: str = "lumina", tid: str = "main",
             category: str = "", **args) -> _OpenSpan:
        """Open a sim-time span; use as a context manager."""
        record = SpanRecord(self._next(), name, pid, tid, 0, 0, 0,
                            category, dict(args))
        return _OpenSpan(self, record, wall_domain=False)

    def wall_span(self, name: str, pid: str = "lumina", tid: str = "main",
                  category: str = "", **args) -> _OpenSpan:
        """A span timestamped on the wall clock (non-sim components)."""
        record = SpanRecord(self._next(), name, pid, tid, 0, 0, 0,
                            category, dict(args))
        return _OpenSpan(self, record, wall_domain=True)

    def complete(self, name: str, start_ns: int, end_ns: int,
                 pid: str = "lumina", tid: str = "main",
                 category: str = "", **args) -> SpanRecord:
        """Record a span whose sim-time bounds are already known."""
        record = SpanRecord(self._next(), name, pid, tid, int(start_ns),
                            int(end_ns) - int(start_ns), 0, category,
                            dict(args))
        self.spans.append(record)
        return record

    def instant(self, name: str, pid: str = "lumina", tid: str = "main",
                category: str = "", ts_ns: Optional[int] = None,
                **args) -> InstantRecord:
        """Record a point event at the current (or given) sim time."""
        if ts_ns is None:
            ts_ns = self._clock()
        record = InstantRecord(self._next(), name, pid, tid, int(ts_ns),
                               category, dict(args))
        self.instants.append(record)
        return record

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


class _NullSpan:
    """Disabled-mode span: a reusable no-op context manager."""

    __slots__ = ()

    def set(self, **args) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer twin handed out when telemetry is disabled."""

    __slots__ = ()
    spans: List[SpanRecord] = []
    instants: List[InstantRecord] = []

    def set_clock(self, clock) -> None:
        pass

    def set_process_name(self, pid: str, name: str) -> None:
        pass

    def set_thread_name(self, pid: str, tid: str, name: str) -> None:
        pass

    def span(self, name, pid="lumina", tid="main", category="", **args):
        return _NULL_SPAN

    def wall_span(self, name, pid="lumina", tid="main", category="", **args):
        return _NULL_SPAN

    def complete(self, name, start_ns, end_ns, pid="lumina", tid="main",
                 category="", **args) -> None:
        return None

    def instant(self, name, pid="lumina", tid="main", category="",
                ts_ns=None, **args) -> None:
        return None

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
