"""Instrumentation glue between the testbed and a telemetry session.

The simulation engine stays free of telemetry imports: it exposes a
single ``probe`` attribute (duck-typed, default ``None``) that its run
loop consults. :class:`SimProbe` is the object this module plugs in —
it times every callback on the wall clock, tracks queue depth, and
aggregates per-callback hot-spot statistics in a plain dict (flushed to
registry metrics in :meth:`flush` so the per-event cost stays at two
``perf_counter_ns`` calls and one dict update).

:func:`attach_testbed` wires a built testbed into the active session:
simulator probe + tracer clock + process/thread naming for the Chrome
trace export (one process per host/switch/dumper, one thread per QP or
pipeline stage).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from .runtime import TelemetrySession

__all__ = ["SimProbe", "attach_simulator", "attach_testbed"]


class SimProbe:
    """Per-callback wall-clock timing + queue-depth tracking for a sim."""

    __slots__ = ("session", "name", "_stats", "_queue_gauge",
                 "_events_counter", "_wall_start")

    def __init__(self, session: TelemetrySession, name: str = "sim"):
        self.session = session
        self.name = name
        #: qualname -> [count, total_wall_ns, max_wall_ns]
        self._stats: Dict[str, List[int]] = {}
        self._queue_gauge = session.gauge("sim_queue_depth", sim=name)
        self._events_counter = session.counter("sim_events_processed",
                                               sim=name)
        self._wall_start = time.perf_counter_ns()

    def record(self, fn, wall_ns: int, now_ns: int, queue_depth: int) -> None:
        """Called by the engine's run loop after every executed callback."""
        key = getattr(fn, "__qualname__", None) or repr(fn)
        stat = self._stats.get(key)
        if stat is None:
            self._stats[key] = [1, wall_ns, wall_ns]
        else:
            stat[0] += 1
            stat[1] += wall_ns
            if wall_ns > stat[2]:
                stat[2] = wall_ns
        self._events_counter.inc()
        self._queue_gauge.set(queue_depth)

    def hotspots(self, limit: int = 10) -> List[Tuple[str, int, int]]:
        """Top callbacks by total wall time: (qualname, count, total_ns)."""
        ranked = sorted(self._stats.items(), key=lambda kv: -kv[1][1])
        return [(name, stat[0], stat[1]) for name, stat in ranked[:limit]]

    def flush(self) -> None:
        """Publish accumulated per-callback stats as registry metrics."""
        wall_elapsed = time.perf_counter_ns() - self._wall_start
        total_events = sum(stat[0] for stat in self._stats.values())
        rate = self.session.gauge("sim_events_per_sec", sim=self.name)
        if wall_elapsed > 0:
            rate.set(int(total_events * 1_000_000_000 / wall_elapsed))
        # Handle construction in this loop is intentional: the label set
        # (one per callback qualname) is only known at flush time, and
        # flush runs once per export, not on the hot path.
        for qualname, (count, total_ns, max_ns) in self._stats.items():
            self.session.counter(  # repro-lint: ignore[TEL001]
                "sim_callback_count",
                fn=qualname, sim=self.name).inc(count)
            self.session.counter(  # repro-lint: ignore[TEL001]
                "sim_callback_wall_ns",
                fn=qualname, sim=self.name).inc(total_ns)
            self.session.gauge(  # repro-lint: ignore[TEL001]
                "sim_callback_max_wall_ns",
                fn=qualname, sim=self.name).set(max_ns)


def attach_simulator(sim, session: TelemetrySession,
                     name: str = "sim") -> SimProbe:
    """Install a probe on a simulator and sync the tracer clock to it."""
    probe = SimProbe(session, name=name)
    sim.probe = probe
    session.tracer.set_clock(lambda: sim.now)
    return probe


def attach_testbed(testbed, session: TelemetrySession) -> Optional[SimProbe]:
    """Wire a built testbed into the session (probe + trace naming)."""
    probe = attach_simulator(testbed.sim, session)
    tracer = session.tracer
    tracer.set_process_name("switch", f"switch {testbed.switch.name}")
    tracer.set_thread_name("switch", "ingress", "ingress pipeline")
    tracer.set_thread_name("switch", "mirror", "mirror block")
    for host in (testbed.requester, testbed.responder):
        tracer.set_process_name(host.name, f"host {host.name} "
                                           f"({host.nic.profile.name})")
        tracer.set_thread_name(host.name, "rx", "rx pipeline")
        tracer.set_thread_name(host.name, "tx", "tx pipeline")
    for server in testbed.dumpers.servers:
        tracer.set_process_name(server.name, f"dumper {server.name}")
    return probe
