"""Session lifecycle: the global on/off switch for telemetry.

One :class:`TelemetrySession` bundles a metrics registry and a tracer.
At most one session is active at a time; components reach it through
two accessors with different cost profiles:

* :func:`current` — never None. Returns the active session or the
  shared :data:`NULL_SESSION`, whose factories hand out no-op metric
  and tracer twins. Use it where holding a handle is enough (a counter
  created at construction and bumped on the hot path costs one empty
  method call when disabled).
* :func:`active` — the active session or ``None``. Use it to guard
  work that is not free even in no-op form: taking wall-clock readings,
  building span argument dicts, attaching the simulator probe.

Determinism guarantee: nothing in this package feeds information back
into the simulation. Telemetry observes sim state and wall time but
never schedules events, draws randomness from the seeded PRNG, or
mutates component state — so a run with telemetry enabled produces
byte-identical traces and verdicts to a disabled run (enforced by
``tests/test_telemetry_determinism.py``).
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry, NULL_REGISTRY
from .spans import NULL_TRACER, Tracer

__all__ = ["TelemetrySession", "NULL_SESSION", "enable", "disable",
           "current", "active", "session"]


class TelemetrySession:
    """A live telemetry collection: registry + tracer + export target."""

    enabled = True

    def __init__(self, out_dir: Optional[str] = None):
        self.out_dir = out_dir
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    # Convenience pass-throughs so instrumentation sites read naturally.
    def counter(self, name: str, **labels):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels):
        return self.registry.histogram(name, buckets=buckets, **labels)

    def span(self, name: str, pid: str = "lumina", tid: str = "main",
             category: str = "", **args):
        return self.tracer.span(name, pid, tid, category, **args)

    def wall_span(self, name: str, pid: str = "lumina", tid: str = "main",
                  category: str = "", **args):
        return self.tracer.wall_span(name, pid, tid, category, **args)

    def instant(self, name: str, pid: str = "lumina", tid: str = "main",
                category: str = "", ts_ns=None, **args):
        return self.tracer.instant(name, pid, tid, category, ts_ns, **args)

    def export(self, out_dir: Optional[str] = None):
        """Write trace.json / metrics.prom / events.jsonl; returns paths."""
        from .export import export_run

        target = out_dir or self.out_dir
        if target is None:
            raise ValueError("no output directory for telemetry export")
        return export_run(self.registry, self.tracer, target)


class _NullSession:
    """Shared disabled-mode session; all factories return no-op twins."""

    enabled = False
    out_dir = None
    registry = NULL_REGISTRY
    tracer = NULL_TRACER

    def counter(self, name: str, **labels):
        return NULL_REGISTRY.counter(name)

    def gauge(self, name: str, **labels):
        return NULL_REGISTRY.gauge(name)

    def histogram(self, name: str, buckets=None, **labels):
        return NULL_REGISTRY.histogram(name)

    def span(self, name: str, pid: str = "lumina", tid: str = "main",
             category: str = "", **args):
        return NULL_TRACER.span(name)

    def wall_span(self, name: str, pid: str = "lumina", tid: str = "main",
                  category: str = "", **args):
        return NULL_TRACER.wall_span(name)

    def instant(self, name: str, pid: str = "lumina", tid: str = "main",
                category: str = "", ts_ns=None, **args):
        return None

    def export(self, out_dir: Optional[str] = None):
        raise RuntimeError("telemetry is disabled; nothing to export")


NULL_SESSION = _NullSession()

_current: object = NULL_SESSION


def enable(out_dir: Optional[str] = None) -> TelemetrySession:
    """Activate a fresh telemetry session (replacing any existing one)."""
    global _current
    new_session = TelemetrySession(out_dir=out_dir)
    # repro-lint: ignore[RACE001] — session lifecycle singleton: workers
    # enable/disable their own session and results travel via snapshots.
    _current = new_session  # repro-lint: ignore[RACE001]
    return new_session


def disable() -> None:
    """Deactivate telemetry; components fall back to no-op twins."""
    global _current
    _current = NULL_SESSION  # repro-lint: ignore[RACE001] — lifecycle


def current():
    """The active session, or the no-op :data:`NULL_SESSION`. Never None."""
    return _current


def active() -> Optional[TelemetrySession]:
    """The active session, or ``None`` when telemetry is disabled."""
    return _current if _current.enabled else None


class session:
    """Context manager: ``with telemetry.session(dir) as tel: ...``."""

    def __init__(self, out_dir: Optional[str] = None,
                 export_on_exit: bool = False):
        self._out_dir = out_dir
        self._export = export_on_exit
        self.session: Optional[TelemetrySession] = None

    def __enter__(self) -> TelemetrySession:
        self.session = enable(self._out_dir)
        return self.session

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if self._export and exc_type is None and self.session is not None \
                    and self._out_dir is not None:
                self.session.export()
        finally:
            disable()
