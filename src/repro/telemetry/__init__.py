"""Runtime telemetry for the whole testbed (metrics, spans, exporters).

Lumina's value is visibility into micro-behaviors; this package gives
the *reproduction* the same property at runtime. Every layer — the
simulation engine, the switch pipeline, the RNIC models, the dumper
pool, the orchestrator and the fuzzer — emits into one session:

* **Metrics** (:mod:`.metrics`): counters, gauges and histograms keyed
  by name + labels, exported in Prometheus text format.
* **Sim-time spans** (:mod:`.spans`): phases and point events stamped
  in simulation nanoseconds with wall-clock cost alongside, exported as
  Chrome trace-event JSON (open ``trace.json`` in Perfetto).
* **JSONL event log** (:mod:`.export`): the same records, one JSON
  object per line, for scripts.

Telemetry is **off by default** and free when off: disabled components
hold shared no-op metric handles and the engine skips its probe branch,
so deterministic results are byte-identical either way (see
:mod:`.runtime` for the guarantee and the tests that enforce it).

Enable with ``--telemetry DIR`` on any CLI command, programmatically via
:func:`enable`/:func:`disable`, or scoped with ``with
telemetry.session("out/"):``. Summarize a run directory with
``python -m repro telemetry-report out/``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from .spans import Tracer, SpanRecord, InstantRecord
from .runtime import (
    NULL_SESSION,
    TelemetrySession,
    active,
    current,
    disable,
    enable,
    session,
)
from .export import (
    export_run,
    jsonl_lines,
    parse_prometheus,
    to_chrome_trace,
    to_prometheus,
)
from .instrument import SimProbe, attach_simulator, attach_testbed
from .report import render_summary, summarize_run

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
    "Tracer", "SpanRecord", "InstantRecord",
    "TelemetrySession", "NULL_SESSION",
    "enable", "disable", "current", "active", "session",
    "export_run", "jsonl_lines", "parse_prometheus",
    "to_chrome_trace", "to_prometheus",
    "SimProbe", "attach_simulator", "attach_testbed",
    "render_summary", "summarize_run",
]
