"""Human-readable summary of a telemetry run directory.

``python -m repro telemetry-report <dir>`` renders what a run recorded:
per-component span/event counts, the headline reliability metrics
(retransmissions, timeouts, CNPs, drops), and the top wall-clock hot
spots from the simulator's per-callback profile — the quick "where did
the time go" view before opening trace.json in Perfetto.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from pathlib import Path
from typing import Dict, List

from .export import EVENTS_FILE, METRICS_FILE, TRACE_FILE, parse_prometheus

__all__ = ["summarize_run", "render_summary"]

#: Headline metrics surfaced in their own section, with display names.
_HEADLINE_METRICS = (
    ("nic_retransmitted_packets", "retransmitted packets"),
    ("nic_timeout_fired", "retransmission timeouts fired"),
    ("nic_timer_armed", "retransmission timers armed"),
    ("nic_timer_cancelled", "retransmission timers cancelled"),
    ("nic_cnp_sent", "CNPs sent"),
    ("nic_cnp_handled", "CNPs handled"),
    ("nic_dcqcn_rate_updates", "DCQCN rate updates"),
    ("switch_events_injected", "switch events injected"),
    ("switch_mirrored_packets", "packets mirrored"),
    ("dumper_records", "dumper records captured"),
    ("dumper_discards", "dumper discards"),
    ("fault_mirror_dropped", "mirror clones dropped (fault inj.)"),
    ("store_hits", "campaign store hits"),
    ("store_misses", "campaign store misses"),
    ("fault_mirror_delayed", "mirror clones delayed (fault inj.)"),
    ("run_integrity_failures", "integrity failures"),
    ("run_retries", "integrity-driven retries"),
    ("icrc_cache_hits", "iCRC cache hits"),
    ("icrc_cache_misses", "iCRC cache misses"),
    ("pack_cache_hits", "header pack cache hits"),
    ("coverage_domains_hit", "coverage: domains hit"),
    ("coverage_points_hit", "coverage: points hit"),
    ("coverage_points_known", "coverage: points known"),
)


def _component_of(record: Dict) -> str:
    name = record.get("name", "")
    return name.split(".", 1)[0] if "." in name else record.get("pid", "?")


def summarize_run(run_dir) -> Dict[str, object]:
    """Parse a run directory into a summary dict (render-ready)."""
    run = Path(run_dir)
    summary: Dict[str, object] = {"dir": str(run)}

    metrics_path = run / METRICS_FILE
    samples: Dict = {}
    if metrics_path.exists():
        samples = parse_prometheus(metrics_path.read_text())
    summary["metrics"] = samples

    components: TallyCounter = TallyCounter()
    span_count = instant_count = 0
    events_path = run / EVENTS_FILE
    if events_path.exists():
        with events_path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                components[_component_of(record)] += 1
                if record.get("kind") == "span":
                    span_count += 1
                else:
                    instant_count += 1
    summary["components"] = dict(components)
    summary["spans"] = span_count
    summary["instants"] = instant_count

    trace_path = run / TRACE_FILE
    summary["trace_events"] = None
    if trace_path.exists():
        with trace_path.open() as handle:
            trace = json.load(handle)
        summary["trace_events"] = len(trace.get("traceEvents", ()))

    # Hot spots from the sim probe's per-callback profile.
    hotspots: List[Dict] = []
    wall = samples.get("sim_callback_wall_ns", {})
    counts = samples.get("sim_callback_count", {})
    for labels, total_ns in wall.items():
        fn = dict(labels).get("fn", "?")
        hotspots.append({"fn": fn, "wall_ns": total_ns,
                         "count": counts.get(labels, 0)})
    hotspots.sort(key=lambda h: -h["wall_ns"])
    summary["hotspots"] = hotspots[:10]
    return summary


def _sum_samples(samples: Dict, name: str) -> float:
    return sum(samples.get(name, {}).values())


def render_summary(run_dir) -> str:
    """Render :func:`summarize_run` as the CLI's plain-text report."""
    summary = summarize_run(run_dir)
    samples = summary["metrics"]
    lines: List[str] = [
        f"Telemetry report — {summary['dir']}",
        "=" * 40,
        f"spans: {summary['spans']}  instants: {summary['instants']}"
        + (f"  trace events: {summary['trace_events']}"
           if summary["trace_events"] is not None else ""),
    ]

    if summary["components"]:
        lines += ["", "Events by component", "-" * 19]
        for component, count in sorted(summary["components"].items(),
                                       key=lambda kv: -kv[1]):
            lines.append(f"  {component:<12s} {count}")

    headline = [(label, _sum_samples(samples, name))
                for name, label in _HEADLINE_METRICS
                if name in samples]
    if headline:
        lines += ["", "Reliability & congestion", "-" * 24]
        for label, value in headline:
            lines.append(f"  {label:<34s} {value:.0f}")

    events_per_sec = _sum_samples(samples, "sim_events_per_sec")
    processed = _sum_samples(samples, "sim_events_processed")
    if processed:
        lines += ["", "Engine", "-" * 6,
                  f"  events processed                   {processed:.0f}",
                  f"  events/sec (wall)                  {events_per_sec:.0f}"]

    if summary["hotspots"]:
        lines += ["", "Top wall-clock hot spots", "-" * 24]
        total_wall = sum(h["wall_ns"] for h in summary["hotspots"]) or 1
        for spot in summary["hotspots"]:
            share = 100.0 * spot["wall_ns"] / total_wall
            lines.append(f"  {spot['wall_ns'] / 1e6:8.2f} ms {share:5.1f}%  "
                         f"{spot['fn']}  (x{spot['count']:.0f})")

    if len(lines) <= 3:
        lines.append("(run directory holds no telemetry artefacts)")
    return "\n".join(lines) + "\n"
