"""Traffic dumper pool: trimmed high-rate packet capture (§3.4)."""

from .pool import DumperPool
from .records import (
    TRIM_BYTES,
    DumpRecord,
    ParsedRecord,
    make_record,
    parse_record,
)
from .server import DumperServer

__all__ = [
    "DumperPool",
    "TRIM_BYTES",
    "DumpRecord",
    "ParsedRecord",
    "make_record",
    "parse_record",
    "DumperServer",
]
