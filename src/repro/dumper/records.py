"""Dump records: trimmed packets as the dumpers store them on disk.

The packet dumper copies only the first 128 bytes of each mirrored
packet (§5) — enough for every protocol header Lumina needs — together
with a host receive timestamp. Records are raw bytes, exactly what a
DPDK dumper would write; :func:`parse_record` re-parses them into the
structured form the analyzers consume, decoding the switch-embedded
metadata (event type from TTL, mirror sequence from the source MAC,
switch timestamp from the destination MAC).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..net.addressing import ROCEV2_UDP_PORT
from ..net.checksum import icrc_many
from ..net.headers import (
    AckExtendedHeader,
    AETH_LEN,
    BaseTransportHeader,
    BTH_LEN,
    EthernetHeader,
    ETH_HEADER_LEN,
    ICRC_LEN,
    Ipv4Header,
    IPV4_HEADER_LEN,
    Opcode,
    RdmaExtendedHeader,
    RETH_LEN,
    UDP_HEADER_LEN,
    UdpHeader,
)
from ..net.packet import EventType, Packet

__all__ = ["TRIM_BYTES", "DumpRecord", "ParsedRecord", "make_record",
           "parse_record", "expected_icrcs"]

#: Bytes of each packet the dumper retains (§5).
TRIM_BYTES = 128

#: Opcodes whose packets carry a RETH.
_RETH_OPCODES = frozenset({
    Opcode.RDMA_WRITE_FIRST,
    Opcode.RDMA_WRITE_ONLY,
    Opcode.RDMA_READ_REQUEST,
})

#: Opcodes whose packets carry an AETH.
_AETH_OPCODES = frozenset({
    Opcode.ACKNOWLEDGE,
    Opcode.RDMA_READ_RESPONSE_FIRST,
    Opcode.RDMA_READ_RESPONSE_LAST,
    Opcode.RDMA_READ_RESPONSE_ONLY,
})


_RESTORED_PORT_BYTES = ROCEV2_UDP_PORT.to_bytes(2, "big")


class DumpRecord:
    """One trimmed packet as buffered in dumper memory / written to disk.

    Slotted by hand (not a dataclass): one instance per mirrored packet
    plus one per ``restored()`` copy at TERM, so construction cost is on
    the capture hot path. Value semantics match the dataclass this
    replaced (field-order ``__init__``, ``__eq__``, unhashable).
    """

    __slots__ = ("raw", "rx_time_ns", "server", "core")
    __hash__ = None

    def __init__(self, raw: bytes, rx_time_ns: int, server: str, core: int):
        self.raw = raw
        self.rx_time_ns = rx_time_ns
        self.server = server
        self.core = core

    def __eq__(self, other: object) -> object:
        if other.__class__ is not DumpRecord:
            return NotImplemented
        return (self.raw == other.raw
                and self.rx_time_ns == other.rx_time_ns
                and self.server == other.server
                and self.core == other.core)

    def __repr__(self) -> str:
        return (f"DumpRecord(raw={self.raw!r}, "
                f"rx_time_ns={self.rx_time_ns!r}, "
                f"server={self.server!r}, core={self.core!r})")

    def restored(self) -> "DumpRecord":
        """Record with the UDP destination port restored to 4791 (§3.4).

        The dumper performs this rewrite for all mirrored packets when
        it receives the orchestrator's TERM message, undoing the RSS
        port randomisation before the file hits the disk.
        """
        raw = self.raw
        if len(raw) < ETH_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN:
            return self
        offset = ETH_HEADER_LEN + IPV4_HEADER_LEN
        raw = raw[: offset + 2] + _RESTORED_PORT_BYTES + raw[offset + 4:]
        return DumpRecord(raw, self.rx_time_ns, self.server, self.core)


class ParsedRecord:
    """A dump record decoded back into headers + mirror metadata.

    Slotted by hand for the same reason as :class:`DumpRecord`: trace
    reconstruction re-parses every captured record, and the dataclass
    keyword ``__init__`` was measurable there.
    """

    __slots__ = ("eth", "ip", "udp", "bth", "reth", "aeth",
                 "payload_len", "rx_time_ns", "server", "core")
    __hash__ = None

    def __init__(self,
                 eth: EthernetHeader,
                 ip: Ipv4Header,
                 udp: UdpHeader,
                 bth: BaseTransportHeader,
                 reth: Optional[RdmaExtendedHeader],
                 aeth: Optional[AckExtendedHeader],
                 payload_len: int,
                 rx_time_ns: int,
                 server: str,
                 core: int):
        self.eth = eth
        self.ip = ip
        self.udp = udp
        self.bth = bth
        self.reth = reth
        self.aeth = aeth
        self.payload_len = payload_len
        self.rx_time_ns = rx_time_ns
        self.server = server
        self.core = core

    def __eq__(self, other: object) -> object:
        if other.__class__ is not ParsedRecord:
            return NotImplemented
        return (self.eth == other.eth
                and self.ip == other.ip
                and self.udp == other.udp
                and self.bth == other.bth
                and self.reth == other.reth
                and self.aeth == other.aeth
                and self.payload_len == other.payload_len
                and self.rx_time_ns == other.rx_time_ns
                and self.server == other.server
                and self.core == other.core)

    def __repr__(self) -> str:
        return (f"ParsedRecord(eth={self.eth!r}, ip={self.ip!r}, "
                f"udp={self.udp!r}, bth={self.bth!r}, reth={self.reth!r}, "
                f"aeth={self.aeth!r}, payload_len={self.payload_len!r}, "
                f"rx_time_ns={self.rx_time_ns!r}, server={self.server!r}, "
                f"core={self.core!r})")

    # -- switch-embedded metadata (§3.4) --------------------------------
    @property
    def mirror_seq(self) -> int:
        return self.eth.src_mac

    @property
    def switch_timestamp_ns(self) -> int:
        return self.eth.dst_mac

    @property
    def event_type(self) -> int:
        return self.ip.ttl

    @property
    def event_name(self) -> str:
        return EventType.NAMES.get(self.event_type, f"unknown({self.event_type})")

    @property
    def opcode(self) -> Opcode:
        return self.bth.opcode

    @property
    def psn(self) -> int:
        return self.bth.psn

    @property
    def dest_qp(self) -> int:
        return self.bth.dest_qp

    @property
    def conn_key(self) -> tuple:
        """The directed-connection key the switch tracks ITER by."""
        return (self.ip.src_ip, self.ip.dst_ip, self.bth.dest_qp)

    def transport_bytes(self) -> bytes:
        """The packed IB transport headers the iCRC is computed over."""
        data = self.bth.pack()
        if self.reth is not None:
            data += self.reth.pack()
        if self.aeth is not None:
            data += self.aeth.pack()
        return data


def make_record(packet: Packet, rx_time_ns: int, server: str, core: int) -> DumpRecord:
    """Trim a mirrored packet into a dump record (first 128 wire bytes)."""
    headers = packet.pack_headers()
    wire_len = packet.size
    if wire_len > TRIM_BYTES:
        wire_len = TRIM_BYTES
    if len(headers) >= wire_len:
        raw = headers[:wire_len]
    else:
        raw = headers + bytes(wire_len - len(headers))  # zeroed payload bytes
    return DumpRecord(raw, rx_time_ns, server, core)


def parse_record(record: DumpRecord) -> ParsedRecord:
    """Decode a trimmed record back into structured headers.

    Raises ValueError on records that are not RoCEv2 (the dumpers only
    ever receive mirrored RoCE traffic, so this indicates corruption).
    """
    raw = record.raw
    # Offset-based unpack_from all the way down: no per-header slices.
    eth = EthernetHeader.unpack(raw)
    offset = ETH_HEADER_LEN
    ip = Ipv4Header.unpack(raw, offset)
    offset += IPV4_HEADER_LEN
    udp = UdpHeader.unpack(raw, offset)
    offset += UDP_HEADER_LEN
    bth = BaseTransportHeader.unpack(raw, offset)
    offset += BTH_LEN
    reth = None
    aeth = None
    opcode = bth.opcode
    if opcode in _RETH_OPCODES:
        reth = RdmaExtendedHeader.unpack(raw, offset)
    elif opcode in _AETH_OPCODES:
        aeth = AckExtendedHeader.unpack(raw, offset)
    ext_len = (RETH_LEN if reth is not None else 0) + (AETH_LEN if aeth is not None else 0)
    payload_len = ip.total_length - IPV4_HEADER_LEN - UDP_HEADER_LEN - BTH_LEN \
        - ext_len - ICRC_LEN
    if payload_len < 0:
        payload_len = 0
    return ParsedRecord(eth, ip, udp, bth, reth, aeth, payload_len,
                        record.rx_time_ns, record.server, record.core)


def expected_icrcs(parsed: Iterable[ParsedRecord]) -> List[int]:
    """Clean iCRC each record's packet should have carried on the wire.

    Batched over :func:`repro.net.checksum.icrc_many`: mirror trains
    repeat a handful of transport-header shapes, so computing the whole
    trace at once lets the duplicates collapse instead of paying one
    cache probe per record. Corruption analysis compares these against
    the receiving RNIC's ``rx_icrc_errors`` accounting.
    """
    return icrc_many((p.transport_bytes(), p.payload_len) for p in parsed)
