"""Dump records: trimmed packets as the dumpers store them on disk.

The packet dumper copies only the first 128 bytes of each mirrored
packet (§5) — enough for every protocol header Lumina needs — together
with a host receive timestamp. Records are raw bytes, exactly what a
DPDK dumper would write; :func:`parse_record` re-parses them into the
structured form the analyzers consume, decoding the switch-embedded
metadata (event type from TTL, mirror sequence from the source MAC,
switch timestamp from the destination MAC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.addressing import ROCEV2_UDP_PORT
from ..net.headers import (
    AckExtendedHeader,
    AETH_LEN,
    BaseTransportHeader,
    BTH_LEN,
    EthernetHeader,
    ETH_HEADER_LEN,
    ICRC_LEN,
    Ipv4Header,
    IPV4_HEADER_LEN,
    Opcode,
    RdmaExtendedHeader,
    RETH_LEN,
    UDP_HEADER_LEN,
    UdpHeader,
)
from ..net.packet import EventType, Packet

__all__ = ["TRIM_BYTES", "DumpRecord", "ParsedRecord", "make_record", "parse_record"]

#: Bytes of each packet the dumper retains (§5).
TRIM_BYTES = 128

#: Opcodes whose packets carry a RETH.
_RETH_OPCODES = frozenset({
    Opcode.RDMA_WRITE_FIRST,
    Opcode.RDMA_WRITE_ONLY,
    Opcode.RDMA_READ_REQUEST,
})

#: Opcodes whose packets carry an AETH.
_AETH_OPCODES = frozenset({
    Opcode.ACKNOWLEDGE,
    Opcode.RDMA_READ_RESPONSE_FIRST,
    Opcode.RDMA_READ_RESPONSE_LAST,
    Opcode.RDMA_READ_RESPONSE_ONLY,
})


@dataclass
class DumpRecord:
    """One trimmed packet as buffered in dumper memory / written to disk."""

    raw: bytes
    rx_time_ns: int
    server: str
    core: int

    def restored(self) -> "DumpRecord":
        """Record with the UDP destination port restored to 4791 (§3.4).

        The dumper performs this rewrite for all mirrored packets when
        it receives the orchestrator's TERM message, undoing the RSS
        port randomisation before the file hits the disk.
        """
        if len(self.raw) < ETH_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN:
            return self
        offset = ETH_HEADER_LEN + IPV4_HEADER_LEN
        port_bytes = ROCEV2_UDP_PORT.to_bytes(2, "big")
        raw = self.raw[: offset + 2] + port_bytes + self.raw[offset + 4:]
        return DumpRecord(raw=raw, rx_time_ns=self.rx_time_ns,
                          server=self.server, core=self.core)


@dataclass
class ParsedRecord:
    """A dump record decoded back into headers + mirror metadata."""

    eth: EthernetHeader
    ip: Ipv4Header
    udp: UdpHeader
    bth: BaseTransportHeader
    reth: Optional[RdmaExtendedHeader]
    aeth: Optional[AckExtendedHeader]
    payload_len: int
    rx_time_ns: int
    server: str
    core: int

    # -- switch-embedded metadata (§3.4) --------------------------------
    @property
    def mirror_seq(self) -> int:
        return self.eth.src_mac

    @property
    def switch_timestamp_ns(self) -> int:
        return self.eth.dst_mac

    @property
    def event_type(self) -> int:
        return self.ip.ttl

    @property
    def event_name(self) -> str:
        return EventType.NAMES.get(self.event_type, f"unknown({self.event_type})")

    @property
    def opcode(self) -> Opcode:
        return self.bth.opcode

    @property
    def psn(self) -> int:
        return self.bth.psn

    @property
    def dest_qp(self) -> int:
        return self.bth.dest_qp

    @property
    def conn_key(self) -> tuple:
        """The directed-connection key the switch tracks ITER by."""
        return (self.ip.src_ip, self.ip.dst_ip, self.bth.dest_qp)


def make_record(packet: Packet, rx_time_ns: int, server: str, core: int) -> DumpRecord:
    """Trim a mirrored packet into a dump record (first 128 wire bytes)."""
    headers = packet.pack_headers()
    wire_len = min(TRIM_BYTES, packet.size)
    if len(headers) >= wire_len:
        raw = headers[:wire_len]
    else:
        raw = headers + bytes(wire_len - len(headers))  # zeroed payload bytes
    return DumpRecord(raw=raw, rx_time_ns=rx_time_ns, server=server, core=core)


def parse_record(record: DumpRecord) -> ParsedRecord:
    """Decode a trimmed record back into structured headers.

    Raises ValueError on records that are not RoCEv2 (the dumpers only
    ever receive mirrored RoCE traffic, so this indicates corruption).
    """
    raw = record.raw
    offset = 0
    eth = EthernetHeader.unpack(raw[offset:])
    offset += ETH_HEADER_LEN
    ip = Ipv4Header.unpack(raw[offset:])
    offset += IPV4_HEADER_LEN
    udp = UdpHeader.unpack(raw[offset:])
    offset += UDP_HEADER_LEN
    bth = BaseTransportHeader.unpack(raw[offset:])
    offset += BTH_LEN
    reth = None
    aeth = None
    if bth.opcode in _RETH_OPCODES:
        reth = RdmaExtendedHeader.unpack(raw[offset:])
        offset += RETH_LEN
    elif bth.opcode in _AETH_OPCODES:
        aeth = AckExtendedHeader.unpack(raw[offset:])
        offset += AETH_LEN
    ext_len = (RETH_LEN if reth is not None else 0) + (AETH_LEN if aeth is not None else 0)
    payload_len = ip.total_length - IPV4_HEADER_LEN - UDP_HEADER_LEN - BTH_LEN \
        - ext_len - ICRC_LEN
    return ParsedRecord(
        eth=eth, ip=ip, udp=udp, bth=bth, reth=reth, aeth=aeth,
        payload_len=max(0, payload_len),
        rx_time_ns=record.rx_time_ns, server=record.server, core=record.core,
    )
