"""The traffic-dumper pool: several servers dumping in concert (§3.4).

A pool aggregates heterogeneous dumper servers. The switch's mirror
block load-balances across the pool with weights proportional to each
server's capacity; after the test the orchestrator TERMs every server
and gathers all disk files for trace reconstruction.
"""

from __future__ import annotations

from typing import List

from ..net.link import connect
from ..sim.engine import Simulator
from ..switch.pipeline import TofinoSwitch
from ..telemetry import runtime as telemetry
from .records import DumpRecord
from .server import DumperServer

__all__ = ["DumperPool"]


class DumperPool:
    """Builds, wires and collects from a group of dumper servers."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.servers: List[DumperServer] = []
        # Per-server disk-record gauges, bound at add_server time (the
        # session is stable across a testbed's lifetime, and handles
        # must not be constructed per loop iteration — TEL001).
        self._disk_gauges: List = []

    def add_server(self, switch: TofinoSwitch, bandwidth_bps: int,
                   num_cores: int = 8, core_service_ns: int = 170,
                   ring_slots: int = 1024, weight: int = 0,
                   propagation_delay_ns: int = 500) -> DumperServer:
        """Create a server and attach it to the switch's mirror block.

        ``weight=0`` derives the WRR weight from the server's aggregate
        core capacity so faster servers absorb proportionally more
        mirrored traffic.
        """
        name = f"dumper{len(self.servers)}"
        server = DumperServer(self.sim, name, bandwidth_bps,
                              num_cores=num_cores,
                              core_service_ns=core_service_ns,
                              ring_slots=ring_slots)
        if weight <= 0:
            weight = max(1, server.capacity_pps // 1_000_000)
        switch_port = switch.add_dumper_port(bandwidth_bps, weight=weight,
                                             name=f"{switch.name}->{name}")
        connect(switch_port, server.port, propagation_delay_ns)
        self.servers.append(server)
        self._disk_gauges.append(
            telemetry.current().gauge("dumper_disk_records", server=name))
        return server

    def terminate_all(self) -> List[DumpRecord]:
        """Send TERM to every server; returns all records, unsorted."""
        records: List[DumpRecord] = []
        counts: List[int] = []
        tel = telemetry.current()
        for server, gauge in zip(self.servers, self._disk_gauges):
            written = server.terminate()
            records.extend(written)
            counts.append(len(written))
            gauge.set(len(written))
        if counts and records:
            # Load-balance skew: max per-server share over the fair share.
            fair = len(records) / len(counts)
            tel.gauge("dumper_lb_skew_permille").set(
                int(max(counts) / fair * 1000) if fair else 0)
        return records

    @property
    def total_discards(self) -> int:
        return sum(server.rx_discards for server in self.servers)

    @property
    def total_term_dropped(self) -> int:
        """Packets lost in core rings at TERM, across the pool."""
        return sum(server.term_dropped for server in self.servers)

    @property
    def total_backlog(self) -> int:
        """Packets currently queued in core rings, across the pool."""
        return sum(core.backlog for server in self.servers
                   for core in server.cores)

    @property
    def total_buffered(self) -> int:
        return sum(server.buffered_records for server in self.servers)

    @property
    def per_core_stats(self) -> dict:
        """Per-server, per-core processed/dropped/term_dropped stats."""
        return {server.name: server.core_stats for server in self.servers}
