"""A traffic-dumper server: DPDK-style RX with RSS across CPU cores.

Each server receives mirrored packets on one NIC port, spreads them
across cores with Receive Side Scaling (a hash over the 5-tuple) and
buffers trimmed records in memory, writing them out when the
orchestrator sends TERM (§3.4).

The performance model is the one that motivated Lumina's per-packet
load balancing: a core processes one packet per fixed service time and
fronts a bounded ring; when a burst lands on one core (RSS is per-flow,
and all mirrored traffic of one QP is one flow) the ring overflows and
packets are discarded — the ``rx_discards_phy`` situation described in
§3.4. Rewriting the UDP port at the switch fans the same traffic across
all cores and makes the pool keep up.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.link import Node, Port
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..telemetry import runtime as telemetry
from .records import DumpRecord, make_record

__all__ = ["DumperServer"]


_FNV_PRIME = 0x01000193
#: Memoized FNV-1a register after folding (src_ip, dst_ip, src_port).
#: The mirror block randomizes only the UDP *destination* port per
#: packet, so the 12-byte prefix repeats for every packet of a flow;
#: caching it turns 16 byte-folds per packet into 4. Bounded: the key
#: space is the testbed's flow set, but clear defensively anyway.
_rss_prefix_cache: dict = {}


def _rss_hash(src_ip: int, dst_ip: int, src_port: int, dst_port: int) -> int:
    """Deterministic FNV-1a over the 5-tuple fields RSS hashes."""
    key = (src_ip, dst_ip, src_port)
    value = _rss_prefix_cache.get(key)
    if value is None:
        if len(_rss_prefix_cache) >= 4096:
            # repro-lint: ignore[RACE001] — idempotent memo cache keyed by
            # pure inputs; a per-worker copy changes speed, never results.
            _rss_prefix_cache.clear()  # repro-lint: ignore[RACE001]
        value = 0x811C9DC5
        for word in (src_ip, dst_ip, src_port):
            for shift in (24, 16, 8, 0):
                value ^= (word >> shift) & 0xFF
                value = (value * _FNV_PRIME) & 0xFFFFFFFF
        _rss_prefix_cache[key] = value  # repro-lint: ignore[RACE001] — memo
    # Unrolled fold of dst_port's four big-endian bytes.
    value ^= (dst_port >> 24) & 0xFF
    value = (value * _FNV_PRIME) & 0xFFFFFFFF
    value ^= (dst_port >> 16) & 0xFF
    value = (value * _FNV_PRIME) & 0xFFFFFFFF
    value ^= (dst_port >> 8) & 0xFF
    value = (value * _FNV_PRIME) & 0xFFFFFFFF
    value ^= dst_port & 0xFF
    return (value * _FNV_PRIME) & 0xFFFFFFFF


class _Core:
    """One CPU core: a bounded ring plus a fixed per-packet service time."""

    def __init__(self, index: int, ring_slots: int, service_ns: int):
        self.index = index
        self.ring_slots = ring_slots
        self.service_ns = service_ns
        self.backlog = 0
        self.free_at = 0
        self.processed = 0
        self.dropped = 0
        #: Packets still in the ring at TERM — lost, but *counted*.
        self.term_dropped = 0


class DumperServer(Node):
    """One host of the traffic dumper pool."""

    def __init__(self, sim: Simulator, name: str, bandwidth_bps: int,
                 num_cores: int = 8, core_service_ns: int = 170,
                 ring_slots: int = 1024):
        super().__init__(sim, name)
        if num_cores <= 0:
            raise ValueError("dumper needs at least one core")
        self.port: Port = self.add_port(bandwidth_bps, name=f"{name}.eth0")
        self.cores = [_Core(i, ring_slots, core_service_ns) for i in range(num_cores)]
        self._records: List[DumpRecord] = []
        self._terminated = False
        self._disk_file: Optional[List[DumpRecord]] = None
        self.rx_discards = 0
        self.term_dropped = 0
        tel = telemetry.current()
        self._m_records = tel.counter("dumper_records", server=name)
        self._m_discards = tel.counter("dumper_discards", server=name)
        self._m_ring = [
            tel.gauge("dumper_ring_occupancy", server=name, core=str(i))
            for i in range(num_cores)
        ]

    # ------------------------------------------------------------------
    @property
    def capacity_pps(self) -> int:
        """Aggregate packets/second the server can sustain when balanced."""
        return len(self.cores) * (1_000_000_000 // self.cores[0].service_ns)

    def handle_packet(self, port: Port, packet: Packet) -> None:
        udp = packet.udp
        ip = packet.ip
        if self._terminated or udp is None or ip is None:
            return
        core = self.cores[
            _rss_hash(ip.src_ip, ip.dst_ip,
                      udp.src_port, udp.dst_port) % len(self.cores)
        ]
        if core.backlog >= core.ring_slots:
            core.dropped += 1
            self.rx_discards += 1
            self._m_discards.inc()
            return
        core.backlog += 1
        self._m_ring[core.index].set(core.backlog)
        sim = self.sim
        start = sim.now
        free_at = core.free_at
        if free_at > start:
            start = free_at
        core.free_at = start = start + core.service_ns
        sim.schedule_at(start, self._process, core, packet)

    def _process(self, core: _Core, packet: Packet) -> None:
        if self._terminated:
            # The ring's contents were already accounted as term_dropped.
            return
        core.backlog -= 1
        core.processed += 1
        self._m_ring[core.index].set(core.backlog)
        # Copy only the first 128 bytes into pre-allocated memory (§5).
        self._records.append(make_record(packet, self.sim.now, self.name, core.index))
        self._m_records.inc()

    # ------------------------------------------------------------------
    def terminate(self) -> List[DumpRecord]:
        """Handle the orchestrator's TERM: restore UDP ports, write disk.

        Returns the written records. Packets still queued in core rings
        at TERM time are lost, as they would be in the real dumper —
        but they are *counted* (``term_dropped``, folded into
        ``rx_discards``) so a broken-capture run cannot under-report
        its own discards exactly when integrity fails.
        """
        self._terminated = True
        for core in self.cores:
            if core.backlog:
                core.term_dropped = core.backlog
                self.term_dropped += core.backlog
                self.rx_discards += core.backlog
                self._m_discards.inc(core.backlog)
                core.backlog = 0
                self._m_ring[core.index].set(0)
        self._disk_file = [record.restored() for record in self._records]
        return self._disk_file

    @property
    def disk_file(self) -> Optional[List[DumpRecord]]:
        """Records written on TERM, or None if still running."""
        return self._disk_file

    @property
    def buffered_records(self) -> int:
        return len(self._records)

    @property
    def core_stats(self) -> List[dict]:
        return [
            {"core": c.index, "processed": c.processed, "dropped": c.dropped,
             "term_dropped": c.term_dropped}
            for c in self.cores
        ]
