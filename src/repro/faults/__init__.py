"""Measurement-plane fault injection (mirror → dumper path).

Lumina's §3.4/§3.5 integrity scheme exists because the capture path can
fail: mirrored clones are dropped on the switch→dumper links or shed
from overfull dumper rings, and the run must then be detected as
unreliable and redone. This package stresses that path deterministically
— seeded loss/delay on mirror clones, undersized-ring pressure — so the
orchestrator's gap annotation, INCONCLUSIVE outcomes and retry policy
can themselves be tested.

Fault *configuration* lives on :class:`repro.core.config.TestConfig`
(``measurement_faults`` / ``retry``); this package holds the runtime
injector and the named scenario presets exposed by the CLI.
"""

from .injector import MeasurementFaultInjector, build_injector
from .scenarios import SCENARIOS, FaultScenario, get_scenario

__all__ = [
    "MeasurementFaultInjector",
    "build_injector",
    "FaultScenario",
    "SCENARIOS",
    "get_scenario",
]
