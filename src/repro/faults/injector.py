"""Runtime fault injector for the mirror → dumper path.

The injector sits between :class:`repro.switch.mirror.MirrorBlock` and
the dumper-facing switch ports. For every mirror clone it decides —
deterministically, from seeded state — whether the clone is dropped,
delayed, or passed through untouched. Mirror sequence numbers are
assigned *before* the injector runs, exactly as on real hardware where
the switch stamps the clone and the network loses it afterwards; a
dropped clone therefore leaves a hole in the mirror-seq space that
``check_integrity`` must flag.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import MeasurementFaultConfig
from ..net.link import Port
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.rng import SimRandom
from ..telemetry import runtime as telemetry

__all__ = ["MeasurementFaultInjector"]


class MeasurementFaultInjector:
    """Deterministic loss/delay on mirrored clones."""

    def __init__(self, sim: Simulator, config: MeasurementFaultConfig,
                 rng: SimRandom):
        self.sim = sim
        self.config = config
        self._rng = rng
        self.mirror_index = 0     # clones seen, pre-decision
        self.dropped = 0
        self.delayed = 0
        #: Delayed clones scheduled but not yet re-sent; the adaptive
        #: drain must not declare quiescence while any are in flight.
        self.pending_delayed = 0
        self._burst_left = 0
        tel = telemetry.current()
        self._m_dropped = tel.counter("fault_mirror_dropped")
        self._m_delayed = tel.counter("fault_mirror_delayed")

    def on_mirror(self, port: Port, clone: Packet) -> bool:
        """Intercept one mirror clone bound for ``port``.

        Returns True when the injector consumed the clone (dropped it or
        took ownership for delayed delivery); False means the caller
        should transmit normally.
        """
        index = self.mirror_index
        self.mirror_index += 1
        if self._burst_left > 0:
            self._burst_left -= 1
            self._drop()
            return True
        cfg = self.config
        lose = False
        if cfg.mirror_loss_period and index % cfg.mirror_loss_period == cfg.mirror_loss_period - 1:
            lose = True
        if not lose and cfg.mirror_loss_rate and self._rng.random() < cfg.mirror_loss_rate:
            lose = True
        if lose:
            self._burst_left = cfg.mirror_loss_burst - 1
            self._drop()
            return True
        if (cfg.mirror_delay_period
                and index % cfg.mirror_delay_period == cfg.mirror_delay_period - 1):
            self.delayed += 1
            self.pending_delayed += 1
            self._m_delayed.inc()
            self.sim.schedule(cfg.mirror_delay_ns, self._send_delayed, port, clone)
            return True
        return False

    def _drop(self) -> None:
        self.dropped += 1
        self._m_dropped.inc()

    def _send_delayed(self, port: Port, clone: Packet) -> None:
        self.pending_delayed -= 1
        port.send(clone)

    @property
    def quiescent(self) -> bool:
        """True when no delayed clones are still held by the injector."""
        return self.pending_delayed == 0

    def counters(self) -> dict:
        return {
            "mirror_fault_dropped": self.dropped,
            "mirror_fault_delayed": self.delayed,
        }


def build_injector(sim: Simulator, config: Optional[MeasurementFaultConfig],
                   rng: SimRandom, attempt: int = 1,
                   ) -> Optional[MeasurementFaultInjector]:
    """Injector for the given attempt, or None when faults are inert."""
    if config is None or not config.active_on(attempt):
        return None
    return MeasurementFaultInjector(sim, config, rng)
