"""Named measurement-fault scenarios for the CLI and CI smoke runs.

Each scenario bundles a :class:`MeasurementFaultConfig` with the retry
policy that makes sense for it, so ``--measurement-faults mirror-loss``
is a one-flag way to run any test under capture stress. Scenarios are
applied with :func:`FaultScenario.apply`, which rewrites an existing
:class:`TestConfig` without touching traffic or topology — the data
path stays byte-identical, only the measurement plane degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.config import MeasurementFaultConfig, RetryPolicy, TestConfig

__all__ = ["FaultScenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class FaultScenario:
    name: str
    description: str
    faults: MeasurementFaultConfig
    retry: RetryPolicy

    def apply(self, config: TestConfig) -> TestConfig:
        """The same test, run under this scenario's capture faults."""
        return replace(config, measurement_faults=self.faults, retry=self.retry)


SCENARIOS = {
    scenario.name: scenario
    for scenario in (
        FaultScenario(
            name="mirror-loss",
            description="drop every 7th mirror clone; retry once on "
                        "integrity failure",
            faults=MeasurementFaultConfig(mirror_loss_period=7),
            retry=RetryPolicy(max_attempts=2),
        ),
        FaultScenario(
            name="mirror-loss-burst",
            description="bursts of 3 consecutive clones lost every 50 "
                        "clones",
            faults=MeasurementFaultConfig(mirror_loss_period=50,
                                          mirror_loss_burst=3),
            retry=RetryPolicy(max_attempts=2),
        ),
        FaultScenario(
            name="mirror-delay",
            description="hold every 5th clone for 3 ms; the adaptive "
                        "drain must still capture it",
            faults=MeasurementFaultConfig(mirror_delay_period=5,
                                          mirror_delay_ns=3_000_000),
            retry=RetryPolicy(max_attempts=1),
        ),
        FaultScenario(
            name="ring-pressure",
            description="shrink dumper rings to 8 slots to force "
                        "rx_discards under load",
            faults=MeasurementFaultConfig(ring_slots=8),
            retry=RetryPolicy(max_attempts=2),
        ),
        FaultScenario(
            name="flaky-capture",
            description="mirror loss on attempt 1 only; attempt 2 runs "
                        "clean, so the retry policy converges",
            faults=MeasurementFaultConfig(mirror_loss_period=5,
                                          heal_after_attempt=1),
            retry=RetryPolicy(max_attempts=3),
        ),
    )
}


def get_scenario(name: str) -> FaultScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown measurement-fault scenario {name!r}; "
            f"known: {sorted(SCENARIOS)}"
        ) from None
