"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <config.json>``   — run one test from a JSON config (the dict
  shape of Listings 1–2) and print the full report.
* ``fuzz <config.json>``  — fuzz around a base config (Algorithm 1);
  ``--target {general,noisy-neighbor,counter-bugs}`` uses a preset.
* ``suite <nic>``         — run the conformance battery (scorecard).
* ``sweep``               — benchmark sweep: one workload across a
  NIC × seed grid, reporting per-run summaries and runs/sec.
* ``incast``              — run an N-to-1 fan-in workload.
* ``nics``                — list the built-in NIC behaviour profiles.
* ``example-config``      — print a ready-to-edit JSON config.
* ``telemetry-report <dir>`` — summarize a ``--telemetry`` output dir.
* ``coverage-report <path>`` — summarize or diff ``--coverage`` output
  (a ``coverage.json``, its directory, or a campaign store).
* ``lint``                — determinism & spawn-safety static analysis
  over the testbed sources (see :mod:`repro.lint`).

The campaign commands (``run``, ``fuzz``, ``suite``, ``sweep``,
``incast``) share one flag vocabulary — ``--seed``, ``--workers``,
``--telemetry``, ``--measurement-faults`` and ``--output`` mean the
same thing, with the same defaults, everywhere they apply:

* ``--workers N`` fans the campaign out over a spawn-safe process pool
  (``repro.exec``), falling back to in-process serial execution if the
  pool dies. Results are byte-identical for any worker count — for
  ``fuzz`` the generation schedule is fixed by ``--batch``, not by
  ``--workers``. Single-run commands (``run``, ``incast``) ignore it.
* ``--telemetry DIR`` executes with telemetry enabled and writes a
  Chrome trace (``trace.json``), Prometheus metrics (``metrics.prom``)
  and span JSONL (``events.jsonl``) into DIR on completion.
* ``--coverage DIR`` records micro-behavior coverage (which protocol
  state-machine edges, switch pipeline branches and DCQCN transitions
  the campaign exercised) into ``DIR/coverage.json``, plus a
  flight-recorder dump per failing/inconclusive/retried unit of work.
  The map is deterministic: byte-identical for any ``--workers`` value.
  For ``fuzz`` a live coverage session also switches selection to
  **coverage-guided fitness** (novelty bonus, first-hit admission,
  corpus minimization, finding dedup); ``--no-coverage-fitness``
  forces the blind GA, and ``--coverage-fitness`` without a coverage
  directory runs guided with an in-memory session.
* ``--measurement-faults SCENARIO`` stresses the measurement plane
  (mirror links, dumper rings) with a named deterministic fault
  scenario (see :mod:`repro.faults.scenarios`); the §3.5 integrity
  check / retry machinery has to cope, and suite checks whose evidence
  window overlaps a capture gap report INCONCLUSIVE instead of a false
  verdict. (``incast`` builds its own testbed and rejects the flag.)
* ``--output FILE`` writes the command's report to FILE instead of
  only stdout. Campaign reports written this way are deterministic —
  no wall-clock content — so resumed and uninterrupted campaigns
  produce byte-identical files.

``run``, ``fuzz``, ``suite`` and ``sweep`` additionally accept
``--campaign DIR``: results are content-addressed in ``DIR/store`` and
replayed instead of re-simulated on a later invocation (``fuzz`` also
journals per-generation state in ``DIR/journal.jsonl``, so a killed
campaign resumes exactly where it stopped — see ``repro.store``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .core.config import TestConfig
from .core.fuzz import LuminaFuzzer
from .core.orchestrator import run_test
from .core.report import render_report
from .rdma.profiles import PROFILES

#: Historical per-command seed defaults, applied when --seed is omitted.
_INCAST_DEFAULT_SEED = 55

_EXAMPLE_CONFIG = {
    "requester": {
        "nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]},
        "roce-parameters": {"dcqcn-np-enable": True,
                            "min-time-between-cnps": 4,
                            "adaptive-retrans": False},
    },
    "responder": {"nic": {"type": "cx5", "ip-list": ["10.0.0.2/24"]}},
    "traffic": {
        "num-connections": 2,
        "rdma-verb": "write",
        "num-msgs-per-qp": 10,
        "mtu": 1024,
        "message-size": 10240,
        "barrier-sync": True,
        "min-retransmit-timeout": 14,
        "max-retransmit-retry": 7,
        "data-pkt-events": [
            {"qpn": 1, "psn": 4, "type": "ecn", "iter": 1},
            {"qpn": 2, "psn": 5, "type": "drop", "iter": 1},
            {"qpn": 2, "psn": 5, "type": "drop", "iter": 2},
        ],
    },
    "seed": 1,
}


def _fault_scenario_names() -> List[str]:
    from .faults import SCENARIOS

    return sorted(SCENARIOS)


def _load_config(path: str, seed: Optional[int] = None) -> TestConfig:
    with open(path) as handle:
        data = json.load(handle)
    if seed is not None:
        data["seed"] = seed
    return TestConfig.from_dict(data)


def _campaign_store(args: argparse.Namespace):
    """The --campaign store for this invocation, or None."""
    campaign = getattr(args, "campaign", None)
    if not campaign:
        return None
    from .store import CampaignStore

    return CampaignStore(os.path.join(campaign, "store"))


def _emit_report(report: str, output: Optional[str]) -> None:
    """Print a report and, with --output, persist it byte-for-byte."""
    print(report, end="" if report.endswith("\n") else "\n")
    if output:
        with open(output, "w") as handle:
            handle.write(report)
        print(f"report written to {output}")


def _write_flight_dumps(args: argparse.Namespace,
                        records: List[Tuple[str, str, List[list]]]) -> None:
    """Persist anomaly flight-recorder dumps next to the coverage map.

    ``records`` is ``[(name, trigger, timeline-entries), ...]`` — one
    dump per failing/inconclusive/retried unit of work. No-op without
    ``--coverage``.
    """
    coverage_dir = getattr(args, "coverage", None)
    if not coverage_dir or not records:
        return
    from .coverage.report import flight_dump_name, render_flight_record

    os.makedirs(coverage_dir, exist_ok=True)
    for name, trigger, entries in records:
        path = os.path.join(coverage_dir, flight_dump_name(name))
        with open(path, "w") as handle:
            handle.write(render_flight_record(entries, name, trigger))
        print(f"flight record written to {path}")


def cmd_run(args: argparse.Namespace) -> int:
    config = _load_config(args.config, args.seed)
    if args.measurement_faults:
        from .faults import get_scenario

        config = get_scenario(args.measurement_faults).apply(config)
    store = _campaign_store(args)
    result = run_test(config, store=store)
    _emit_report(render_report(result), args.output)
    if result.flight_record:
        trigger = ("integrity-retry" if result.integrity.ok
                   else "integrity-fail")
        _write_flight_dumps(args, [(f"run-seed{config.seed}", trigger,
                                    result.flight_record)])
    if store is not None:
        print(store.stats())
    return 0 if result.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    scenario = None
    if args.measurement_faults:
        from .faults import get_scenario

        scenario = get_scenario(args.measurement_faults)
    if args.target:
        from .core.fuzz import make_fuzzer

        fuzzer, target = make_fuzzer(args.target, args.nic,
                                     seed=args.seed or 1)
        if scenario is not None:
            # Fault scenarios touch only the measurement-plane fields,
            # never the traffic shape the preset pool was seeded from.
            fuzzer.base_config = scenario.apply(fuzzer.base_config)
        print(f"target: {target.name} — {target.description} (nic={args.nic})")
    else:
        if not args.config:
            print("error: provide a config file or --target", file=sys.stderr)
            return 2
        config = _load_config(args.config, args.seed)
        if scenario is not None:
            config = scenario.apply(config)
        fuzzer = LuminaFuzzer(config, seed=args.seed or config.seed,
                              anomaly_threshold=args.threshold)
    store = _campaign_store(args)
    report = fuzzer.run(iterations=args.iterations,
                        stop_on_first=args.stop_on_first,
                        workers=args.workers, batch_size=args.batch,
                        store=store, campaign_dir=args.campaign,
                        coverage_fitness=args.coverage_fitness)
    lines = [f"iterations: {report.iterations_run}  "
             f"findings: {len(report.findings)}  "
             f"invalid: {report.invalid_runs}"]
    lines.extend("  " + finding.summary() for finding in report.findings)
    if report.coverage_growth:
        lines.append("coverage growth:")
        lines.extend(
            f"  gen {row['generation']:>3d}: +{row['new-points']} point(s), "
            f"{row['total-points']} total"
            for row in report.coverage_growth)
    if report.rediscoveries:
        lines.append(f"dedup: {report.rediscoveries} anomalous re-run(s) "
                     f"collapsed into {len(report.findings)} finding(s)")
        lines.append(f"  {'iter':>4s} {'count':>5s} {'score':>7s}  anomaly")
        lines.extend(
            f"  {f.iteration:>4d} {f.count:>5d} {f.score.total:>7.1f}  "
            + (f.score.anomalies[0] if f.score.anomalies else "-")
            for f in report.findings)
    if report.pool_evictions:
        lines.append(f"corpus: {report.pool_evictions} dominated pool "
                     "entries evicted")
    _emit_report("\n".join(lines) + "\n", args.output)
    if store is not None:
        print(store.stats())
    return 0 if report.found_anomaly else 2


def cmd_suite(args: argparse.Namespace) -> int:
    from .core.suite import run_conformance_suite

    store = _campaign_store(args)
    card = run_conformance_suite(args.nic, seed=args.seed,
                                 checks=args.checks or None,
                                 workers=args.workers,
                                 faults=args.measurement_faults or None,
                                 store=store)
    _emit_report(card.render(), args.output)
    _write_flight_dumps(args, [
        (check.name, check.outcome.value if check.outcome else "FAIL",
         check.flight_record)
        for check in card.results if check.flight_record
    ])
    if store is not None:
        print(store.stats())
    return 0 if card.all_passed else 1


def _sweep_report(cells: List[Tuple[str, int]],
                  outcomes: List) -> Tuple[str, int]:
    """(deterministic report text, failure count) for a finished grid."""
    lines = [f"{'nic':<6s}{'seed':>6s}{'ok':>5s}{'mct_us':>10s}"
             f"{'retrans':>9s}{'timeouts':>10s}{'sim_ms':>9s}",
             "-" * 55]
    failures = 0
    for (nic, seed), outcome in zip(cells, outcomes):
        if not outcome.ok:
            failures += 1
            lines.append(f"{nic:<6s}{seed:>6d}  ERR  {outcome.error}")
            continue
        s = outcome.value
        if not s["ok"]:
            failures += 1
        lines.append(f"{nic:<6s}{seed:>6d}{'yes' if s['ok'] else 'NO':>5s}"
                     f"{s['avg_mct_us']:>10.1f}{s['retransmitted']:>9d}"
                     f"{s['timeouts']:>10d}{s['duration_ns'] / 1e6:>9.2f}")
    lines.append("-" * 55)
    lines.append(f"{len(cells)} runs, {failures} failure(s)")
    return "\n".join(lines) + "\n", failures


def cmd_sweep(args: argparse.Namespace) -> int:
    import time
    from dataclasses import replace

    scenario = None
    if args.measurement_faults:
        from .faults import get_scenario

        scenario = get_scenario(args.measurement_faults)
    base_seed = args.seed if args.seed is not None else args.base_seed
    nics = [n.strip() for n in args.nics.split(",") if n.strip()]
    configs = []
    cells = []
    for nic in nics:
        for offset in range(args.seeds):
            seed = base_seed + offset
            if args.config:
                base = _load_config(args.config, seed)
                config = replace(
                    base,
                    requester=replace(base.requester, nic_type=nic),
                    responder=replace(base.responder, nic_type=nic),
                )
            else:
                from . import quick_config

                config = quick_config(nic=nic, verb=args.verb,
                                      num_connections=args.connections,
                                      num_msgs=args.messages,
                                      message_size=args.size, seed=seed)
            if scenario is not None:
                config = scenario.apply(config)
            configs.append(config)
            cells.append((nic, seed))

    from .exec import ParallelRunner, TaskOutcome
    from .exec.tasks import run_summary_task

    from .coverage import runtime as coverage_runtime

    cov = coverage_runtime.active()
    store = _campaign_store(args)
    outcomes: List[Optional[TaskOutcome]] = [None] * len(configs)
    fps: List[Optional[str]] = [None] * len(configs)
    pending = list(range(len(configs)))
    if store is not None:
        from .store.fingerprint import config_fingerprint

        extra = {"coverage": True} if cov is not None else None
        pending = []
        for i, config in enumerate(configs):
            fps[i] = config_fingerprint(config, kind="summary", extra=extra)
            cached = store.get(fps[i])
            if cached is not None:
                outcomes[i] = TaskOutcome(index=i, ok=True, value=cached,
                                          cached=True)
            else:
                pending.append(i)

    started = time.perf_counter()
    crashes = 0
    if pending:
        with ParallelRunner(run_summary_task, workers=args.workers,
                            task_timeout_s=args.timeout) as runner:
            fresh = runner.map([{"config": configs[i]} for i in pending])
        crashes = runner.stats.worker_crashes
        for i, outcome in zip(pending, fresh):
            outcomes[i] = TaskOutcome(index=i, ok=outcome.ok,
                                      value=outcome.value,
                                      error=outcome.error,
                                      attempts=outcome.attempts,
                                      ran_in_process=outcome.ran_in_process)
            if store is not None and outcome.ok:
                store.put(fps[i], "summary", outcome.value)
    elapsed = time.perf_counter() - started

    if cov is not None:
        # Summaries carry each run's coverage; fold in cell order. An
        # in-process (fallback or workers=1) run already merged via
        # run_test, so only pool-executed and cached cells fold here.
        for outcome in outcomes:
            if (outcome is not None and outcome.ok
                    and not outcome.ran_in_process
                    and isinstance(outcome.value, dict)
                    and outcome.value.get("coverage")):
                cov.merge_snapshot(outcome.value["coverage"])

    report, failures = _sweep_report(cells, outcomes)
    _emit_report(report, args.output)
    rate = len(pending) / elapsed if elapsed > 0 else 0.0
    print(f"{len(pending)} of {len(configs)} runs executed in {elapsed:.2f}s "
          f"({rate:.2f} runs/s, workers={args.workers}, crashes={crashes})")
    if store is not None:
        print(store.stats())
    return 1 if failures else 0


def cmd_incast(args: argparse.Namespace) -> int:
    from .core.incast import IncastConfig, run_incast

    if args.measurement_faults:
        print("error: incast builds its own fan-in testbed and does not "
              "support --measurement-faults", file=sys.stderr)
        return 2
    seed = args.seed if args.seed is not None else _INCAST_DEFAULT_SEED
    result = run_incast(IncastConfig(
        num_senders=args.senders, nic_type=args.nic,
        num_msgs_per_sender=args.messages, message_size=args.size,
        ecn_threshold_kb=args.ecn_threshold_kb,
        receiver_queue_bytes=args.queue_kb * 1024 if args.queue_kb else None,
        seed=seed,
    ))
    drops = sum(p["tx_drops"] for p in result.switch_counters["ports"].values())
    lines = [
        f"{args.senders} senders ({args.nic}) -> 1 receiver",
        f"aggregate goodput: {result.aggregate_goodput_bps / 1e9:.1f} Gbps",
        f"fairness (Jain):   {result.fairness:.2f}",
        f"retransmitted:     {sum(result.per_sender_retransmits.values())}",
        f"queue ECN marks:   {result.switch_counters['ecn_marked_by_queue']}",
        f"switch drops:      {drops}",
        f"capture integrity: {'PASS' if result.integrity.ok else 'FAIL'}",
    ]
    _emit_report("\n".join(lines) + "\n", args.output)
    return 0


def cmd_nics(_args: argparse.Namespace) -> int:
    print(f"{'name':<8s}{'vendor':<12s}{'speed':<9s}behaviour notes")
    print("-" * 70)
    for profile in PROFILES.values():
        notes = []
        if not profile.ets_work_conserving:
            notes.append("non-work-conserving ETS")
        if profile.pipeline_stall_read_loss_threshold is not None:
            notes.append("noisy-neighbor stall")
        if profile.migreq_initial == 0:
            notes.append("sends MigReq=0")
        if profile.migreq_zero_slow_path:
            notes.append("MigReq=0 slow path")
        if profile.stuck_counters:
            notes.append(f"stuck: {','.join(sorted(profile.stuck_counters))}")
        if profile.hidden_cnp_interval_ns:
            notes.append(f"hidden CNP interval "
                         f"{profile.hidden_cnp_interval_ns // 1000}us")
        print(f"{profile.name:<8s}{profile.vendor:<12s}"
              f"{profile.default_bandwidth_gbps:>4.0f}Gbps  "
              + ("; ".join(notes) if notes else "spec-compliant"))
    return 0


def cmd_example_config(_args: argparse.Namespace) -> int:
    print(json.dumps(_EXAMPLE_CONFIG, indent=2))
    return 0


def cmd_coverage_report(args: argparse.Namespace) -> int:
    from .coverage.report import (load_points, render_coverage,
                                  render_coverage_json, render_diff)

    try:
        points = load_points(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.diff:
        try:
            other = load_points(args.diff)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _emit_report(render_diff(points, other, args.path, args.diff),
                     args.output)
        return 0
    if args.json:
        _emit_report(render_coverage_json(points), args.output)
    else:
        _emit_report(render_coverage(points, title=args.path), args.output)
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    from .telemetry.report import render_summary

    if not os.path.isdir(args.dir):
        print(f"error: no such telemetry directory: {args.dir}",
              file=sys.stderr)
        return 2
    try:
        print(render_summary(args.dir))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _common_parser() -> argparse.ArgumentParser:
    """The flag vocabulary every campaign command shares.

    One definition means one help string and one default per flag —
    ``suite``'s historical divergent ``--seed`` default (77 instead of
    None) is resolved inside :func:`repro.core.suite.\
    run_conformance_suite` (``None`` → ``DEFAULT_SUITE_SEED``), not by
    a per-command argparse default.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("common options")
    group.add_argument("--seed", type=int, default=None,
                       help="override the RNG seed (default: the "
                            "command's documented default)")
    group.add_argument("--workers", type=int, default=1,
                       help="process-pool size for campaign commands "
                            "(default: 1, in-process; single-run "
                            "commands ignore it)")
    group.add_argument("--telemetry", metavar="DIR", default=None,
                       help="collect runtime telemetry and export to DIR")
    group.add_argument("--coverage", metavar="DIR", default=None,
                       help="record micro-behavior coverage and write "
                            "DIR/coverage.json (plus flight-recorder "
                            "dumps for failing runs)")
    group.add_argument("--measurement-faults", metavar="SCENARIO",
                       default=None, choices=_fault_scenario_names(),
                       help="inject measurement-plane faults "
                            "(capture stress test); one of: "
                            + ", ".join(_fault_scenario_names()))
    group.add_argument("--output", "-o", metavar="FILE", default=None,
                       help="write the command's report to FILE "
                            "(deterministic: no wall-clock content)")
    return common


def _add_campaign_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campaign", metavar="DIR", default=None,
                        help="content-addressed campaign directory: "
                             "cache results in DIR/store and replay "
                             "them on repeat invocations")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lumina (SIGCOMM 2023) reproduction: test hardware "
                    "network stack models in simulation.",
    )
    common = _common_parser()
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", parents=[common],
                           help="run one test from a JSON config")
    run_p.add_argument("config")
    _add_campaign_flag(run_p)
    run_p.set_defaults(func=cmd_run)

    fuzz_p = sub.add_parser("fuzz", parents=[common],
                            help="fuzz around a base config")
    fuzz_p.add_argument("config", nargs="?",
                        help="JSON base config (omit when using --target)")
    fuzz_p.add_argument("--target",
                        choices=("general", "noisy-neighbor", "counter-bugs"),
                        help="use a predefined fuzz target instead of a config")
    fuzz_p.add_argument("--nic", default="cx5",
                        help="NIC model for --target runs")
    fuzz_p.add_argument("--iterations", "-n", type=int, default=20)
    fuzz_p.add_argument("--threshold", type=float, default=3.0)
    fuzz_p.add_argument("--stop-on-first", action="store_true")
    fuzz_p.add_argument("--coverage-fitness", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="coverage-guided selection: novelty bonus, "
                             "first-hit admission, corpus minimization and "
                             "finding dedup (default: on exactly when "
                             "--coverage is set; --no-coverage-fitness "
                             "forces the blind GA)")
    fuzz_p.add_argument("--batch", type=int, default=4,
                        help="candidates generated per pool snapshot; "
                             "fixes the schedule independently of "
                             "--workers (default: 4)")
    _add_campaign_flag(fuzz_p)
    fuzz_p.set_defaults(func=cmd_fuzz)

    suite_p = sub.add_parser(
        "suite", parents=[common],
        help="run the conformance battery against a NIC model")
    suite_p.add_argument("nic")
    suite_p.add_argument("--checks", nargs="*",
                         help="subset of checks to run (default: all)")
    _add_campaign_flag(suite_p)
    suite_p.set_defaults(func=cmd_suite)

    sweep_p = sub.add_parser(
        "sweep", parents=[common],
        help="benchmark sweep: one workload across NICs x seeds")
    sweep_p.add_argument("config", nargs="?",
                         help="JSON base config (default: built-in workload)")
    sweep_p.add_argument("--nics", default="cx4,cx5,cx6,e810",
                         help="comma-separated NIC models")
    sweep_p.add_argument("--seeds", type=int, default=1,
                         help="seeds per NIC (base-seed, base-seed+1, ...)")
    sweep_p.add_argument("--base-seed", type=int, default=1,
                         help="first seed of the grid (--seed overrides)")
    sweep_p.add_argument("--verb", default="write",
                         help="verb for the built-in workload")
    sweep_p.add_argument("--connections", type=int, default=2)
    sweep_p.add_argument("--messages", type=int, default=4)
    sweep_p.add_argument("--size", type=int, default=20480)
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-run timeout in seconds")
    _add_campaign_flag(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    incast_p = sub.add_parser("incast", parents=[common],
                              help="run an N-to-1 incast workload")
    incast_p.add_argument("--senders", type=int, default=4)
    incast_p.add_argument("--nic", default="cx6")
    incast_p.add_argument("--messages", type=int, default=8)
    incast_p.add_argument("--size", type=int, default=256 * 1024)
    incast_p.add_argument("--ecn-threshold-kb", type=int, default=None)
    incast_p.add_argument("--queue-kb", type=int, default=None,
                          help="bottleneck buffer (default: deep)")
    incast_p.set_defaults(func=cmd_incast)

    nics_p = sub.add_parser("nics", help="list NIC behaviour profiles")
    nics_p.set_defaults(func=cmd_nics)

    example_p = sub.add_parser("example-config",
                               help="print a sample JSON config")
    example_p.set_defaults(func=cmd_example_config)

    telreport_p = sub.add_parser(
        "telemetry-report",
        help="summarize a --telemetry output directory")
    telreport_p.add_argument("dir")
    telreport_p.set_defaults(func=cmd_telemetry_report)

    covreport_p = sub.add_parser(
        "coverage-report",
        help="summarize or diff --coverage output (a coverage.json, "
             "its directory, or a campaign store)")
    covreport_p.add_argument("path",
                             help="coverage.json file, a --coverage/"
                                  "--campaign directory, or a store root")
    covreport_p.add_argument("--diff", metavar="OTHER", default=None,
                             help="report points hit in exactly one of "
                                  "the two coverage sources")
    covreport_p.add_argument("--json", action="store_true",
                             help="emit the per-domain summary as JSON")
    covreport_p.add_argument("--output", "-o", metavar="FILE", default=None,
                             help="also write the report to FILE")
    covreport_p.set_defaults(func=cmd_coverage_report)

    sub.add_parser(
        "lint",
        help="determinism & spawn-safety static analysis "
             "(all arguments forwarded; try: lint --help)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``lint`` owns its whole argument tail (argparse.REMAINDER cannot
    # forward leading ``--flags``), so dispatch before parsing.
    if argv and argv[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    telemetry_dir = getattr(args, "telemetry", None)
    coverage_dir = getattr(args, "coverage", None)
    # `fuzz --coverage-fitness` without --coverage still needs a live
    # session to collect the feedback — enable one in-memory (no
    # coverage.json is exported without a directory to put it in).
    wants_session = coverage_dir is not None or bool(
        getattr(args, "coverage_fitness", False))
    if telemetry_dir is None and not wants_session:
        return args.func(args)
    from .coverage import runtime as coverage
    from .telemetry import runtime as telemetry

    if telemetry_dir is not None:
        telemetry.enable(telemetry_dir)
    if wants_session:
        coverage.enable(coverage_dir)
    try:
        status = args.func(args)
        cov = coverage.active()
        if cov is not None and coverage_dir is not None:
            from .coverage.domains import known_point_count
            from .coverage.report import export_coverage

            points = cov.total_snapshot()
            if telemetry.active() is not None:
                # Headline gauges for `telemetry-report`, published
                # before the telemetry export below snapshots them.
                tel = telemetry.current()
                tel.gauge("coverage_domains_hit").set(
                    len({row[0] for row in points}))
                tel.gauge("coverage_points_hit").set(len(points))
                tel.gauge("coverage_points_known").set(known_point_count())
            path = export_coverage(points, coverage_dir)
            print(f"coverage written to {path} ({len(points)} points)")
        session = telemetry.active()
        if session is not None:
            paths = session.export()
            names = sorted(p.rsplit("/", 1)[-1] for p in paths.values())
            print(f"telemetry written to {telemetry_dir} ({', '.join(names)})")
        return status
    finally:
        if wants_session:
            coverage.disable()
        if telemetry_dir is not None:
            telemetry.disable()


if __name__ == "__main__":
    sys.exit(main())
