"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <config.json>``   — run one test from a JSON config (the dict
  shape of Listings 1–2) and print the full report.
* ``fuzz <config.json>``  — fuzz around a base config (Algorithm 1);
  ``--target {general,noisy-neighbor,counter-bugs}`` uses a preset.
* ``suite <nic>``         — run the conformance battery (scorecard).
* ``sweep``               — benchmark sweep: one workload across a
  NIC × seed grid, reporting per-run summaries and runs/sec.
* ``incast``              — run an N-to-1 fan-in workload.
* ``nics``                — list the built-in NIC behaviour profiles.
* ``example-config``      — print a ready-to-edit JSON config.
* ``telemetry-report <dir>`` — summarize a ``--telemetry`` output dir.
* ``coverage-report <path>`` — summarize or diff ``--coverage`` output
  (a ``coverage.json``, its directory, or a campaign store).
* ``lint``                — determinism & spawn-safety static analysis
  over the testbed sources (see :mod:`repro.lint`).

The campaign commands (``run``, ``fuzz``, ``suite``, ``sweep``,
``incast``) share one flag vocabulary — ``--seed``, ``--workers``,
``--telemetry``, ``--measurement-faults`` and ``--output`` mean the
same thing, with the same defaults, everywhere they apply:

* ``--workers N`` fans the campaign out over a spawn-safe process pool
  (``repro.exec``), falling back to in-process serial execution if the
  pool dies. Results are byte-identical for any worker count — for
  ``fuzz`` the generation schedule is fixed by ``--batch``, not by
  ``--workers``. Single-run commands (``run``, ``incast``) ignore it.
* ``--telemetry DIR`` executes with telemetry enabled and writes a
  Chrome trace (``trace.json``), Prometheus metrics (``metrics.prom``)
  and span JSONL (``events.jsonl``) into DIR on completion.
* ``--coverage DIR`` records micro-behavior coverage (which protocol
  state-machine edges, switch pipeline branches and DCQCN transitions
  the campaign exercised) into ``DIR/coverage.json``, plus a
  flight-recorder dump per failing/inconclusive/retried unit of work.
  The map is deterministic: byte-identical for any ``--workers`` value.
  For ``fuzz`` a live coverage session also switches selection to
  **coverage-guided fitness** (novelty bonus, first-hit admission,
  corpus minimization, finding dedup); ``--no-coverage-fitness``
  forces the blind GA, and ``--coverage-fitness`` without a coverage
  directory runs guided with an in-memory session.
* ``--measurement-faults SCENARIO`` stresses the measurement plane
  (mirror links, dumper rings) with a named deterministic fault
  scenario (see :mod:`repro.faults.scenarios`); the §3.5 integrity
  check / retry machinery has to cope, and suite checks whose evidence
  window overlaps a capture gap report INCONCLUSIVE instead of a false
  verdict. (``incast`` builds its own testbed and rejects the flag.)
* ``--output FILE`` writes the command's report to FILE instead of
  only stdout. Campaign reports written this way are deterministic —
  no wall-clock content — so resumed and uninterrupted campaigns
  produce byte-identical files.

``run``, ``fuzz``, ``suite`` and ``sweep`` additionally accept
``--campaign DIR``: results are content-addressed in ``DIR/store`` and
replayed instead of re-simulated on a later invocation (``fuzz`` also
journals per-generation state in ``DIR/journal.jsonl``, so a killed
campaign resumes exactly where it stopped — see ``repro.store``).

The campaign service (``repro.service``) adds a second execution mode:
``serve`` starts a long-running daemon, and ``run``/``fuzz``/``suite``/
``sweep`` accept ``--server URL`` to submit the same job to a daemon
instead of executing locally. Both modes build the identical
:class:`~repro.service.jobspec.JobSpec`, so local and remote execution
share one fingerprint and produce byte-identical reports.
``submit``/``status``/``results``/``cancel`` talk to a running daemon
directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .core.config import TestConfig
from .rdma.profiles import PROFILES

#: Historical per-command seed defaults, applied when --seed is omitted.
_INCAST_DEFAULT_SEED = 55

_EXAMPLE_CONFIG = {
    "requester": {
        "nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]},
        "roce-parameters": {"dcqcn-np-enable": True,
                            "min-time-between-cnps": 4,
                            "adaptive-retrans": False},
    },
    "responder": {"nic": {"type": "cx5", "ip-list": ["10.0.0.2/24"]}},
    "traffic": {
        "num-connections": 2,
        "rdma-verb": "write",
        "num-msgs-per-qp": 10,
        "mtu": 1024,
        "message-size": 10240,
        "barrier-sync": True,
        "min-retransmit-timeout": 14,
        "max-retransmit-retry": 7,
        "data-pkt-events": [
            {"qpn": 1, "psn": 4, "type": "ecn", "iter": 1},
            {"qpn": 2, "psn": 5, "type": "drop", "iter": 1},
            {"qpn": 2, "psn": 5, "type": "drop", "iter": 2},
        ],
    },
    "seed": 1,
}


def _fault_scenario_names() -> List[str]:
    from .faults import SCENARIOS

    return sorted(SCENARIOS)


def _load_config(path: str, seed: Optional[int] = None) -> TestConfig:
    with open(path) as handle:
        data = json.load(handle)
    if seed is not None:
        data["seed"] = seed
    return TestConfig.from_dict(data)


def _campaign_store(args: argparse.Namespace):
    """The --campaign store for this invocation, or None."""
    campaign = getattr(args, "campaign", None)
    if not campaign:
        return None
    from .store import CampaignStore

    return CampaignStore(os.path.join(campaign, "store"))


def _emit_report(report: str, output: Optional[str]) -> None:
    """Print a report and, with --output, persist it byte-for-byte."""
    print(report, end="" if report.endswith("\n") else "\n")
    if output:
        with open(output, "w") as handle:
            handle.write(report)
        print(f"report written to {output}")


def _write_flight_dumps(args: argparse.Namespace,
                        records: List[Tuple[str, str, List[list]]]) -> None:
    """Persist anomaly flight-recorder dumps next to the coverage map.

    ``records`` is ``[(name, trigger, timeline-entries), ...]`` — one
    dump per failing/inconclusive/retried unit of work. No-op without
    ``--coverage``.
    """
    coverage_dir = getattr(args, "coverage", None)
    if not coverage_dir or not records:
        return
    from .coverage.report import flight_dump_name, render_flight_record

    os.makedirs(coverage_dir, exist_ok=True)
    for name, trigger, entries in records:
        path = os.path.join(coverage_dir, flight_dump_name(name))
        with open(path, "w") as handle:
            handle.write(render_flight_record(entries, name, trigger))
        print(f"flight record written to {path}")


def _session_flags(args: argparse.Namespace) -> dict:
    """JobSpec session kwargs for a --server submission.

    Local invocations leave these off — ``main()`` drives the sessions
    in-process exactly as it always has — so a plain local command and
    a plain remote one build the identical, fingerprint-equal spec.
    Remote jobs instead carry the request in the payload and the job
    process exports into its job directory on the daemon side.
    """
    if not getattr(args, "server", None):
        return {}
    return {"coverage": bool(getattr(args, "coverage", None)),
            "telemetry": bool(getattr(args, "telemetry", None))}


def _run_remote(args: argparse.Namespace, spec) -> int:
    """Submit a spec to ``--server``, wait, and emit the fetched report."""
    if getattr(args, "campaign", None):
        print("error: --campaign is local-only; the service keeps its "
              "own store (see `repro serve`)", file=sys.stderr)
        return 2
    from .service import Client, ServiceError

    client = Client(args.server)
    try:
        job = client.submit(spec)
        print(f"submitted {job['id']} "
              f"(fingerprint {job['fingerprint'][:12]}) to {args.server}")
        final = client.wait(job["id"])
        if final["state"] != "done":
            print(f"error: job {job['id']} {final['state']}: "
                  f"{final.get('error')}", file=sys.stderr)
            return 1
        if final.get("replayed"):
            print("result replayed from service store")
        body = client.results(job["id"])
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit_report(body["report"], args.output)
    return int(body["exit-code"])


def cmd_run(args: argparse.Namespace) -> int:
    from .service import JobSpec, execute_jobspec

    config = _load_config(args.config, args.seed)
    spec = JobSpec.for_run(config, faults=args.measurement_faults,
                           workers=args.workers, priority=args.priority,
                           **_session_flags(args))
    if args.server:
        return _run_remote(args, spec)
    store = _campaign_store(args)
    outcome = execute_jobspec(spec, store=store)
    _emit_report(outcome.report, args.output)
    _write_flight_dumps(args, outcome.flight_records)
    if store is not None:
        print(store.stats())
    return outcome.exit_code


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .service import JobSpec, execute_jobspec

    if not args.target and not args.config:
        print("error: provide a config file or --target", file=sys.stderr)
        return 2
    config = None
    if not args.target:
        config = _load_config(args.config, args.seed)
    spec = JobSpec.for_fuzz(config=config, target=args.target,
                            nic=args.nic, seed=args.seed,
                            iterations=args.iterations, batch=args.batch,
                            threshold=args.threshold,
                            stop_on_first=args.stop_on_first,
                            coverage_fitness=args.coverage_fitness,
                            faults=args.measurement_faults,
                            workers=args.workers, priority=args.priority,
                            **_session_flags(args))
    if args.server:
        return _run_remote(args, spec)
    store = _campaign_store(args)
    outcome = execute_jobspec(spec, store=store,
                              campaign_dir=args.campaign)
    for note in outcome.notes:
        print(note)
    _emit_report(outcome.report, args.output)
    if store is not None:
        print(store.stats())
    return outcome.exit_code


def cmd_suite(args: argparse.Namespace) -> int:
    from .service import JobSpec, execute_jobspec

    spec = JobSpec.for_suite(args.nic, seed=args.seed,
                             checks=args.checks or None,
                             faults=args.measurement_faults,
                             workers=args.workers, priority=args.priority,
                             **_session_flags(args))
    if args.server:
        return _run_remote(args, spec)
    store = _campaign_store(args)
    outcome = execute_jobspec(spec, store=store)
    _emit_report(outcome.report, args.output)
    _write_flight_dumps(args, outcome.flight_records)
    if store is not None:
        print(store.stats())
    return outcome.exit_code


def cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from .service import JobSpec, execute_jobspec

    base_seed = args.seed if args.seed is not None else args.base_seed
    nics = [n.strip() for n in args.nics.split(",") if n.strip()]
    config = _load_config(args.config) if args.config else None
    spec = JobSpec.for_sweep(nics=nics, seeds=args.seeds,
                             base_seed=base_seed, config=config,
                             verb=args.verb,
                             connections=args.connections,
                             messages=args.messages, size=args.size,
                             faults=args.measurement_faults,
                             timeout=args.timeout, workers=args.workers,
                             priority=args.priority,
                             **_session_flags(args))
    if args.server:
        return _run_remote(args, spec)
    store = _campaign_store(args)
    started = time.perf_counter()
    outcome = execute_jobspec(spec, store=store)
    elapsed = time.perf_counter() - started
    _emit_report(outcome.report, args.output)
    stats = outcome.stats
    rate = stats["executed"] / elapsed if elapsed > 0 else 0.0
    print(f"{stats['executed']} of {stats['total']} runs executed in "
          f"{elapsed:.2f}s ({rate:.2f} runs/s, workers={args.workers}, "
          f"crashes={stats['crashes']})")
    if store is not None:
        print(store.stats())
    return outcome.exit_code


def cmd_incast(args: argparse.Namespace) -> int:
    from .core.incast import IncastConfig, run_incast

    if args.measurement_faults:
        print("error: incast builds its own fan-in testbed and does not "
              "support --measurement-faults", file=sys.stderr)
        return 2
    if args.server:
        print("error: incast is a local diagnostic and does not support "
              "--server", file=sys.stderr)
        return 2
    seed = args.seed if args.seed is not None else _INCAST_DEFAULT_SEED
    result = run_incast(IncastConfig(
        num_senders=args.senders, nic_type=args.nic,
        num_msgs_per_sender=args.messages, message_size=args.size,
        ecn_threshold_kb=args.ecn_threshold_kb,
        receiver_queue_bytes=args.queue_kb * 1024 if args.queue_kb else None,
        seed=seed,
    ))
    drops = sum(p["tx_drops"] for p in result.switch_counters["ports"].values())
    lines = [
        f"{args.senders} senders ({args.nic}) -> 1 receiver",
        f"aggregate goodput: {result.aggregate_goodput_bps / 1e9:.1f} Gbps",
        f"fairness (Jain):   {result.fairness:.2f}",
        f"retransmitted:     {sum(result.per_sender_retransmits.values())}",
        f"queue ECN marks:   {result.switch_counters['ecn_marked_by_queue']}",
        f"switch drops:      {drops}",
        f"capture integrity: {'PASS' if result.integrity.ok else 'FAIL'}",
    ]
    _emit_report("\n".join(lines) + "\n", args.output)
    return 0


def _client_or_error(args: argparse.Namespace):
    if not getattr(args, "server", None):
        print("error: this command needs --server URL", file=sys.stderr)
        return None
    from .service import Client

    return Client(args.server)


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import CampaignDaemon

    daemon = CampaignDaemon(
        args.state_dir, host=args.host, port=args.port,
        retention_interval_s=args.retention_interval,
        retain_entries=args.retain_entries)
    daemon.start()
    print(f"campaign service listening on {daemon.url} "
          f"(state: {args.state_dir})", flush=True)
    daemon.run_forever()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceError, decode_jobspec

    client = _client_or_error(args)
    if client is None:
        return 2
    with open(args.spec) as handle:
        doc = json.load(handle)
    try:
        spec = decode_jobspec(doc)
    except ValueError as exc:
        print(f"error: {args.spec}: {exc}", file=sys.stderr)
        return 2
    if args.priority:
        from dataclasses import replace

        spec = replace(spec, priority=args.priority)
    try:
        job = client.submit(spec)
        print(f"{job['id']} {job['state']} "
              f"(fingerprint {job['fingerprint'][:12]})")
        if not args.wait:
            return 0
        final = client.wait(job["id"])
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{final['id']} {final['state']}"
          + (f": {final['error']}" if final.get("error") else ""))
    return (int(final["exit-code"]) if final["state"] == "done" else 1)


def cmd_status(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _client_or_error(args)
    if client is None:
        return 2
    try:
        if args.job:
            rows = [client.status(args.job)]
            if args.progress:
                progress = client.progress(args.job)
                extras = {k: v for k, v in sorted(progress.items())
                          if k not in ("id", "state", "job-kind")}
        else:
            rows = client.jobs()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{'id':<12s}{'kind':<7s}{'state':<11s}{'exit':>5s}  notes")
    for row in rows:
        exit_code = row.get("exit-code")
        notes = []
        if row.get("replayed"):
            notes.append("replayed")
        if row.get("error"):
            notes.append(row["error"])
        print(f"{row['id']:<12s}{row['job-kind']:<7s}{row['state']:<11s}"
              f"{'-' if exit_code is None else exit_code:>5}  "
              + "; ".join(notes))
    if args.job and args.progress:
        for key, value in extras.items():
            print(f"  {key}: {value}")
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _client_or_error(args)
    if client is None:
        return 2
    try:
        if args.json:
            raw = client.results_bytes(args.job)
            if args.output:
                with open(args.output, "wb") as handle:
                    handle.write(raw)
                print(f"result document written to {args.output}")
            else:
                sys.stdout.write(raw.decode("utf-8") + "\n")
            return 0
        body = client.results(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit_report(body["report"], args.output)
    return int(body["exit-code"])


def cmd_cancel(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _client_or_error(args)
    if client is None:
        return 2
    try:
        outcome = client.cancel(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.job}: {outcome}")
    return 0 if outcome in ("cancelled", "cancelling") else 1


def cmd_nics(_args: argparse.Namespace) -> int:
    print(f"{'name':<8s}{'vendor':<12s}{'speed':<9s}behaviour notes")
    print("-" * 70)
    for profile in PROFILES.values():
        notes = []
        if not profile.ets_work_conserving:
            notes.append("non-work-conserving ETS")
        if profile.pipeline_stall_read_loss_threshold is not None:
            notes.append("noisy-neighbor stall")
        if profile.migreq_initial == 0:
            notes.append("sends MigReq=0")
        if profile.migreq_zero_slow_path:
            notes.append("MigReq=0 slow path")
        if profile.stuck_counters:
            notes.append(f"stuck: {','.join(sorted(profile.stuck_counters))}")
        if profile.hidden_cnp_interval_ns:
            notes.append(f"hidden CNP interval "
                         f"{profile.hidden_cnp_interval_ns // 1000}us")
        print(f"{profile.name:<8s}{profile.vendor:<12s}"
              f"{profile.default_bandwidth_gbps:>4.0f}Gbps  "
              + ("; ".join(notes) if notes else "spec-compliant"))
    return 0


def cmd_example_config(_args: argparse.Namespace) -> int:
    print(json.dumps(_EXAMPLE_CONFIG, indent=2))
    return 0


def cmd_coverage_report(args: argparse.Namespace) -> int:
    from .coverage.report import (load_points, render_coverage,
                                  render_coverage_json, render_diff)

    try:
        points = load_points(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.diff:
        try:
            other = load_points(args.diff)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _emit_report(render_diff(points, other, args.path, args.diff),
                     args.output)
        return 0
    if args.json:
        _emit_report(render_coverage_json(points), args.output)
    else:
        _emit_report(render_coverage(points, title=args.path), args.output)
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    from .telemetry.report import render_summary

    if not os.path.isdir(args.dir):
        print(f"error: no such telemetry directory: {args.dir}",
              file=sys.stderr)
        return 2
    try:
        print(render_summary(args.dir))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _common_parser() -> argparse.ArgumentParser:
    """The flag vocabulary every campaign command shares.

    One definition means one help string and one default per flag —
    ``suite``'s historical divergent ``--seed`` default (77 instead of
    None) is resolved inside :func:`repro.core.suite.\
    run_conformance_suite` (``None`` → ``DEFAULT_SUITE_SEED``), not by
    a per-command argparse default.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("common options")
    group.add_argument("--seed", type=int, default=None,
                       help="override the RNG seed (default: the "
                            "command's documented default)")
    group.add_argument("--workers", type=int, default=1,
                       help="process-pool size for campaign commands "
                            "(default: 1, in-process; single-run "
                            "commands ignore it)")
    group.add_argument("--telemetry", metavar="DIR", default=None,
                       help="collect runtime telemetry and export to DIR")
    group.add_argument("--coverage", metavar="DIR", default=None,
                       help="record micro-behavior coverage and write "
                            "DIR/coverage.json (plus flight-recorder "
                            "dumps for failing runs)")
    group.add_argument("--measurement-faults", metavar="SCENARIO",
                       default=None, choices=_fault_scenario_names(),
                       help="inject measurement-plane faults "
                            "(capture stress test); one of: "
                            + ", ".join(_fault_scenario_names()))
    group.add_argument("--output", "-o", metavar="FILE", default=None,
                       help="write the command's report to FILE "
                            "(deterministic: no wall-clock content)")
    group.add_argument("--server", metavar="URL", default=None,
                       help="submit to a campaign service (see `repro "
                            "serve`) instead of executing locally; the "
                            "job builds the same JobSpec either way, so "
                            "local and remote results are fingerprint-"
                            "identical")
    group.add_argument("--priority", type=int, default=0,
                       help="queue priority for --server submissions "
                            "(higher dispatches first, FIFO within a "
                            "priority; local execution ignores it)")
    return common


def _add_campaign_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campaign", metavar="DIR", default=None,
                        help="content-addressed campaign directory: "
                             "cache results in DIR/store and replay "
                             "them on repeat invocations")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lumina (SIGCOMM 2023) reproduction: test hardware "
                    "network stack models in simulation.",
    )
    common = _common_parser()
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", parents=[common],
                           help="run one test from a JSON config")
    run_p.add_argument("config")
    _add_campaign_flag(run_p)
    run_p.set_defaults(func=cmd_run)

    fuzz_p = sub.add_parser("fuzz", parents=[common],
                            help="fuzz around a base config")
    fuzz_p.add_argument("config", nargs="?",
                        help="JSON base config (omit when using --target)")
    fuzz_p.add_argument("--target",
                        choices=("general", "noisy-neighbor", "counter-bugs"),
                        help="use a predefined fuzz target instead of a config")
    fuzz_p.add_argument("--nic", default="cx5",
                        help="NIC model for --target runs")
    fuzz_p.add_argument("--iterations", "-n", type=int, default=20)
    fuzz_p.add_argument("--threshold", type=float, default=3.0)
    fuzz_p.add_argument("--stop-on-first", action="store_true")
    fuzz_p.add_argument("--coverage-fitness", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="coverage-guided selection: novelty bonus, "
                             "first-hit admission, corpus minimization and "
                             "finding dedup (default: on exactly when "
                             "--coverage is set; --no-coverage-fitness "
                             "forces the blind GA)")
    fuzz_p.add_argument("--batch", type=int, default=4,
                        help="candidates generated per pool snapshot; "
                             "fixes the schedule independently of "
                             "--workers (default: 4)")
    _add_campaign_flag(fuzz_p)
    fuzz_p.set_defaults(func=cmd_fuzz)

    suite_p = sub.add_parser(
        "suite", parents=[common],
        help="run the conformance battery against a NIC model")
    suite_p.add_argument("nic")
    suite_p.add_argument("--checks", nargs="*",
                         help="subset of checks to run (default: all)")
    _add_campaign_flag(suite_p)
    suite_p.set_defaults(func=cmd_suite)

    sweep_p = sub.add_parser(
        "sweep", parents=[common],
        help="benchmark sweep: one workload across NICs x seeds")
    sweep_p.add_argument("config", nargs="?",
                         help="JSON base config (default: built-in workload)")
    sweep_p.add_argument("--nics", default="cx4,cx5,cx6,e810",
                         help="comma-separated NIC models")
    sweep_p.add_argument("--seeds", type=int, default=1,
                         help="seeds per NIC (base-seed, base-seed+1, ...)")
    sweep_p.add_argument("--base-seed", type=int, default=1,
                         help="first seed of the grid (--seed overrides)")
    sweep_p.add_argument("--verb", default="write",
                         help="verb for the built-in workload")
    sweep_p.add_argument("--connections", type=int, default=2)
    sweep_p.add_argument("--messages", type=int, default=4)
    sweep_p.add_argument("--size", type=int, default=20480)
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-run timeout in seconds")
    _add_campaign_flag(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    incast_p = sub.add_parser("incast", parents=[common],
                              help="run an N-to-1 incast workload")
    incast_p.add_argument("--senders", type=int, default=4)
    incast_p.add_argument("--nic", default="cx6")
    incast_p.add_argument("--messages", type=int, default=8)
    incast_p.add_argument("--size", type=int, default=256 * 1024)
    incast_p.add_argument("--ecn-threshold-kb", type=int, default=None)
    incast_p.add_argument("--queue-kb", type=int, default=None,
                          help="bottleneck buffer (default: deep)")
    incast_p.set_defaults(func=cmd_incast)

    serve_p = sub.add_parser(
        "serve", parents=[common],
        help="start the long-running campaign service daemon")
    serve_p.add_argument("state_dir",
                         help="daemon state directory (queue journal, "
                              "store, per-job directories)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="TCP port (default: 0, ephemeral; the "
                              "bound URL is printed on startup)")
    serve_p.add_argument("--retention-interval", type=float, default=60.0,
                         help="seconds between background store gc/prune "
                              "passes (default: 60)")
    serve_p.add_argument("--retain-entries", type=int, default=None,
                         help="prune the service store down to this many "
                              "entries each retention pass (default: "
                              "no pruning, gc only)")
    serve_p.set_defaults(func=cmd_serve)

    submit_p = sub.add_parser(
        "submit", parents=[common],
        help="submit a job-spec JSON document to a campaign service")
    submit_p.add_argument("spec", help="job-spec JSON file (see DESIGN.md)")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until the job finishes and exit "
                               "with its exit code")
    submit_p.set_defaults(func=cmd_submit)

    status_p = sub.add_parser(
        "status", parents=[common],
        help="show one job (or the whole queue) of a campaign service")
    status_p.add_argument("job", nargs="?", default=None,
                          help="job id (default: list every job)")
    status_p.add_argument("--progress", action="store_true",
                          help="also show incremental progress (fuzz "
                               "generations, coverage points)")
    status_p.set_defaults(func=cmd_status)

    results_p = sub.add_parser(
        "results", parents=[common],
        help="fetch a finished job's report from a campaign service")
    results_p.add_argument("job", help="job id")
    results_p.add_argument("--json", action="store_true",
                           help="emit the raw versioned result document "
                                "instead of the report text")
    results_p.set_defaults(func=cmd_results)

    cancel_p = sub.add_parser(
        "cancel", parents=[common],
        help="cancel a queued or running job on a campaign service")
    cancel_p.add_argument("job", help="job id")
    cancel_p.set_defaults(func=cmd_cancel)

    nics_p = sub.add_parser("nics", help="list NIC behaviour profiles")
    nics_p.set_defaults(func=cmd_nics)

    example_p = sub.add_parser("example-config",
                               help="print a sample JSON config")
    example_p.set_defaults(func=cmd_example_config)

    telreport_p = sub.add_parser(
        "telemetry-report",
        help="summarize a --telemetry output directory")
    telreport_p.add_argument("dir")
    telreport_p.set_defaults(func=cmd_telemetry_report)

    covreport_p = sub.add_parser(
        "coverage-report",
        help="summarize or diff --coverage output (a coverage.json, "
             "its directory, or a campaign store)")
    covreport_p.add_argument("path",
                             help="coverage.json file, a --coverage/"
                                  "--campaign directory, or a store root")
    covreport_p.add_argument("--diff", metavar="OTHER", default=None,
                             help="report points hit in exactly one of "
                                  "the two coverage sources")
    covreport_p.add_argument("--json", action="store_true",
                             help="emit the per-domain summary as JSON")
    covreport_p.add_argument("--output", "-o", metavar="FILE", default=None,
                             help="also write the report to FILE")
    covreport_p.set_defaults(func=cmd_coverage_report)

    sub.add_parser(
        "lint",
        help="determinism & spawn-safety static analysis "
             "(all arguments forwarded; try: lint --help)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``lint`` owns its whole argument tail (argparse.REMAINDER cannot
    # forward leading ``--flags``), so dispatch before parsing.
    if argv and argv[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if getattr(args, "server", None):
        # Remote execution: sessions (and their exports) live in the
        # daemon's job directory, not in this process.
        return args.func(args)
    telemetry_dir = getattr(args, "telemetry", None)
    coverage_dir = getattr(args, "coverage", None)
    # `fuzz --coverage-fitness` without --coverage still needs a live
    # session to collect the feedback — enable one in-memory (no
    # coverage.json is exported without a directory to put it in).
    wants_session = coverage_dir is not None or bool(
        getattr(args, "coverage_fitness", False))
    if telemetry_dir is None and not wants_session:
        return args.func(args)
    from .coverage import runtime as coverage
    from .telemetry import runtime as telemetry

    if telemetry_dir is not None:
        telemetry.enable(telemetry_dir)
    if wants_session:
        coverage.enable(coverage_dir)
    try:
        status = args.func(args)
        cov = coverage.active()
        if cov is not None and coverage_dir is not None:
            from .coverage.domains import known_point_count
            from .coverage.report import export_coverage

            points = cov.total_snapshot()
            if telemetry.active() is not None:
                # Headline gauges for `telemetry-report`, published
                # before the telemetry export below snapshots them.
                tel = telemetry.current()
                tel.gauge("coverage_domains_hit").set(
                    len({row[0] for row in points}))
                tel.gauge("coverage_points_hit").set(len(points))
                tel.gauge("coverage_points_known").set(known_point_count())
            path = export_coverage(points, coverage_dir)
            print(f"coverage written to {path} ({len(points)} points)")
        session = telemetry.active()
        if session is not None:
            paths = session.export()
            names = sorted(p.rsplit("/", 1)[-1] for p in paths.values())
            print(f"telemetry written to {telemetry_dir} ({', '.join(names)})")
        return status
    finally:
        if wants_session:
            coverage.disable()
        if telemetry_dir is not None:
            telemetry.disable()


if __name__ == "__main__":
    sys.exit(main())
