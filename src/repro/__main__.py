"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run <config.json>``   — run one test from a JSON config (the dict
  shape of Listings 1–2) and print the full report.
* ``fuzz <config.json>``  — fuzz around a base config (Algorithm 1);
  ``--target {general,noisy-neighbor,counter-bugs}`` uses a preset.
* ``suite <nic>``         — run the conformance battery (scorecard).
* ``sweep``               — benchmark sweep: one workload across a
  NIC × seed grid, reporting per-run summaries and runs/sec.
* ``incast``              — run an N-to-1 fan-in workload.
* ``nics``                — list the built-in NIC behaviour profiles.
* ``example-config``      — print a ready-to-edit JSON config.
* ``telemetry-report <dir>`` — summarize a ``--telemetry`` output dir.
* ``lint``                — determinism & spawn-safety static analysis
  over the testbed sources (see :mod:`repro.lint`).

``fuzz``, ``suite`` and ``sweep`` accept ``--workers N``: the campaign
fans out over a spawn-safe process pool (``repro.exec``) and falls
back to in-process serial execution if the pool dies. Results are
byte-identical for any worker count — for ``fuzz`` the generation
schedule is fixed by ``--batch``, not by ``--workers``.

``run``, ``fuzz``, ``suite`` and ``incast`` accept ``--telemetry DIR``:
the run executes with telemetry enabled and writes a Chrome trace
(``trace.json``), Prometheus metrics (``metrics.prom``) and span JSONL
(``events.jsonl``) into DIR on completion.

``run`` and ``suite`` accept ``--measurement-faults SCENARIO``: the
measurement plane (mirror links, dumper rings) is stressed with a named
deterministic fault scenario (see :mod:`repro.faults.scenarios`), and
the §3.5 integrity check / retry machinery has to cope. Checks whose
evidence window overlaps a capture gap report INCONCLUSIVE instead of
a false verdict.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .core.config import TestConfig
from .core.fuzz import LuminaFuzzer
from .core.orchestrator import run_test
from .core.report import render_report
from .rdma.profiles import PROFILES

_EXAMPLE_CONFIG = {
    "requester": {
        "nic": {"type": "cx5", "ip-list": ["10.0.0.1/24"]},
        "roce-parameters": {"dcqcn-np-enable": True,
                            "min-time-between-cnps": 4,
                            "adaptive-retrans": False},
    },
    "responder": {"nic": {"type": "cx5", "ip-list": ["10.0.0.2/24"]}},
    "traffic": {
        "num-connections": 2,
        "rdma-verb": "write",
        "num-msgs-per-qp": 10,
        "mtu": 1024,
        "message-size": 10240,
        "barrier-sync": True,
        "min-retransmit-timeout": 14,
        "max-retransmit-retry": 7,
        "data-pkt-events": [
            {"qpn": 1, "psn": 4, "type": "ecn", "iter": 1},
            {"qpn": 2, "psn": 5, "type": "drop", "iter": 1},
            {"qpn": 2, "psn": 5, "type": "drop", "iter": 2},
        ],
    },
    "seed": 1,
}


def _fault_scenario_names() -> List[str]:
    from .faults import SCENARIOS

    return sorted(SCENARIOS)


def _load_config(path: str, seed: Optional[int] = None) -> TestConfig:
    with open(path) as handle:
        data = json.load(handle)
    if seed is not None:
        data["seed"] = seed
    return TestConfig.from_dict(data)


def cmd_run(args: argparse.Namespace) -> int:
    config = _load_config(args.config, args.seed)
    if args.measurement_faults:
        from .faults import get_scenario

        config = get_scenario(args.measurement_faults).apply(config)
    result = run_test(config)
    report = render_report(result)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report, end="")
    return 0 if result.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    if args.target:
        from .core.fuzz import make_fuzzer

        fuzzer, target = make_fuzzer(args.target, args.nic,
                                     seed=args.seed or 1)
        print(f"target: {target.name} — {target.description} (nic={args.nic})")
    else:
        if not args.config:
            print("error: provide a config file or --target", file=sys.stderr)
            return 2
        config = _load_config(args.config, args.seed)
        fuzzer = LuminaFuzzer(config, seed=args.seed or config.seed,
                              anomaly_threshold=args.threshold)
    report = fuzzer.run(iterations=args.iterations,
                        stop_on_first=args.stop_on_first,
                        workers=args.workers, batch_size=args.batch)
    print(f"iterations: {report.iterations_run}  "
          f"findings: {len(report.findings)}  "
          f"invalid: {report.invalid_runs}")
    for finding in report.findings:
        print(" ", finding.summary())
    return 0 if report.found_anomaly else 2


def cmd_suite(args: argparse.Namespace) -> int:
    from .core.suite import run_conformance_suite

    card = run_conformance_suite(args.nic, seed=args.seed,
                                 checks=args.checks or None,
                                 workers=args.workers,
                                 faults=args.measurement_faults or None)
    print(card.render())
    return 0 if card.all_passed else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    import time
    from dataclasses import replace

    nics = [n.strip() for n in args.nics.split(",") if n.strip()]
    configs = []
    cells = []
    for nic in nics:
        for offset in range(args.seeds):
            seed = args.base_seed + offset
            if args.config:
                base = _load_config(args.config, seed)
                config = replace(
                    base,
                    requester=replace(base.requester, nic_type=nic),
                    responder=replace(base.responder, nic_type=nic),
                )
            else:
                from . import quick_config

                config = quick_config(nic=nic, verb=args.verb,
                                      num_connections=args.connections,
                                      num_msgs=args.messages,
                                      message_size=args.size, seed=seed)
            configs.append(config)
            cells.append((nic, seed))

    from .exec import ParallelRunner
    from .exec.tasks import run_summary_task

    started = time.perf_counter()
    with ParallelRunner(run_summary_task, workers=args.workers,
                        task_timeout_s=args.timeout) as runner:
        outcomes = runner.map([{"config": c} for c in configs])
    elapsed = time.perf_counter() - started

    print(f"{'nic':<6s}{'seed':>6s}{'ok':>5s}{'mct_us':>10s}"
          f"{'retrans':>9s}{'timeouts':>10s}{'sim_ms':>9s}")
    print("-" * 55)
    failures = 0
    for (nic, seed), outcome in zip(cells, outcomes):
        if not outcome.ok:
            failures += 1
            print(f"{nic:<6s}{seed:>6d}  ERR  {outcome.error}")
            continue
        s = outcome.value
        if not s["ok"]:
            failures += 1
        print(f"{nic:<6s}{seed:>6d}{'yes' if s['ok'] else 'NO':>5s}"
              f"{s['avg_mct_us']:>10.1f}{s['retransmitted']:>9d}"
              f"{s['timeouts']:>10d}{s['duration_ns'] / 1e6:>9.2f}")
    rate = len(configs) / elapsed if elapsed > 0 else 0.0
    print("-" * 55)
    print(f"{len(configs)} runs in {elapsed:.2f}s "
          f"({rate:.2f} runs/s, workers={args.workers}, "
          f"crashes={runner.stats.worker_crashes})")
    return 1 if failures else 0


def cmd_incast(args: argparse.Namespace) -> int:
    from .core.incast import IncastConfig, run_incast

    result = run_incast(IncastConfig(
        num_senders=args.senders, nic_type=args.nic,
        num_msgs_per_sender=args.messages, message_size=args.size,
        ecn_threshold_kb=args.ecn_threshold_kb,
        receiver_queue_bytes=args.queue_kb * 1024 if args.queue_kb else None,
        seed=args.seed,
    ))
    drops = sum(p["tx_drops"] for p in result.switch_counters["ports"].values())
    print(f"{args.senders} senders ({args.nic}) -> 1 receiver")
    print(f"aggregate goodput: {result.aggregate_goodput_bps / 1e9:.1f} Gbps")
    print(f"fairness (Jain):   {result.fairness:.2f}")
    print(f"retransmitted:     {sum(result.per_sender_retransmits.values())}")
    print(f"queue ECN marks:   {result.switch_counters['ecn_marked_by_queue']}")
    print(f"switch drops:      {drops}")
    print(f"capture integrity: {'PASS' if result.integrity.ok else 'FAIL'}")
    return 0


def cmd_nics(_args: argparse.Namespace) -> int:
    print(f"{'name':<8s}{'vendor':<12s}{'speed':<9s}behaviour notes")
    print("-" * 70)
    for profile in PROFILES.values():
        notes = []
        if not profile.ets_work_conserving:
            notes.append("non-work-conserving ETS")
        if profile.pipeline_stall_read_loss_threshold is not None:
            notes.append("noisy-neighbor stall")
        if profile.migreq_initial == 0:
            notes.append("sends MigReq=0")
        if profile.migreq_zero_slow_path:
            notes.append("MigReq=0 slow path")
        if profile.stuck_counters:
            notes.append(f"stuck: {','.join(sorted(profile.stuck_counters))}")
        if profile.hidden_cnp_interval_ns:
            notes.append(f"hidden CNP interval "
                         f"{profile.hidden_cnp_interval_ns // 1000}us")
        print(f"{profile.name:<8s}{profile.vendor:<12s}"
              f"{profile.default_bandwidth_gbps:>4.0f}Gbps  "
              + ("; ".join(notes) if notes else "spec-compliant"))
    return 0


def cmd_example_config(_args: argparse.Namespace) -> int:
    print(json.dumps(_EXAMPLE_CONFIG, indent=2))
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    from .telemetry.report import render_summary

    if not os.path.isdir(args.dir):
        print(f"error: no such telemetry directory: {args.dir}",
              file=sys.stderr)
        return 2
    try:
        print(render_summary(args.dir))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lumina (SIGCOMM 2023) reproduction: test hardware "
                    "network stack models in simulation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one test from a JSON config")
    run_p.add_argument("config")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--output", "-o", help="write the report to a file")
    run_p.add_argument("--telemetry", metavar="DIR", default=None,
                       help="collect runtime telemetry and export to DIR")
    run_p.add_argument("--measurement-faults", metavar="SCENARIO",
                       default=None, choices=_fault_scenario_names(),
                       help="inject measurement-plane faults "
                            "(capture stress test); one of: "
                            + ", ".join(_fault_scenario_names()))
    run_p.set_defaults(func=cmd_run)

    fuzz_p = sub.add_parser("fuzz", help="fuzz around a base config")
    fuzz_p.add_argument("config", nargs="?",
                        help="JSON base config (omit when using --target)")
    fuzz_p.add_argument("--target",
                        choices=("general", "noisy-neighbor", "counter-bugs"),
                        help="use a predefined fuzz target instead of a config")
    fuzz_p.add_argument("--nic", default="cx5",
                        help="NIC model for --target runs")
    fuzz_p.add_argument("--iterations", "-n", type=int, default=20)
    fuzz_p.add_argument("--seed", type=int, default=None)
    fuzz_p.add_argument("--threshold", type=float, default=3.0)
    fuzz_p.add_argument("--stop-on-first", action="store_true")
    fuzz_p.add_argument("--workers", type=int, default=1,
                        help="process-pool size for scoring candidates "
                             "(default: 1, in-process)")
    fuzz_p.add_argument("--batch", type=int, default=4,
                        help="candidates generated per pool snapshot; "
                             "fixes the schedule independently of "
                             "--workers (default: 4)")
    fuzz_p.add_argument("--telemetry", metavar="DIR", default=None,
                        help="collect runtime telemetry and export to DIR")
    fuzz_p.set_defaults(func=cmd_fuzz)

    suite_p = sub.add_parser(
        "suite", help="run the conformance battery against a NIC model")
    suite_p.add_argument("nic")
    suite_p.add_argument("--seed", type=int, default=77)
    suite_p.add_argument("--checks", nargs="*",
                         help="subset of checks to run (default: all)")
    suite_p.add_argument("--workers", type=int, default=1,
                         help="process-pool size for running checks")
    suite_p.add_argument("--telemetry", metavar="DIR", default=None,
                         help="collect runtime telemetry and export to DIR")
    suite_p.add_argument("--measurement-faults", metavar="SCENARIO",
                         default=None, choices=_fault_scenario_names(),
                         help="run every check under injected capture "
                              "faults; one of: "
                              + ", ".join(_fault_scenario_names()))
    suite_p.set_defaults(func=cmd_suite)

    sweep_p = sub.add_parser(
        "sweep", help="benchmark sweep: one workload across NICs x seeds")
    sweep_p.add_argument("config", nargs="?",
                         help="JSON base config (default: built-in workload)")
    sweep_p.add_argument("--nics", default="cx4,cx5,cx6,e810",
                         help="comma-separated NIC models")
    sweep_p.add_argument("--seeds", type=int, default=1,
                         help="seeds per NIC (base-seed, base-seed+1, ...)")
    sweep_p.add_argument("--base-seed", type=int, default=1)
    sweep_p.add_argument("--verb", default="write",
                         help="verb for the built-in workload")
    sweep_p.add_argument("--connections", type=int, default=2)
    sweep_p.add_argument("--messages", type=int, default=4)
    sweep_p.add_argument("--size", type=int, default=20480)
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="process-pool size for the sweep")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-run timeout in seconds")
    sweep_p.add_argument("--telemetry", metavar="DIR", default=None,
                         help="collect runtime telemetry and export to DIR")
    sweep_p.set_defaults(func=cmd_sweep)

    incast_p = sub.add_parser("incast",
                              help="run an N-to-1 incast workload")
    incast_p.add_argument("--senders", type=int, default=4)
    incast_p.add_argument("--nic", default="cx6")
    incast_p.add_argument("--messages", type=int, default=8)
    incast_p.add_argument("--size", type=int, default=256 * 1024)
    incast_p.add_argument("--ecn-threshold-kb", type=int, default=None)
    incast_p.add_argument("--queue-kb", type=int, default=None,
                          help="bottleneck buffer (default: deep)")
    incast_p.add_argument("--seed", type=int, default=55)
    incast_p.add_argument("--telemetry", metavar="DIR", default=None,
                          help="collect runtime telemetry and export to DIR")
    incast_p.set_defaults(func=cmd_incast)

    nics_p = sub.add_parser("nics", help="list NIC behaviour profiles")
    nics_p.set_defaults(func=cmd_nics)

    example_p = sub.add_parser("example-config",
                               help="print a sample JSON config")
    example_p.set_defaults(func=cmd_example_config)

    telreport_p = sub.add_parser(
        "telemetry-report",
        help="summarize a --telemetry output directory")
    telreport_p.add_argument("dir")
    telreport_p.set_defaults(func=cmd_telemetry_report)

    sub.add_parser(
        "lint",
        help="determinism & spawn-safety static analysis "
             "(all arguments forwarded; try: lint --help)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``lint`` owns its whole argument tail (argparse.REMAINDER cannot
    # forward leading ``--flags``), so dispatch before parsing.
    if argv and argv[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir is None:
        return args.func(args)
    from .telemetry import runtime as telemetry

    telemetry.enable(telemetry_dir)
    try:
        status = args.func(args)
        session = telemetry.active()
        if session is not None:
            paths = session.export()
            names = sorted(p.rsplit("/", 1)[-1] for p in paths.values())
            print(f"telemetry written to {telemetry_dir} ({', '.join(names)})")
        return status
    finally:
        telemetry.disable()


if __name__ == "__main__":
    sys.exit(main())
