"""Result collection (§3.5, Table 1).

The orchestrator gathers four artefacts after a run — dumped packets,
network-stack counters, the traffic generator log, and switch counters
— and wraps them with the reconstructed trace and integrity verdict in
a single :class:`TestResult` the analyzers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import TestConfig
from .intent import QpMetadata
from .trace import IntegrityReport, PacketTrace
from .trafficgen import TrafficGenLog

__all__ = ["HostCounters", "AttemptRecord", "TestResult"]


@dataclass
class AttemptRecord:
    """One orchestrator attempt at producing a trustworthy capture.

    §3.5's rule is that an integrity failure invalidates the *run*, not
    the test: the orchestrator retries (bounded, with backoff) and every
    attempt — including the final one — is recorded here so a retried
    result is never mistaken for a first-try success.
    """

    attempt: int                 # 1-based
    integrity: IntegrityReport
    trace_packets: int
    dumper_discards: int
    duration_ns: int
    #: Simulated-time backoff waited *after* this attempt (0 on the last).
    backoff_ns: int = 0

    @property
    def ok(self) -> bool:
        return self.integrity.ok


@dataclass
class HostCounters:
    """One host's NIC counters, in both canonical and vendor naming."""

    host: str
    nic_type: str
    canonical: Dict[str, int]
    vendor: Dict[str, int]
    #: Ground-truth values swallowed by stuck counters (simulation-only
    #: visibility; the counter analyzer must work without this).
    suppressed: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.canonical[name]


@dataclass
class TestResult:
    """Everything one Lumina run produced."""

    # Not a pytest class, despite the name.
    __test__ = False

    config: TestConfig
    metadata: List[QpMetadata]
    trace: PacketTrace
    integrity: IntegrityReport
    requester_counters: HostCounters
    responder_counters: HostCounters
    traffic_log: TrafficGenLog
    switch_counters: Dict[str, object]
    duration_ns: int
    dumper_discards: int = 0
    #: Every orchestrator attempt, in order; empty list only for results
    #: constructed outside the orchestrator (tests, hand-built fixtures).
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: Per-server, per-core dumper stats from the final attempt.
    dumper_core_stats: Dict[str, List[dict]] = field(default_factory=dict)
    #: Micro-behavior coverage snapshot (``CoverageMap.snapshot()`` rows)
    #: for this run; None when coverage was disabled.
    coverage: Optional[List[list]] = None
    #: Flight-recorder timeline of the final attempt; attached only when
    #: the run failed integrity or needed an integrity-driven retry.
    flight_record: Optional[List[list]] = None

    @property
    def ok(self) -> bool:
        """A valid test: complete trace and no aborted connections."""
        return self.integrity.ok and self.traffic_log.aborted_qps == 0

    @property
    def attempts_used(self) -> int:
        return len(self.attempts) if self.attempts else 1

    @property
    def retried(self) -> bool:
        return self.attempts_used > 1

    def counters_for(self, host: str) -> HostCounters:
        if host == "requester":
            return self.requester_counters
        if host == "responder":
            return self.responder_counters
        raise KeyError(f"unknown host {host!r}")

    def metadata_for(self, qp_index: int) -> QpMetadata:
        for meta in self.metadata:
            if meta.index == qp_index:
                return meta
        raise KeyError(f"no connection with index {qp_index}")

    def summary(self) -> str:
        lines = [
            f"test seed={self.config.seed} verb={self.config.traffic.rdma_verb} "
            f"connections={self.config.traffic.num_connections}",
            self.integrity.summary(),
            f"goodput={self.traffic_log.total_goodput_bps() / 1e9:.2f} Gbps "
            f"avg_mct={(self.traffic_log.avg_mct_ns or 0) / 1e3:.1f} us "
            f"aborted_qps={self.traffic_log.aborted_qps}",
        ]
        return "\n".join(lines)
