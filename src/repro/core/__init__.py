"""Lumina core: configuration, orchestration, tracing and analysis."""

from .config import (
    ConfigError,
    DataPacketEvent,
    DumperPoolConfig,
    EtsConfig,
    EtsQueueSpec,
    HostConfig,
    PeriodicDropIntent,
    PeriodicEcnIntent,
    PeriodicIntent,
    RoceParameters,
    SwitchConfig,
    TestConfig,
    TrafficConfig,
)
from .intent import QpMetadata, expand_periodic_events, translate_events
from .incast import IncastConfig, IncastResult, jain_fairness, run_incast
from .orchestrator import Orchestrator, run_test
from .report import render_report
from .suite import CheckResult, Scorecard, run_conformance_suite
from .results import HostCounters, TestResult
from .testbed import Host, Testbed, build_testbed
from .trace import (
    IntegrityReport,
    PacketTrace,
    TracePacket,
    check_integrity,
    format_trace,
    reconstruct_trace,
)
from .trafficgen import MessageRecord, QpStats, TrafficGenLog, TrafficSession

__all__ = [
    "ConfigError",
    "DataPacketEvent",
    "DumperPoolConfig",
    "EtsConfig",
    "EtsQueueSpec",
    "HostConfig",
    "PeriodicDropIntent",
    "PeriodicEcnIntent",
    "PeriodicIntent",
    "RoceParameters",
    "SwitchConfig",
    "TestConfig",
    "TrafficConfig",
    "QpMetadata",
    "expand_periodic_events",
    "translate_events",
    "IncastConfig",
    "IncastResult",
    "jain_fairness",
    "run_incast",
    "Orchestrator",
    "run_test",
    "render_report",
    "CheckResult",
    "Scorecard",
    "run_conformance_suite",
    "format_trace",
    "HostCounters",
    "TestResult",
    "Host",
    "Testbed",
    "build_testbed",
    "IntegrityReport",
    "PacketTrace",
    "TracePacket",
    "check_integrity",
    "reconstruct_trace",
    "MessageRecord",
    "QpStats",
    "TrafficGenLog",
    "TrafficSession",
]
