"""Testbed builder: two hosts + event injector + dumper pool (Fig. 1).

Translates a :class:`~repro.core.config.TestConfig` into wired simulation
objects: RNICs built from their vendor profiles, a switch with forwarding
entries for every host IP (multi-GID hosts get one entry per IP), and a
dumper pool attached to the mirror block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from typing import Optional

from ..dumper.pool import DumperPool
from ..faults.injector import MeasurementFaultInjector, build_injector
from ..net.addressing import parse_cidr
from ..net.link import connect, gbps
from ..rdma.nic import RdmaNic
from ..rdma.profiles import get_profile
from ..sim.engine import Simulator
from ..sim.rng import SimRandom
from ..switch.controlplane import SwitchController
from ..switch.pipeline import TofinoSwitch
from .config import HostConfig, TestConfig

__all__ = ["Host", "Testbed", "build_testbed"]


@dataclass
class Host:
    """One traffic-generation host: a NIC plus its configured IPs."""

    name: str
    nic: RdmaNic
    ips: List[int] = field(default_factory=list)

    @property
    def primary_ip(self) -> int:
        return self.ips[0]


@dataclass
class Testbed:
    """All wired components of one test run."""

    sim: Simulator
    rng: SimRandom
    requester: Host
    responder: Host
    switch: TofinoSwitch
    switch_controller: SwitchController
    dumpers: DumperPool
    config: TestConfig
    #: Measurement-plane fault injector, when armed for this attempt.
    fault_injector: Optional[MeasurementFaultInjector] = None
    #: 1-based attempt number this testbed was built for.
    attempt: int = 1


def _build_host(sim: Simulator, rng: SimRandom, name: str,
                config: HostConfig, mtu: int,
                adaptive_retrans: bool) -> Host:
    profile = get_profile(config.nic_type)
    nic = RdmaNic(
        sim, name, profile, rng,
        bandwidth_gbps=config.bandwidth_gbps,
        mtu=mtu,
        min_time_between_cnps_ns=config.roce.min_time_between_cnps_us * 1_000,
        dcqcn_rp_enable=config.roce.dcqcn_rp_enable,
        dcqcn_np_enable=config.roce.dcqcn_np_enable,
        adaptive_retrans=adaptive_retrans,
    )
    ips = [parse_cidr(cidr)[0] for cidr in config.ip_list]
    nic.ip_list = list(ips)
    return Host(name=name, nic=nic, ips=list(ips))


def build_testbed(config: TestConfig, attempt: int = 1) -> Testbed:
    """Construct and wire every component of the Fig. 1 topology.

    ``attempt`` is the orchestrator's 1-based retry counter. The first
    attempt uses the plain seed namespace (bit-for-bit identical to the
    pre-retry behaviour); later attempts derive an attempt-specific RNG
    stream so a re-run explores different stochastic latencies while
    remaining fully reproducible.
    """
    sim = Simulator()
    if attempt == 1:
        rng = SimRandom(config.seed)
    else:
        rng = SimRandom(config.seed, f"root/attempt{attempt}")

    requester = _build_host(sim, rng, "requester", config.requester,
                            config.traffic.mtu,
                            config.requester.roce.adaptive_retrans)
    responder = _build_host(sim, rng, "responder", config.responder,
                            config.traffic.mtu,
                            config.responder.roce.adaptive_retrans)

    injector = build_injector(sim, config.measurement_faults,
                              rng.child("measurement-faults"), attempt)

    switch = TofinoSwitch(
        sim, "tofino", rng,
        event_injection=config.switch.event_injection,
        mirroring=config.switch.mirroring,
        randomize_mirror_udp_port=config.switch.randomize_mirror_udp_port,
        ecn_threshold_bytes=(config.switch.ecn_threshold_kb * 1024
                             if config.switch.ecn_threshold_kb else None),
        mirror_faults=injector,
    )
    controller = SwitchController(switch)

    # Host <-> switch links at the host's port speed.
    delay = config.switch.link_delay_ns
    for host in (requester, responder):
        sw_port = switch.add_host_port(host.nic.port.bandwidth_bps,
                                       name=f"tofino->{host.name}")
        connect(sw_port, host.nic.port, propagation_delay_ns=delay)
        for ip in host.ips:
            switch.set_forwarding(ip, sw_port)

    # Every host resolves every IP (the switch forwards on IP anyway;
    # MACs only matter because mirroring reuses the MAC fields).
    arp: Dict[int, int] = {}
    for host in (requester, responder):
        for ip in host.ips:
            arp[ip] = host.nic.mac
    requester.nic.arp.update(arp)
    responder.nic.arp.update(arp)

    # Dumper pool sized to the fastest host port unless overridden.
    dumpers = DumperPool(sim)
    pool_bw = config.dumpers.bandwidth_gbps
    host_bw = max(requester.nic.port.bandwidth_bps, responder.nic.port.bandwidth_bps)
    ring_slots = config.dumpers.ring_slots
    faults = config.measurement_faults
    if (faults is not None and faults.ring_slots is not None
            and faults.active_on(attempt)):
        ring_slots = faults.ring_slots
    for _ in range(config.dumpers.num_servers):
        dumpers.add_server(
            switch,
            bandwidth_bps=gbps(pool_bw) if pool_bw else host_bw,
            num_cores=config.dumpers.cores_per_server,
            core_service_ns=config.dumpers.core_service_ns,
            ring_slots=ring_slots,
            propagation_delay_ns=delay,
        )

    return Testbed(
        sim=sim, rng=rng, requester=requester, responder=responder,
        switch=switch, switch_controller=controller, dumpers=dumpers,
        config=config, fault_injector=injector, attempt=attempt,
    )
