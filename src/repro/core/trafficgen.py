"""Traffic generation (§3.2): requester/responder apps over the RNIC model.

The session object owns both hosts' QPs, performs the metadata exchange
(the TCP side-channel of the real tool is control-plane state here),
and runs the requester as a simulation process: posting work requests
with a bounded per-QP depth, optionally barrier-synchronising rounds
across QPs, and recording a completion log with per-message timings —
the "traffic generator log" of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rdma.ets import EtsQueueConfig
from ..rdma.qp import QueuePair
from ..rdma.verbs import (
    CompletionQueue,
    MemoryRegion,
    Verb,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)
from ..sim.process import Process, Signal, spawn
from .config import ConfigError, TrafficConfig
from .intent import QpMetadata
from .testbed import Testbed

__all__ = ["MessageRecord", "QpStats", "TrafficGenLog", "TrafficSession"]

#: Base virtual address of the responder's registered region.
_RESPONDER_MR_BASE = 0x10_0000_0000


@dataclass
class MessageRecord:
    """One message's lifecycle, recorded by the requester."""

    qp_index: int           # 1-based connection index
    msg_index: int          # 0-based message number within the QP
    wr_id: int
    verb: Verb
    size: int
    posted_at: int = 0
    completed_at: Optional[int] = None
    status: Optional[WcStatus] = None

    @property
    def completion_time_ns(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.posted_at

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS


@dataclass
class QpStats:
    """Per-connection application metrics (goodput, MCT)."""

    qp_index: int
    messages: List[MessageRecord] = field(default_factory=list)

    @property
    def completed_messages(self) -> List[MessageRecord]:
        return [m for m in self.messages if m.ok]

    @property
    def bytes_completed(self) -> int:
        return sum(m.size for m in self.completed_messages)

    @property
    def avg_mct_ns(self) -> Optional[float]:
        times = [m.completion_time_ns for m in self.completed_messages
                 if m.completion_time_ns is not None]
        if not times:
            return None
        return sum(times) / len(times)

    @property
    def max_mct_ns(self) -> Optional[int]:
        times = [m.completion_time_ns for m in self.completed_messages
                 if m.completion_time_ns is not None]
        return max(times) if times else None

    def goodput_bps(self) -> Optional[float]:
        done = self.completed_messages
        if not done:
            return None
        start = min(m.posted_at for m in done)
        end = max(m.completed_at for m in done if m.completed_at is not None)
        if end <= start:
            return None
        return self.bytes_completed * 8 / (end - start) * 1e9


@dataclass
class TrafficGenLog:
    """The requester's application log (one entry of Table 1)."""

    per_qp: List[QpStats]
    started_at: int = 0
    finished_at: int = 0
    aborted_qps: int = 0

    @property
    def all_messages(self) -> List[MessageRecord]:
        return [m for qp in self.per_qp for m in qp.messages]

    @property
    def total_bytes_completed(self) -> int:
        return sum(qp.bytes_completed for qp in self.per_qp)

    def total_goodput_bps(self) -> float:
        duration = self.finished_at - self.started_at
        if duration <= 0:
            return 0.0
        return self.total_bytes_completed * 8 / duration * 1e9

    @property
    def avg_mct_ns(self) -> Optional[float]:
        times = [m.completion_time_ns for m in self.all_messages
                 if m.ok and m.completion_time_ns is not None]
        if not times:
            return None
        return sum(times) / len(times)


class TrafficSession:
    """Sets up QPs on both hosts and drives the requester's workload."""

    def __init__(self, testbed: Testbed, traffic: TrafficConfig):
        self.testbed = testbed
        self.sim = testbed.sim
        self.traffic = traffic
        self.requester_cq = CompletionQueue(capacity=65536)
        self.responder_cq = CompletionQueue(capacity=65536)
        self.requester_qps: List[QueuePair] = []
        self.responder_qps: List[QueuePair] = []
        self.metadata: List[QpMetadata] = []
        # The rkey goes into RETH headers on the wire, so it must be
        # derived from the run seed (a global allocator would make
        # traces differ between runs inside one process).
        self.responder_mr = MemoryRegion(
            address=_RESPONDER_MR_BASE,
            length=max(traffic.message_size, 1) * 4,
            rkey=testbed.rng.child("responder-mr").randint(0x1000, 0xFFFFFFFF),
        )
        self.log = TrafficGenLog(per_qp=[])
        self._records_by_wr: Dict[int, MessageRecord] = {}
        self._round_signal: Optional[Signal] = None
        self._round_remaining = 0
        self._inflight: Dict[int, int] = {}
        self._completion_signal: Optional[Signal] = None
        self._create_qps()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _pick_ip(self, ips: List[int], index: int) -> int:
        if self.traffic.multi_gid and len(ips) > 1:
            return ips[index % len(ips)]
        return ips[0]

    def _create_qps(self) -> None:
        requester, responder = self.testbed.requester, self.testbed.responder
        verbs = self.traffic.verbs
        for i in range(self.traffic.num_connections):
            req_ip = self._pick_ip(requester.ips, i)
            resp_ip = self._pick_ip(responder.ips, i)
            req_qp = requester.nic.create_qp(self.requester_cq, req_ip,
                                             mtu=self.traffic.mtu)
            resp_qp = responder.nic.create_qp(self.responder_cq, resp_ip,
                                              mtu=self.traffic.mtu)
            self.requester_qps.append(req_qp)
            self.responder_qps.append(resp_qp)
            self.metadata.append(QpMetadata(
                index=i + 1,
                requester_ip=req_ip,
                requester_qpn=req_qp.qp_num,
                requester_ipsn=req_qp.initial_psn,
                responder_ip=resp_ip,
                responder_qpn=resp_qp.qp_num,
                responder_ipsn=resp_qp.initial_psn,
                verb=verbs[0],
            ))
            self.log.per_qp.append(QpStats(qp_index=i + 1))

    def connect_all(self) -> None:
        """The §3.2 metadata exchange: move every QP pair to RTS."""
        t = self.traffic
        for req_qp, resp_qp, meta in zip(self.requester_qps, self.responder_qps,
                                         self.metadata):
            req_qp.connect(meta.responder_ip, meta.responder_qpn,
                           meta.responder_ipsn,
                           timeout_cfg=t.min_retransmit_timeout,
                           retry_cnt=t.max_retransmit_retry)
            resp_qp.connect(meta.requester_ip, meta.requester_qpn,
                            meta.requester_ipsn,
                            timeout_cfg=t.min_retransmit_timeout,
                            retry_cnt=t.max_retransmit_retry)

    def configure_ets(self) -> None:
        """Apply the ETS queue layout on the data-sending NIC (§6.2.1)."""
        ets = self.traffic.ets
        if ets is None or not ets.queues:
            return
        data_sender = (self.testbed.responder if self.traffic.verbs[0].data_from_responder
                       else self.testbed.requester)
        configs = [
            EtsQueueConfig(index=q.index,
                           weight=(q.weight_percent / 100.0) if not q.strict_priority else 0.0,
                           strict_priority=q.strict_priority)
            for q in ets.queues
        ]
        data_sender.nic.configure_ets(configs)
        sender_qps = (self.responder_qps if self.traffic.verbs[0].data_from_responder
                      else self.requester_qps)
        for rel_qpn, queue_index in ets.qp_to_queue.items():
            if not 1 <= rel_qpn <= len(sender_qps):
                raise ConfigError(f"ETS mapping references connection {rel_qpn}")
            data_sender.nic.ets.assign(sender_qps[rel_qpn - 1], queue_index)

    # ------------------------------------------------------------------
    # Requester workload
    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the requester process; returns its handle."""
        self.requester_cq.on_completion(self._on_completion)
        self.log.started_at = self.sim.now
        generator = (self._run_barrier() if self.traffic.barrier_sync
                     else self._run_windowed())
        return spawn(self.sim, generator, name="traffic-requester")

    def _verb_for(self, msg_index: int) -> Verb:
        verbs = self.traffic.verbs
        return verbs[msg_index % len(verbs)]

    def _post_message(self, qp_index: int, msg_index: int) -> None:
        qp = self.requester_qps[qp_index]
        verb = self._verb_for(msg_index)
        wr = WorkRequest(
            verb=verb,
            length=self.traffic.message_size,
            remote_address=self.responder_mr.address,
            remote_rkey=self.responder_mr.rkey,
        )
        record = MessageRecord(
            qp_index=qp_index + 1, msg_index=msg_index, wr_id=wr.wr_id,
            verb=verb, size=wr.length, posted_at=self.sim.now,
        )
        self._records_by_wr[wr.wr_id] = record
        self.log.per_qp[qp_index].messages.append(record)
        qp.post_send(wr)

    def _on_completion(self, wc: WorkCompletion) -> None:
        record = self._records_by_wr.pop(wc.wr_id, None)
        if record is None:
            return
        record.completed_at = wc.completed_at
        record.status = wc.status
        if self._round_signal is not None:
            self._round_remaining -= 1
            if self._round_remaining == 0:
                signal, self._round_signal = self._round_signal, None
                signal.fire()
        qp_slot = record.qp_index - 1
        if qp_slot in self._inflight:
            self._inflight[qp_slot] -= 1
            self._maybe_refill(qp_slot)

    # --- barrier-synchronised mode (Listing 2: barrier-sync) ------------
    def _run_barrier(self):
        t = self.traffic
        for msg_index in range(t.num_msgs_per_qp):
            live = [i for i, qp in enumerate(self.requester_qps)
                    if qp.state.value != "error"]
            if not live:
                break
            self._round_remaining = len(live)
            self._round_signal = Signal(self.sim)
            signal = self._round_signal
            for qp_index in live:
                self._post_message(qp_index, msg_index)
            yield signal
        self._finish()

    # --- free-running windowed mode --------------------------------------
    def _run_windowed(self):
        t = self.traffic
        self._remaining = {i: t.num_msgs_per_qp for i in range(len(self.requester_qps))}
        self._next_msg = {i: 0 for i in range(len(self.requester_qps))}
        self._inflight = {i: 0 for i in range(len(self.requester_qps))}
        self._completion_signal = Signal(self.sim)
        for qp_index in range(len(self.requester_qps)):
            self._maybe_refill(qp_index)
        yield self._completion_signal
        self._finish()

    def _maybe_refill(self, qp_index: int) -> None:
        if self._completion_signal is None:
            return
        qp = self.requester_qps[qp_index]
        while (self._remaining.get(qp_index, 0) > 0
               and self._inflight[qp_index] < self.traffic.tx_depth
               and qp.state.value != "error"):
            self._remaining[qp_index] -= 1
            self._inflight[qp_index] += 1
            self._post_message(qp_index, self._next_msg[qp_index])
            self._next_msg[qp_index] += 1
        if all(r == 0 for r in self._remaining.values()) and \
                all(c == 0 for c in self._inflight.values()):
            self._completion_signal.fire()
        elif all(qp.state.value == "error" for qp in self.requester_qps):
            self._completion_signal.fire()

    def _finish(self) -> None:
        self.log.finished_at = self.sim.now
        self.log.aborted_qps = sum(
            1 for qp in self.requester_qps if qp.state.value == "error"
        )
