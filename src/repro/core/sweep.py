"""Benchmark sweep: one workload executed across a NIC × seed grid.

Extracted from the CLI so the grid build, store-replay logic and report
rendering are one code path for ``python -m repro sweep``, the campaign
service and the api facade. Everything here is deterministic — the
wall-clock throughput line the CLI prints is computed by the caller,
never by this module (it sits inside repro-lint's DET001 scope).

The sweep *payload* is a plain JSON-able dict (the ``sweep`` JobSpec
payload shape)::

    {"config": <TestConfig dict or None>,   # None: built-in workload
     "nics": ["cx4", "cx5", ...],
     "seeds": 2,                            # seeds per NIC
     "base-seed": 1,
     "verb": "write", "connections": 2, "messages": 4, "size": 20480,
     "faults": <scenario name or None>,
     "timeout": <per-run seconds or None>}
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # avoid a runtime core -> exec/store import cycle
    from ..exec.runner import TaskOutcome
    from ..store.index import CampaignStore

from .config import TestConfig

__all__ = ["build_grid", "run_sweep", "render_sweep_report",
           "SweepExecution"]


def build_grid(payload: Dict) -> Tuple[List[TestConfig],
                                       List[Tuple[str, int]]]:
    """``(configs, cells)`` for one sweep payload, in grid order.

    ``cells`` pairs each config with its ``(nic, seed)`` coordinates.
    A base config (when given) is re-seeded per cell and has both
    hosts' NIC types replaced; otherwise the built-in workload is
    generated from the payload's traffic knobs.
    """
    from dataclasses import replace

    scenario = None
    if payload.get("faults"):
        from ..faults import get_scenario

        scenario = get_scenario(payload["faults"])
    configs: List[TestConfig] = []
    cells: List[Tuple[str, int]] = []
    for nic in payload["nics"]:
        for offset in range(payload["seeds"]):
            seed = payload["base-seed"] + offset
            if payload.get("config"):
                data = dict(payload["config"])
                data["seed"] = seed
                base = TestConfig.from_dict(data)
                config = replace(
                    base,
                    requester=replace(base.requester, nic_type=nic),
                    responder=replace(base.responder, nic_type=nic),
                )
            else:
                from .. import quick_config

                config = quick_config(nic=nic, verb=payload["verb"],
                                      num_connections=payload["connections"],
                                      num_msgs=payload["messages"],
                                      message_size=payload["size"],
                                      seed=seed)
            if scenario is not None:
                config = scenario.apply(config)
            configs.append(config)
            cells.append((nic, seed))
    return configs, cells


class SweepExecution:
    """The outcome of one executed grid (see :func:`run_sweep`)."""

    def __init__(self, cells: List[Tuple[str, int]],
                 outcomes: List["TaskOutcome"],
                 executed: int, crashes: int):
        self.cells = cells
        self.outcomes = outcomes
        #: Cells actually run (grid size minus store replays).
        self.executed = executed
        self.crashes = crashes


def run_sweep(payload: Dict, workers: int = 1,
              store: Optional["CampaignStore"] = None) -> SweepExecution:
    """Execute one sweep grid, replaying cached cells from ``store``.

    Cached cells short-circuit without touching the process pool; a
    fully-cached grid therefore spawns no workers at all (the runner is
    never even constructed). Fresh summaries are stored as they land,
    so a repeated sweep replays every cell.
    """
    configs, cells = build_grid(payload)

    from ..coverage import runtime as coverage_runtime
    from ..exec import ParallelRunner, TaskOutcome
    from ..exec.tasks import run_summary_task

    cov = coverage_runtime.active()
    outcomes: List[Optional[TaskOutcome]] = [None] * len(configs)
    fps: List[Optional[str]] = [None] * len(configs)
    pending = list(range(len(configs)))
    if store is not None:
        from ..store.fingerprint import config_fingerprint

        extra = {"coverage": True} if cov is not None else None
        pending = []
        for i, config in enumerate(configs):
            fps[i] = config_fingerprint(config, kind="summary", extra=extra)
            cached = store.get(fps[i])
            if cached is not None:
                outcomes[i] = TaskOutcome(index=i, ok=True, value=cached,
                                          cached=True)
            else:
                pending.append(i)

    crashes = 0
    if pending:
        with ParallelRunner(run_summary_task, workers=workers,
                            task_timeout_s=payload.get("timeout")) as runner:
            fresh = runner.map([{"config": configs[i]} for i in pending])
        crashes = runner.stats.worker_crashes
        for i, outcome in zip(pending, fresh):
            outcomes[i] = TaskOutcome(index=i, ok=outcome.ok,
                                      value=outcome.value,
                                      error=outcome.error,
                                      attempts=outcome.attempts,
                                      ran_in_process=outcome.ran_in_process)
            if store is not None and outcome.ok:
                store.put(fps[i], "summary", outcome.value)

    if cov is not None:
        # Summaries carry each run's coverage; fold in cell order. An
        # in-process (fallback or workers=1) run already merged via
        # run_test, so only pool-executed and cached cells fold here.
        for outcome in outcomes:
            if (outcome is not None and outcome.ok
                    and not outcome.ran_in_process
                    and isinstance(outcome.value, dict)
                    and outcome.value.get("coverage")):
                cov.merge_snapshot(outcome.value["coverage"])

    return SweepExecution(cells, outcomes, executed=len(pending),
                          crashes=crashes)


def render_sweep_report(cells: List[Tuple[str, int]],
                        outcomes: List) -> Tuple[str, int]:
    """(deterministic report text, failure count) for a finished grid."""
    lines = [f"{'nic':<6s}{'seed':>6s}{'ok':>5s}{'mct_us':>10s}"
             f"{'retrans':>9s}{'timeouts':>10s}{'sim_ms':>9s}",
             "-" * 55]
    failures = 0
    for (nic, seed), outcome in zip(cells, outcomes):
        if not outcome.ok:
            failures += 1
            lines.append(f"{nic:<6s}{seed:>6d}  ERR  {outcome.error}")
            continue
        s = outcome.value
        if not s["ok"]:
            failures += 1
        lines.append(f"{nic:<6s}{seed:>6d}{'yes' if s['ok'] else 'NO':>5s}"
                     f"{s['avg_mct_us']:>10.1f}{s['retransmitted']:>9d}"
                     f"{s['timeouts']:>10d}{s['duration_ns'] / 1e6:>9.2f}")
    lines.append("-" * 55)
    lines.append(f"{len(cells)} runs, {failures} failure(s)")
    return "\n".join(lines) + "\n", failures
