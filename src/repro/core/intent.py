"""Intent translation: relative events → match-action entries (Fig. 2).

The traffic generators share runtime metadata (QPNs and initial PSNs
are random per run) over the control plane; this module combines that
metadata with the user's intent-level events to compute the exact
table entries the event injector installs. This is the *stateless*
design the paper argues for: the switch never has to learn QPs in the
data plane.

Key facts the translation relies on:

* Data packets for Send/Write flow requester → responder and carry
  ``dstQPN = responder QPN``; their PSNs start at the **requester's**
  initial PSN (Fig. 2: IPSN 1001, 4th packet ⇒ PSN 1004).
* For Read, data packets are the *responses*, flowing responder →
  requester with ``dstQPN = requester QPN`` — but response PSNs also
  live in the requester's PSN space (IB read responses reuse the
  request's PSN range), so the same relative-PSN arithmetic applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..rdma.verbs import Verb
from ..switch.events import EventEntry
from .config import ConfigError, DataPacketEvent, PeriodicIntent, TrafficConfig

__all__ = ["QpMetadata", "translate_events", "expand_periodic_events"]

_PSN_MASK = 0xFFFFFF


@dataclass(frozen=True)
class QpMetadata:
    """Runtime metadata for one QP connection, as exchanged in §3.2."""

    index: int  # 1-based relative connection number
    requester_ip: int
    requester_qpn: int
    requester_ipsn: int
    responder_ip: int
    responder_qpn: int
    responder_ipsn: int
    verb: Verb

    def data_direction(self) -> tuple:
        """(src_ip, dst_ip, dst_qpn) of the *data* packet stream (§3.3)."""
        if self.verb.data_from_responder:
            return (self.responder_ip, self.requester_ip, self.requester_qpn)
        return (self.requester_ip, self.responder_ip, self.responder_qpn)

    def absolute_data_psn(self, relative_psn: int) -> int:
        """Absolute PSN of the ``relative_psn``-th data packet (1-based)."""
        if relative_psn < 1:
            raise ValueError("relative PSN is 1-based")
        return (self.requester_ipsn + relative_psn - 1) & _PSN_MASK


def translate_events(metadata: Sequence[QpMetadata],
                     events: Sequence[DataPacketEvent]) -> List[EventEntry]:
    """Compute the low-level event-table entries for the user's intents."""
    by_index = {meta.index: meta for meta in metadata}
    entries: List[EventEntry] = []
    for event in events:
        meta = by_index.get(event.qpn)
        if meta is None:
            raise ConfigError(
                f"event targets connection {event.qpn} but only "
                f"{len(metadata)} connections exist"
            )
        src_ip, dst_ip, dst_qpn = meta.data_direction()
        entries.append(EventEntry(
            src_ip=src_ip,
            dst_ip=dst_ip,
            dst_qpn=dst_qpn,
            psn=meta.absolute_data_psn(event.psn),
            iteration=event.iter,
            action=event.type,
            delay_ns=int(event.delay_us * 1_000),
            # Any-round events fire once: "the first time this PSN
            # passes", whichever retransmission round that happens in.
            max_hits=1 if event.iter == 0 else 0,
        ))
    return entries


def expand_periodic_events(traffic: TrafficConfig,
                        intents: Sequence[PeriodicIntent]) -> List[DataPacketEvent]:
    """Expand "mark every Nth packet" intents into individual events.

    Expansion happens against the first-transmission stream (iter 1):
    the §6.2.1 experiments mark one in every 50 packets of QP0 to make
    DCQCN throttle that QP.
    """
    events: List[DataPacketEvent] = []
    total = traffic.packets_per_connection
    for intent in intents:
        psn = intent.start
        while psn <= total:
            events.append(DataPacketEvent(
                qpn=intent.qpn, psn=psn, type=intent.type,
                # Loss/corruption rates use the any-round wildcard so a
                # pattern like "drop every 100th packet" keeps firing
                # even after earlier losses push the stream into higher
                # ITER rounds; ECN marking targets first transmissions,
                # matching the Fig. 10 experiments.
                iter=0 if intent.type in ("drop", "corrupt") else 1))
            psn += intent.period
    return events
