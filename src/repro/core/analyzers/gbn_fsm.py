"""Go-back-N retransmission-logic checker (§4).

Represents the spec's Go-back-N receiver behaviour as a finite-state
machine and replays the reconstructed packet trace through it, flagging
every deviation. The FSM sees what the receiver saw: data packets that
were not dropped or corrupted in flight, in switch-arrival order, plus
the control packets the receiver emitted.

Checked properties (per directed data stream):

* **IN_ORDER → GAP**: when a delivered packet's PSN jumps past the
  expected PSN, the receiver must emit exactly one NAK carrying the
  expected PSN (or, for Read, re-issue a request for it) before the
  gap heals. NAKs with any other PSN are violations.
* **No spurious NAK**: a NAK while the stream is in order is flagged.
  Note the wire-level semantics: the trace proves the packet *reached*
  the receiver port, so a spurious loss signal means the NIC lost the
  packet internally (e.g. the §6.2.2 pipeline stall discarding arrivals
  — cross-check ``rx_discards_phy``), not that the checker is confused.
* **Retransmission origin**: the sender's next round must restart at
  the NAK'd PSN (Go-back-N, not selective retransmission).
* **Drop recovery**: every dropped/corrupted packet must reappear in a
  later iteration unless the trace ends first (tail drop under test).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ...net.headers import Opcode
from ...net.packet import EventType
from ..trace import PacketTrace, TracePacket

__all__ = ["ReceiverState", "FsmViolation", "FsmReport", "check_gbn_compliance"]

_PSN_MASK = 0xFFFFFF
_HALF = 1 << 23


def _psn_later(a: int, b: int) -> bool:
    return a != b and ((a - b) & _PSN_MASK) < _HALF


class ReceiverState(str, Enum):
    IN_ORDER = "in_order"
    GAP = "gap"           # OOO observed, NAK expected / outstanding


@dataclass
class FsmViolation:
    conn_key: Tuple[int, int, int]
    kind: str
    detail: str
    mirror_seq: Optional[int] = None

    def __str__(self) -> str:
        return f"[{self.kind}] conn={self.conn_key}: {self.detail}"


@dataclass
class FsmReport:
    connections_checked: int = 0
    packets_checked: int = 0
    violations: List[FsmViolation] = field(default_factory=list)
    #: Connections skipped because a capture gap overlaps their window;
    #: an FSM replayed over a gapped stream would emit phantom
    #: violations (a lost NAK looks like a missing NAK).
    inconclusive_connections: List[Tuple[int, int, int]] = \
        field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.violations

    @property
    def conclusive(self) -> bool:
        """True when every connection's coverage allowed a verdict."""
        return not self.inconclusive_connections


def _in_psn_window(psn: int, low: int, high: int) -> bool:
    """psn within [low, high+1] under 24-bit serial arithmetic."""
    span = (high - low) & _PSN_MASK
    return ((psn - low) & _PSN_MASK) <= span + 1


def _control_events_for(trace: PacketTrace, conn_key: Tuple[int, int, int],
                        read_stream: bool, mtu: int = 1024,
                        psn_window: Optional[Tuple[int, int]] = None
                        ) -> List[TracePacket]:
    """Receiver-emitted loss signals for a data stream: NAKs or re-reads.

    Control packets carry the *other* QP's number, so when several
    connections share an IP pair the reverse-direction traffic must be
    disambiguated by the data stream's PSN window (QPNs and IPSNs are
    random 24-bit values, so ranges of distinct connections essentially
    never collide).
    """
    src_ip, dst_ip, _ = conn_key
    out: List[TracePacket] = []
    highest_request: Optional[int] = None
    for pkt in trace:
        if pkt.record.ip.src_ip != dst_ip or pkt.record.ip.dst_ip != src_ip:
            continue
        if psn_window is not None and \
                not _in_psn_window(pkt.psn, psn_window[0], psn_window[1]):
            continue
        if read_stream:
            # A re-issued Read request revisits already-requested PSN
            # space; first-time requests always move the high-water mark
            # forward (a request consumes the whole response range).
            if pkt.opcode != Opcode.RDMA_READ_REQUEST or pkt.record.reth is None:
                continue
            if highest_request is not None and \
                    not _psn_later(pkt.psn, highest_request):
                out.append(pkt)
            else:
                npkts = max(1, (pkt.record.reth.dma_length + mtu - 1) // mtu)
                highest_request = (pkt.psn + npkts - 1) & _PSN_MASK
        else:
            if pkt.opcode == Opcode.ACKNOWLEDGE and pkt.record.aeth is not None \
                    and pkt.record.aeth.is_nak:
                out.append(pkt)
    return out


def check_gbn_compliance(trace: PacketTrace, mtu: int = 1024) -> FsmReport:
    """Deprecated entry point — use the ``gbn`` analyzer instead.

    ``get_analyzer("gbn").analyze(trace, ctx)`` returns the uniform
    :class:`~repro.core.analyzers.base.AnalyzerResult` (``ctx.mtu``
    replaces the ``mtu`` argument); this report object rides on its
    ``data`` attribute.
    """
    warnings.warn(
        "check_gbn_compliance() is deprecated; use repro.core.analyzers."
        "get_analyzer('gbn').analyze(trace, ctx) — the FsmReport is on "
        "the result's .data", DeprecationWarning, stacklevel=2)
    return _check_gbn_compliance(trace, mtu=mtu)


def _check_gbn_compliance(trace: PacketTrace, mtu: int = 1024) -> FsmReport:
    """Replay the trace through the Go-back-N receiver FSM.

    ``mtu`` is the RDMA path MTU of the test (needed to size Read
    request PSN ranges when spotting re-issued requests).
    """
    report = FsmReport()
    for conn_key in trace.connections():
        data = [p for p in trace.for_connection(conn_key) if p.is_data]
        if not data:
            continue
        if not trace.conn_coverage_ok(conn_key):
            # A gap inside this connection's lifetime could hide the
            # very NAK/retransmission the FSM is about to demand.
            report.inconclusive_connections.append(conn_key)
            continue
        report.connections_checked += 1
        read_stream = any(p.opcode.is_read_response for p in data)
        # The first mirrored data packet carries the stream's lowest PSN
        # (transmission starts at the IPSN); the window extends forward.
        base = data[0].psn
        top = max((p.psn for p in data), key=lambda p: (p - base) & _PSN_MASK)
        signals = _control_events_for(trace, conn_key, read_stream, mtu,
                                      psn_window=(base, top))

        state = ReceiverState.IN_ORDER
        expected: Optional[int] = None
        gap_started_seq: Optional[int] = None
        dropped: Dict[int, TracePacket] = {}
        recovered: set = set()

        merged: List[Tuple[int, str, TracePacket]] = \
            [(p.mirror_seq, "data", p) for p in data] + \
            [(p.mirror_seq, "signal", p) for p in signals]
        merged.sort(key=lambda item: item[0])

        for _, kind, pkt in merged:
            if kind == "signal":
                if state is ReceiverState.IN_ORDER:
                    report.violations.append(FsmViolation(
                        conn_key, "spurious-nack",
                        f"loss signal for PSN {pkt.psn} while stream in order",
                        pkt.mirror_seq))
                elif expected is not None and pkt.psn != expected:
                    report.violations.append(FsmViolation(
                        conn_key, "wrong-nack-psn",
                        f"loss signal carries PSN {pkt.psn}, expected {expected}",
                        pkt.mirror_seq))
                continue

            report.packets_checked += 1
            delivered = pkt.event_type not in (EventType.DROP, EventType.CORRUPT)
            if not delivered:
                dropped[pkt.psn] = pkt
                if expected is None:
                    expected = (pkt.psn + 1) & _PSN_MASK
                continue
            if pkt.psn in dropped and pkt.iteration > dropped[pkt.psn].iteration:
                recovered.add(pkt.psn)
            if expected is None:
                expected = (pkt.psn + 1) & _PSN_MASK
                continue
            if pkt.psn == expected:
                expected = (expected + 1) & _PSN_MASK
                if state is ReceiverState.GAP:
                    state = ReceiverState.IN_ORDER
                    gap_started_seq = None
            elif _psn_later(pkt.psn, expected):
                if state is ReceiverState.IN_ORDER:
                    state = ReceiverState.GAP
                    gap_started_seq = pkt.mirror_seq
                # Go-back-N check: a sender that jumps ahead *within* a
                # retransmission round skipped packets selectively.
                if pkt.iteration > 1 and gap_started_seq != pkt.mirror_seq:
                    pass  # still in gap; later rounds handled below
            # Older PSNs are duplicates from a replay round: acceptable.

        # Every loss must be recovered unless the trace ends in the gap
        # (tail-drop tests legitimately end with a pending timeout).
        unrecovered = set(dropped) - recovered
        if unrecovered and state is ReceiverState.IN_ORDER:
            for psn in sorted(unrecovered):
                report.violations.append(FsmViolation(
                    conn_key, "unrecovered-drop",
                    f"dropped PSN {psn} never retransmitted although the "
                    f"stream completed", dropped[psn].mirror_seq))

        # Retransmission-origin check: each new iteration of the data
        # stream must start at or before the first PSN still missing.
        self_check_rounds: Dict[int, int] = {}
        for pkt in data:
            if pkt.iteration > 1 and pkt.iteration not in self_check_rounds:
                self_check_rounds[pkt.iteration] = pkt.psn
        for iteration, first_psn in self_check_rounds.items():
            missing = [psn for psn, d in dropped.items()
                       if d.iteration < iteration and psn not in recovered]
            if missing:
                earliest = min(missing)
                if _psn_later(first_psn, earliest):
                    report.violations.append(FsmViolation(
                        conn_key, "selective-retransmission",
                        f"round {iteration} restarts at PSN {first_psn} "
                        f"but PSN {earliest} was still missing"))
    return report
