"""Retransmission performance analyzer (§4, Fig. 5).

Breaks every injected drop into the two phases of Go-back-N recovery:

* **NACK generation** — receiver side: from the moment the first
  packet *after* the gap passes the switch (the receiver is about to
  detect out-of-order arrival) until the NACK passes the switch. For
  Read traffic the "NACK" is the re-issued Read request (§6.1).
* **NACK reaction** — sender side: from the NACK passing the switch
  until the first retransmitted data packet passes the switch.

All timestamps are switch ingress timestamps embedded in the mirrored
packets, so no clock synchronisation is involved; as the paper notes
there is an inherent ±half-RTT deviation versus host-side times.

Drops recovered without a NACK (tail drops) are reported as timeout
retransmissions with the drop→retransmission gap as the latency.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...net.headers import Opcode
from ..trace import PacketTrace, TracePacket

__all__ = ["RetransmissionEvent", "analyze_retransmissions"]


@dataclass
class RetransmissionEvent:
    """Recovery breakdown for one injected drop."""

    conn_key: Tuple[int, int, int]
    dropped_psn: int
    drop_iteration: int
    drop_time_ns: int
    #: First post-gap data packet that actually reached the receiver.
    detect_time_ns: Optional[int] = None
    nack_time_ns: Optional[int] = None
    retrans_time_ns: Optional[int] = None
    #: True when recovery was driven by a NACK / re-issued Read request;
    #: False means a retransmission timeout recovered the loss.
    fast_retransmission: bool = False
    #: False when a capture gap overlaps the recovery window — the NAK
    #: or retransmission may have crossed the switch unseen, so the
    #: timings (and fast_retransmission) cannot be trusted.
    conclusive: bool = True

    @property
    def nack_generation_ns(self) -> Optional[int]:
        """Receiver-side phase of Fig. 5."""
        if self.nack_time_ns is None or self.detect_time_ns is None:
            return None
        return self.nack_time_ns - self.detect_time_ns

    @property
    def nack_reaction_ns(self) -> Optional[int]:
        """Sender-side phase of Fig. 5."""
        if self.retrans_time_ns is None or self.nack_time_ns is None:
            return None
        return self.retrans_time_ns - self.nack_time_ns

    @property
    def total_recovery_ns(self) -> Optional[int]:
        if self.retrans_time_ns is None:
            return None
        return self.retrans_time_ns - self.drop_time_ns

    @property
    def recovered(self) -> bool:
        return self.retrans_time_ns is not None


def _is_read_response_stream(packets: List[TracePacket]) -> bool:
    return any(p.opcode.is_read_response for p in packets if p.is_data)


def _find_nack_for_write(trace: PacketTrace, drop: TracePacket,
                         after_ns: int) -> Optional[TracePacket]:
    """The Go-back-N NAK: reverse direction, AETH NAK, PSN == dropped."""
    src_ip, dst_ip, _ = drop.conn_key
    for pkt in trace.naks():
        if pkt.record.ip.src_ip == dst_ip and pkt.record.ip.dst_ip == src_ip \
                and pkt.psn == drop.psn and pkt.timestamp_ns >= after_ns:
            return pkt
    return None


def _find_nack_for_read(trace: PacketTrace, drop: TracePacket,
                        after_ns: int) -> Optional[TracePacket]:
    """Read's implied NACK: a re-issued Read request for the missing PSN."""
    src_ip, dst_ip, _ = drop.conn_key  # data flows responder -> requester
    for pkt in trace.by_opcode(Opcode.RDMA_READ_REQUEST):
        if pkt.record.ip.src_ip == dst_ip and pkt.record.ip.dst_ip == src_ip \
                and pkt.psn == drop.psn and pkt.timestamp_ns >= after_ns:
            return pkt
    return None


def analyze_retransmissions(trace: PacketTrace) -> List[RetransmissionEvent]:
    """Deprecated entry point — use the ``retransmission`` analyzer.

    ``get_analyzer("retransmission").analyze(trace, ctx)`` returns the
    uniform :class:`~repro.core.analyzers.base.AnalyzerResult`; this
    event list rides on its ``data`` attribute.
    """
    warnings.warn(
        "analyze_retransmissions() is deprecated; use repro.core.analyzers."
        "get_analyzer('retransmission').analyze(trace, ctx) — the event "
        "list is on the result's .data", DeprecationWarning, stacklevel=2)
    return _analyze_retransmissions(trace)


def _analyze_retransmissions(trace: PacketTrace) -> List[RetransmissionEvent]:
    """Breakdown for every drop-injected data packet in the trace."""
    events: List[RetransmissionEvent] = []
    for conn_key in trace.connections():
        conn_packets = trace.for_connection(conn_key)
        data = [p for p in conn_packets if p.is_data]
        if not data:
            continue
        read_stream = _is_read_response_stream(data)
        for drop in (p for p in data if p.was_dropped):
            event = RetransmissionEvent(
                conn_key=conn_key,
                dropped_psn=drop.psn,
                drop_iteration=drop.iteration,
                drop_time_ns=drop.timestamp_ns,
            )
            # Receiver detects the loss when the next data packet that
            # was actually delivered (not itself dropped) arrives.
            for pkt in data:
                if pkt.mirror_seq > drop.mirror_seq and not pkt.was_dropped \
                        and pkt.psn != drop.psn:
                    event.detect_time_ns = pkt.timestamp_ns
                    break
            if event.detect_time_ns is not None:
                finder = _find_nack_for_read if read_stream else _find_nack_for_write
                nack = finder(trace, drop, event.detect_time_ns)
                if nack is not None:
                    event.nack_time_ns = nack.timestamp_ns
                    event.fast_retransmission = True
            # First reappearance of the dropped PSN in a later round.
            for pkt in data:
                if pkt.psn == drop.psn and pkt.iteration > drop.iteration:
                    event.retrans_time_ns = pkt.timestamp_ns
                    break
            if trace.has_gaps:
                # The recovery window runs from the drop to the observed
                # retransmission, or to the end of the trace when the
                # loss appears unrecovered (a gap may hide the proof).
                window_end = event.retrans_time_ns
                if window_end is None:
                    last = trace.packets[-1] if trace.packets else None
                    window_end = last.timestamp_ns if last else drop.timestamp_ns
                event.conclusive = not trace.gaps_overlap_window(
                    drop.timestamp_ns, window_end)
            events.append(event)
    return events
