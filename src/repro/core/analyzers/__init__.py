"""Built-in analyzers of the Lumina test suite (§4).

Two tiers live here:

* the **analyzer protocol** (:mod:`.base`, :mod:`.registry`) — every
  analyzer is ``name`` + ``analyze(trace, ctx) -> AnalyzerResult``
  with a uniform trichotomous outcome, flat violation list and
  evidence window; look analyzers up with :func:`get_analyzer` or walk
  them with :func:`iter_analyzers`;
* the **legacy free functions** (``analyze_cnps``,
  ``check_gbn_compliance``, ``check_counters``,
  ``analyze_retransmissions``) — deprecated thin wrappers kept for
  back-compatibility; each one's rich report is now carried on the
  corresponding ``AnalyzerResult.data``.
"""

from .base import (
    Analyzer,
    AnalyzerContext,
    AnalyzerResult,
    Outcome,
    trace_window,
)
from .cnp import (
    CnpReport,
    analyze_cnps,
    infer_rate_limit_scope,
    min_cnp_interval_ns,
)
from .counter_check import (
    CounterMismatch,
    CounterReport,
    check_counters,
    expected_counters,
)
from .gbn_fsm import FsmReport, FsmViolation, ReceiverState, check_gbn_compliance
from .goodput import MctStats, mct_stats, per_qp_goodput_gbps, split_mct
from .latency import (
    LatencySummary,
    ack_rtt_samples,
    read_service_samples,
    stream_rate_bps,
    summarize,
)
from .registry import (
    analyzer_names,
    get_analyzer,
    iter_analyzers,
    register,
)
from .retrans_perf import RetransmissionEvent, analyze_retransmissions

__all__ = [
    "Analyzer",
    "AnalyzerContext",
    "AnalyzerResult",
    "Outcome",
    "trace_window",
    "register",
    "get_analyzer",
    "iter_analyzers",
    "analyzer_names",
    "CnpReport",
    "analyze_cnps",
    "infer_rate_limit_scope",
    "min_cnp_interval_ns",
    "CounterMismatch",
    "CounterReport",
    "check_counters",
    "expected_counters",
    "FsmReport",
    "FsmViolation",
    "ReceiverState",
    "check_gbn_compliance",
    "LatencySummary",
    "ack_rtt_samples",
    "read_service_samples",
    "stream_rate_bps",
    "summarize",
    "MctStats",
    "mct_stats",
    "per_qp_goodput_gbps",
    "split_mct",
    "RetransmissionEvent",
    "analyze_retransmissions",
]
