"""Built-in analyzers of the Lumina test suite (§4)."""

from .cnp import (
    CnpReport,
    analyze_cnps,
    infer_rate_limit_scope,
    min_cnp_interval_ns,
)
from .counter_check import (
    CounterMismatch,
    CounterReport,
    check_counters,
    expected_counters,
)
from .gbn_fsm import FsmReport, FsmViolation, ReceiverState, check_gbn_compliance
from .goodput import MctStats, mct_stats, per_qp_goodput_gbps, split_mct
from .latency import (
    LatencySummary,
    ack_rtt_samples,
    read_service_samples,
    stream_rate_bps,
    summarize,
)
from .retrans_perf import RetransmissionEvent, analyze_retransmissions

__all__ = [
    "CnpReport",
    "analyze_cnps",
    "infer_rate_limit_scope",
    "min_cnp_interval_ns",
    "CounterMismatch",
    "CounterReport",
    "check_counters",
    "expected_counters",
    "FsmReport",
    "FsmViolation",
    "ReceiverState",
    "check_gbn_compliance",
    "LatencySummary",
    "ack_rtt_samples",
    "read_service_samples",
    "stream_rate_bps",
    "summarize",
    "MctStats",
    "mct_stats",
    "per_qp_goodput_gbps",
    "split_mct",
    "RetransmissionEvent",
    "analyze_retransmissions",
]
