"""Hardware counter analyzer (§4, §6.2.4).

Recomputes, from the reconstructed packet trace alone, the value every
NIC counter *should* have, and diffs that against the counters the
orchestrator collected from the hosts. A mismatch means the NIC's
counter lies — which is how Lumina exposed E810's stuck ``cnpSent`` and
CX4 Lx's stuck ``implied_nak_seq_err``.

The expected values are derived only from on-the-wire evidence, never
from simulation internals, so the analyzer works exactly as it would
against real hardware.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...net.packet import EventType
from ..results import HostCounters, TestResult
from ..trace import PacketTrace

__all__ = ["CounterMismatch", "CounterReport", "expected_counters",
           "check_counters"]

_PSN_MASK = 0xFFFFFF
_HALF = 1 << 23


def _psn_later(a: int, b: int) -> bool:
    return a != b and ((a - b) & _PSN_MASK) < _HALF


@dataclass
class CounterMismatch:
    host: str
    counter: str            # canonical name
    vendor_counter: str     # what the operator sees
    expected: int
    reported: int

    def __str__(self) -> str:
        return (f"{self.host}.{self.vendor_counter}: expected {self.expected}, "
                f"NIC reports {self.reported}")


@dataclass
class CounterReport:
    mismatches: List[CounterMismatch] = field(default_factory=list)
    checked: int = 0
    #: False when the trace has capture gaps: expectations derived from
    #: an incomplete trace would indict healthy counters.
    conclusive: bool = True

    @property
    def consistent(self) -> bool:
        return not self.mismatches


def _replay_receiver(trace: PacketTrace, host_ips: set) -> Dict[str, int]:
    """Replay delivered data streams to count receiver-side events."""
    counts = {"out_of_sequence": 0, "implied_nak_seq_err": 0,
              "rx_icrc_errors": 0, "duplicate_request": 0}
    for conn_key in trace.connections():
        _src, dst, _qp = conn_key
        if dst not in host_ips:
            continue
        data = [p for p in trace.for_connection(conn_key) if p.is_data]
        if not data:
            continue
        read_stream = any(p.opcode.is_read_response for p in data)
        expected = None
        for pkt in data:
            if pkt.event_type == EventType.DROP:
                if expected is None:
                    expected = (pkt.psn + 1) & _PSN_MASK
                continue
            if pkt.event_type == EventType.CORRUPT:
                counts["rx_icrc_errors"] += 1
                if expected is None:
                    expected = (pkt.psn + 1) & _PSN_MASK
                continue
            if expected is None or pkt.psn == expected:
                expected = ((pkt.psn if expected is None else expected) + 1) & _PSN_MASK
                continue
            if _psn_later(pkt.psn, expected):
                key = "implied_nak_seq_err" if read_stream else "out_of_sequence"
                counts[key] += 1
            else:
                if not read_stream:
                    counts["duplicate_request"] += 1
    return counts


def expected_counters(trace: PacketTrace, host_ips: set) -> Dict[str, int]:
    """Counter values implied by the wire trace for one host."""
    counts = _replay_receiver(trace, host_ips)
    counts["cnp_sent"] = sum(
        1 for p in trace.cnps() if p.record.ip.src_ip in host_ips
    )
    counts["cnp_handled"] = sum(
        1 for p in trace.cnps() if p.record.ip.dst_ip in host_ips
    )
    counts["ecn_marked_packets"] = sum(
        1 for p in trace
        if p.is_data and p.was_ecn_marked and p.record.ip.dst_ip in host_ips
    )
    counts["nak_sent"] = sum(
        1 for p in trace.naks() if p.record.ip.src_ip in host_ips
    )
    counts["packet_seq_err"] = sum(
        1 for p in trace.naks() if p.record.ip.dst_ip in host_ips
    )
    return counts


#: Counters whose trace-derived expectation is exact (not a lower bound).
_EXACT = ("cnp_sent", "cnp_handled", "ecn_marked_packets", "nak_sent",
          "packet_seq_err", "implied_nak_seq_err", "out_of_sequence",
          "rx_icrc_errors")


def check_counters(result: TestResult) -> CounterReport:
    """Deprecated entry point — use the ``counters`` analyzer instead.

    ``get_analyzer("counters").analyze(result.trace, AnalyzerContext.
    for_result(result))`` returns the uniform
    :class:`~repro.core.analyzers.base.AnalyzerResult`; this report
    object rides on its ``data`` attribute.
    """
    warnings.warn(
        "check_counters() is deprecated; use repro.core.analyzers."
        "get_analyzer('counters').analyze(result.trace, ctx) — the "
        "CounterReport is on the result's .data",
        DeprecationWarning, stacklevel=2)
    return _check_counters(result)


def _check_counters(result: TestResult) -> CounterReport:
    """Diff reported NIC counters against trace-derived expectations.

    A gapped trace cannot ground-truth any counter — every expectation
    is an undercount — so the report carries no mismatches and is
    flagged inconclusive instead.
    """
    if result.trace.has_gaps:
        return CounterReport(conclusive=False)
    report = CounterReport()
    hosts: List[Tuple[HostCounters, set]] = [
        (result.requester_counters,
         {meta.requester_ip for meta in result.metadata}),
        (result.responder_counters,
         {meta.responder_ip for meta in result.metadata}),
    ]
    for counters, ips in hosts:
        expected = expected_counters(result.trace, ips)
        for name in _EXACT:
            want = expected.get(name, 0)
            got = counters.canonical.get(name, 0)
            report.checked += 1
            if want != got:
                report.mismatches.append(CounterMismatch(
                    host=counters.host,
                    counter=name,
                    vendor_counter=_vendor_name(counters, name),
                    expected=want,
                    reported=got,
                ))
    return report


def _vendor_name(counters: HostCounters, canonical: str) -> str:
    from ...rdma.profiles import get_profile

    profile = get_profile(counters.nic_type)
    return profile.counter_names.get(canonical, canonical)
