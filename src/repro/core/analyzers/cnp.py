"""Congestion-notification (CNP) analyzer (§4, §6.3).

Validates DCQCN notification-point behaviour from the packet trace:

* every CNP must be preceded by an ECN-marked data packet in the
  reverse direction (no spurious CNPs);
* consecutive CNPs must respect the configured / hidden minimum
  interval — :func:`min_cnp_interval_ns` measures the floor a NIC
  actually enforces (how the hidden E810 ~50 µs interval was found);
* :func:`infer_rate_limit_scope` recovers the vendor's rate-limiting
  granularity (per IP / per port / per QP) by comparing CNP streams
  across QPs and destination IPs, reproducing the §6.3 methodology.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...rdma.profiles import CnpLimitMode
from ..trace import PacketTrace

__all__ = ["CnpReport", "analyze_cnps", "min_cnp_interval_ns",
           "infer_rate_limit_scope"]


@dataclass
class CnpReport:
    """Per-trace CNP accounting."""

    total_cnps: int = 0
    total_ecn_marked: int = 0
    spurious_cnps: int = 0
    #: CNP timestamps grouped by (NP ip, RP ip, dest QP).
    streams: Dict[Tuple[int, int, int], List[int]] = field(default_factory=dict)
    #: False when the trace has capture gaps: a lost mirror clone could
    #: have been the ECN mark that "spurious" CNPs answered, or a CNP
    #: whose absence shrinks the measured interval floor.
    conclusive: bool = True

    def intervals_ns(self, key: Optional[Tuple[int, int, int]] = None) -> List[int]:
        """Gaps between consecutive CNPs of one stream (or all merged)."""
        if key is not None:
            times = self.streams.get(key, [])
        else:
            times = sorted(t for values in self.streams.values() for t in values)
        return [b - a for a, b in zip(times, times[1:])]


def analyze_cnps(trace: PacketTrace) -> CnpReport:
    """Deprecated entry point — use the ``cnp`` analyzer instead.

    ``get_analyzer("cnp").analyze(trace, ctx)`` returns the uniform
    :class:`~repro.core.analyzers.base.AnalyzerResult`; this report
    object rides on its ``data`` attribute.
    """
    warnings.warn(
        "analyze_cnps() is deprecated; use repro.core.analyzers."
        "get_analyzer('cnp').analyze(trace, ctx) — the CnpReport is on "
        "the result's .data", DeprecationWarning, stacklevel=2)
    return _analyze_cnps(trace)


def _analyze_cnps(trace: PacketTrace) -> CnpReport:
    """Extract CNP streams and validate them against the marks seen."""
    report = CnpReport(conclusive=not trace.has_gaps)
    marked_times: Dict[Tuple[int, int], List[int]] = {}
    for pkt in trace:
        if pkt.is_data and pkt.was_ecn_marked:
            report.total_ecn_marked += 1
            key = (pkt.record.ip.dst_ip, pkt.record.ip.src_ip)  # NP ip, RP ip
            marked_times.setdefault(key, []).append(pkt.timestamp_ns)
    for pkt in trace.cnps():
        report.total_cnps += 1
        np_ip = pkt.record.ip.src_ip
        rp_ip = pkt.record.ip.dst_ip
        stream = (np_ip, rp_ip, pkt.record.dest_qp)
        report.streams.setdefault(stream, []).append(pkt.timestamp_ns)
        marks = marked_times.get((np_ip, rp_ip), [])
        if not any(t <= pkt.timestamp_ns for t in marks):
            report.spurious_cnps += 1
    for times in report.streams.values():
        times.sort()
    return report


def min_cnp_interval_ns(trace: PacketTrace, per_np_ip: bool = True) -> Optional[int]:
    """The smallest observed gap between CNPs from one notification point.

    Marking *every* data packet with ECN and measuring this floor is
    exactly how the paper discovered E810's hidden ~50 µs interval.
    """
    report = _analyze_cnps(trace)
    by_np: Dict[int, List[int]] = {}
    for (np_ip, _rp_ip, _qp), times in report.streams.items():
        key = np_ip if per_np_ip else 0
        by_np.setdefault(key, []).extend(times)
    gaps: List[int] = []
    for times in by_np.values():
        times.sort()
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    return min(gaps) if gaps else None


def infer_rate_limit_scope(trace: PacketTrace,
                           interval_ns: int,
                           ip_to_port: Optional[Dict[int, object]] = None,
                           tolerance: float = 0.5) -> str:
    """Infer the CNP rate-limiter scope from a multi-QP, multi-IP trace.

    The experiment design (§6.3): mark ECN on several QPs spread across
    several destination IPs simultaneously, then look at which CNP
    streams share a limiter. If CNPs to *different* QPs of the same IP
    violate the interval when merged, the limiter cannot be per-port or
    per-IP; if different IPs' CNPs violate it when merged, it cannot be
    per-port; otherwise the coarsest consistent scope is reported.

    ``ip_to_port`` maps every NP IP to the physical port it lives on —
    required when multi-GID hosts carry several IPs per port (without
    it each IP is assumed to be its own port, and per-IP limiting is
    indistinguishable from per-port).
    """
    report = _analyze_cnps(trace)
    floor = interval_ns * (1.0 - tolerance)
    port_of = ip_to_port or {}

    def respects(times: List[int]) -> bool:
        times = sorted(times)
        return all(b - a >= floor for a, b in zip(times, times[1:]))

    # Merge per scope and test the interval at each granularity.
    per_port: Dict[object, List[int]] = {}
    per_ip: Dict[Tuple[object, int], List[int]] = {}
    for (np_ip, rp_ip, qp), times in report.streams.items():
        port = port_of.get(np_ip, np_ip)
        per_port.setdefault(port, []).extend(times)
        # Per-destination-IP limiting is shared across all GIDs of the
        # notifying port (CX4 Lx behaviour).
        per_ip.setdefault((port, rp_ip), []).extend(times)

    if all(respects(times) for times in per_port.values()):
        return CnpLimitMode.PER_PORT
    if all(respects(times) for times in per_ip.values()):
        return CnpLimitMode.PER_IP
    if all(respects(times) for times in report.streams.values()):
        return CnpLimitMode.PER_QP
    return "none"
