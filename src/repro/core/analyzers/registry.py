"""Analyzer registry: the built-in analyzers behind one lookup.

Every analyzer here implements the :class:`~repro.core.analyzers.base.
Analyzer` protocol — ``name`` + ``analyze(trace, ctx)`` — and wraps one
of the legacy analysis passes, normalising its bespoke report into the
uniform :class:`AnalyzerResult` (the rich report stays available on
``result.data``). Consumers iterate :func:`iter_analyzers` instead of
hard-coding the pass list, so a new analyzer registers once and shows
up in the run report, the API facade and anything else that asks.

Registration is idempotent by name; re-registering a name replaces the
analyzer (latest wins), which keeps interactive reloads painless.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from .base import Analyzer, AnalyzerContext, AnalyzerResult, Outcome, trace_window
from .cnp import _analyze_cnps
from .counter_check import _check_counters
from .gbn_fsm import _check_gbn_compliance
from .goodput import mct_stats
from .latency import ack_rtt_samples, summarize
from .retrans_perf import _analyze_retransmissions

if TYPE_CHECKING:
    from ..trace import PacketTrace

__all__ = ["register", "get_analyzer", "iter_analyzers", "analyzer_names",
           "GbnAnalyzer", "RetransmissionAnalyzer", "CnpAnalyzer",
           "CounterAnalyzer", "GoodputAnalyzer", "LatencyAnalyzer"]

_REGISTRY: Dict[str, Analyzer] = {}


def register(analyzer: Analyzer) -> Analyzer:
    """Add (or replace) an analyzer under its ``name``; returns it."""
    name = getattr(analyzer, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError("analyzer must carry a non-empty string .name")
    if not callable(getattr(analyzer, "analyze", None)):
        raise ValueError(f"analyzer {name!r} has no analyze() method")
    _REGISTRY[name] = analyzer
    return analyzer


def get_analyzer(name: str) -> Analyzer:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown analyzer {name!r}; registered: "
                       f"{analyzer_names()}") from None


def iter_analyzers() -> Iterator[Analyzer]:
    """All registered analyzers, in stable name order."""
    for name in analyzer_names():
        yield _REGISTRY[name]


def analyzer_names() -> List[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in analyzers
# ---------------------------------------------------------------------------

class GbnAnalyzer:
    """Go-back-N FSM compliance (§4) as a protocol analyzer."""

    name = "gbn"

    def analyze(self, trace: "PacketTrace",
                ctx: AnalyzerContext) -> AnalyzerResult:
        report = _check_gbn_compliance(trace, mtu=ctx.mtu)
        violations = [str(v) for v in report.violations]
        if violations:
            outcome = Outcome.FAIL
            detail = f"{len(violations)} violation(s)"
        elif not report.conclusive:
            outcome = Outcome.INCONCLUSIVE
            detail = (f"capture gaps overlap "
                      f"{len(report.inconclusive_connections)} connection(s)")
        else:
            outcome = Outcome.PASS
            detail = (f"compliant ({report.connections_checked} connections, "
                      f"{report.packets_checked} packets)")
        return AnalyzerResult(
            name=self.name, outcome=outcome, violations=violations,
            evidence_window=trace_window(trace),
            metrics={"connections_checked": report.connections_checked,
                     "packets_checked": report.packets_checked,
                     "inconclusive_connections":
                         len(report.inconclusive_connections)},
            detail=detail, data=report)


class RetransmissionAnalyzer:
    """Per-drop Go-back-N recovery breakdown (§4, Fig. 5)."""

    name = "retransmission"

    def analyze(self, trace: "PacketTrace",
                ctx: AnalyzerContext) -> AnalyzerResult:
        events = _analyze_retransmissions(trace)
        violations = [
            f"drop psn={e.dropped_psn} iter={e.drop_iteration} not recovered"
            for e in events if e.conclusive and not e.recovered]
        inconclusive = [e for e in events if not e.conclusive]
        window: Optional[Tuple[int, int]] = None
        if events:
            start = min(e.drop_time_ns for e in events)
            end = max((e.retrans_time_ns or e.drop_time_ns) for e in events)
            window = (start, end)
        if violations:
            outcome = Outcome.FAIL
            detail = f"{len(violations)} unrecovered drop(s)"
        elif inconclusive or (not events and trace.has_gaps):
            outcome = Outcome.INCONCLUSIVE
            detail = "capture gaps overlap the recovery window"
        else:
            outcome = Outcome.PASS
            fast = sum(1 for e in events if e.fast_retransmission)
            detail = (f"{len(events)} drop(s), {fast} fast retransmission(s)"
                      if events else "no injected drops")
        return AnalyzerResult(
            name=self.name, outcome=outcome, violations=violations,
            evidence_window=window,
            metrics={"events": len(events),
                     "fast_retransmissions":
                         sum(1 for e in events if e.fast_retransmission),
                     "recovered": sum(1 for e in events if e.recovered)},
            detail=detail, data=events)


class CnpAnalyzer:
    """DCQCN congestion-notification validity (§4, §6.3)."""

    name = "cnp"

    def analyze(self, trace: "PacketTrace",
                ctx: AnalyzerContext) -> AnalyzerResult:
        report = _analyze_cnps(trace)
        violations = ([f"{report.spurious_cnps} CNP(s) without a preceding "
                       f"ECN mark"] if report.spurious_cnps else [])
        if violations:
            outcome = Outcome.FAIL
        elif not report.conclusive and (report.total_cnps
                                        or report.total_ecn_marked):
            outcome = Outcome.INCONCLUSIVE
        else:
            outcome = Outcome.PASS
        return AnalyzerResult(
            name=self.name, outcome=outcome, violations=violations,
            evidence_window=trace_window(trace),
            metrics={"total_cnps": report.total_cnps,
                     "total_ecn_marked": report.total_ecn_marked,
                     "spurious_cnps": report.spurious_cnps},
            detail=(f"{report.total_cnps} CNP(s) for "
                    f"{report.total_ecn_marked} mark(s), "
                    f"{report.spurious_cnps} spurious"),
            data=report)


class CounterAnalyzer:
    """NIC counters diffed against trace-derived truth (§4, §6.2.4)."""

    name = "counters"

    def analyze(self, trace: "PacketTrace",
                ctx: AnalyzerContext) -> AnalyzerResult:
        if ctx.result is None:
            return AnalyzerResult(
                name=self.name, outcome=Outcome.INCONCLUSIVE,
                detail="no TestResult in context: counters unavailable")
        report = _check_counters(ctx.result)
        violations = [str(m) for m in report.mismatches]
        if not report.conclusive:
            outcome = Outcome.INCONCLUSIVE
            detail = ("capture gaps make trace-derived expectations "
                      "unreliable; no counters checked")
        elif violations:
            outcome = Outcome.FAIL
            detail = f"{len(violations)} counter bug(s)"
        else:
            outcome = Outcome.PASS
            detail = (f"all {report.checked} checked counters consistent "
                      f"with the trace")
        return AnalyzerResult(
            name=self.name, outcome=outcome, violations=violations,
            evidence_window=trace_window(trace),
            metrics={"checked": report.checked,
                     "mismatches": len(report.mismatches)},
            detail=detail, data=report)


class GoodputAnalyzer:
    """Application-level goodput and message-completion times."""

    name = "goodput"

    def analyze(self, trace: "PacketTrace",
                ctx: AnalyzerContext) -> AnalyzerResult:
        if ctx.result is None:
            return AnalyzerResult(
                name=self.name, outcome=Outcome.INCONCLUSIVE,
                detail="no TestResult in context: traffic log unavailable")
        log = ctx.result.traffic_log
        stats = mct_stats(log.all_messages)
        metrics = {"goodput_gbps": log.total_goodput_bps() / 1e9,
                   "aborted_qps": log.aborted_qps}
        if stats is not None:
            metrics.update({"mct_mean_us": stats.mean_us,
                            "mct_p50_us": stats.p50_ns / 1e3,
                            "mct_p99_us": stats.p99_ns / 1e3,
                            "messages": stats.count})
        violations = ([f"{log.aborted_qps} QP(s) aborted (retry exhaustion)"]
                      if log.aborted_qps else [])
        outcome = Outcome.FAIL if violations else Outcome.PASS
        detail = (f"{metrics['goodput_gbps']:.2f} Gbps, "
                  + (f"mean MCT {stats.mean_us:.1f} us"
                     if stats else "no completed messages"))
        return AnalyzerResult(
            name=self.name, outcome=outcome, violations=violations,
            evidence_window=trace_window(trace),
            metrics=metrics, detail=detail, data=stats)


class LatencyAnalyzer:
    """Wire-level ACK round-trip latency, per the switch's clock."""

    name = "latency"

    def analyze(self, trace: "PacketTrace",
                ctx: AnalyzerContext) -> AnalyzerResult:
        samples = [s for values in ack_rtt_samples(trace).values()
                   for s in values]
        summary = summarize(samples)
        if summary is None:
            return AnalyzerResult(
                name=self.name, outcome=Outcome.INCONCLUSIVE,
                evidence_window=trace_window(trace),
                detail="no ACK round-trips observable in the trace")
        return AnalyzerResult(
            name=self.name, outcome=Outcome.PASS,
            evidence_window=trace_window(trace),
            metrics={"samples": summary.count,
                     "ack_rtt_mean_us": summary.mean_us,
                     "ack_rtt_min_ns": summary.min_ns,
                     "ack_rtt_max_ns": summary.max_ns},
            detail=(f"{summary.count} ACK RTT sample(s), "
                    f"mean {summary.mean_us:.1f} us"),
            data=summary)


for _analyzer in (GbnAnalyzer(), RetransmissionAnalyzer(), CnpAnalyzer(),
                  CounterAnalyzer(), GoodputAnalyzer(), LatencyAnalyzer()):
    register(_analyzer)
