"""Latency analyzer: RTT and service-time estimates from the trace.

§4 notes that retransmission measurements carry a half-RTT deviation
because timestamps come from the switch, and suggests pre-measuring the
testbed RTT to compensate. This analyzer provides that measurement from
a clean trace:

* **ACK RTT** — for Write/Send: the gap between a message's LAST data
  packet and its ACK passing the switch. Covers switch→responder
  propagation, the responder's RX pipeline + ACK generation, and the
  way back: exactly the "loop" a NACK measurement also traverses.
* **Read service time** — the gap between a Read request and the first
  response packet (responder fetch latency).
* **inter-arrival statistics** of a data stream, from which the
  effective pacing rate of a (possibly DCQCN-throttled) sender can be
  read off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...net.headers import Opcode
from ..trace import PacketTrace, TracePacket

__all__ = ["LatencySummary", "ack_rtt_samples", "read_service_samples",
           "stream_rate_bps", "summarize"]


@dataclass
class LatencySummary:
    count: int
    mean_ns: float
    min_ns: int
    max_ns: int

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1e3


def summarize(samples_ns: List[int]) -> Optional[LatencySummary]:
    if not samples_ns:
        return None
    return LatencySummary(
        count=len(samples_ns),
        mean_ns=sum(samples_ns) / len(samples_ns),
        min_ns=min(samples_ns),
        max_ns=max(samples_ns),
    )


def ack_rtt_samples(trace: PacketTrace) -> Dict[Tuple[int, int, int], List[int]]:
    """Per-connection ACK round-trip samples (LAST data → covering ACK).

    Only clean acknowledgements are sampled: NAK/RNR responses measure
    recovery paths, not the baseline RTT.
    """
    samples: Dict[Tuple[int, int, int], List[int]] = {}
    pending: Dict[Tuple[int, int, int], List[TracePacket]] = {}
    for pkt in trace:
        if pkt.is_data and pkt.opcode.is_last and not pkt.opcode.is_read_response:
            pending.setdefault(pkt.conn_key, []).append(pkt)
            continue
        if pkt.opcode != Opcode.ACKNOWLEDGE or pkt.record.aeth is None \
                or not pkt.record.aeth.is_ack:
            continue
        # Reverse direction: match the ACK to its data connection.
        for conn_key, lasts in pending.items():
            src, dst, _qpn = conn_key
            if pkt.record.ip.src_ip != dst or pkt.record.ip.dst_ip != src:
                continue
            covered = [p for p in lasts if _psn_le(p.psn, pkt.psn)]
            if not covered:
                continue
            newest = max(covered, key=lambda p: p.mirror_seq)
            samples.setdefault(conn_key, []).append(
                pkt.timestamp_ns - newest.timestamp_ns)
            for p in covered:
                lasts.remove(p)
            break
    return samples


def _psn_le(a: int, b: int) -> bool:
    return ((b - a) & 0xFFFFFF) < (1 << 23)


def read_service_samples(trace: PacketTrace) -> List[int]:
    """Gaps between Read requests and their first response packets."""
    requests: Dict[Tuple[int, int, int], List[TracePacket]] = {}
    samples: List[int] = []
    for pkt in trace:
        if pkt.opcode == Opcode.RDMA_READ_REQUEST:
            key = (pkt.record.ip.src_ip, pkt.record.ip.dst_ip, pkt.psn)
            requests.setdefault(key[:2] + (pkt.psn,), []).append(pkt)
        elif pkt.opcode in (Opcode.RDMA_READ_RESPONSE_FIRST,
                            Opcode.RDMA_READ_RESPONSE_ONLY):
            key = (pkt.record.ip.dst_ip, pkt.record.ip.src_ip, pkt.psn)
            queue = requests.get(key)
            if queue:
                request = queue.pop(0)
                samples.append(pkt.timestamp_ns - request.timestamp_ns)
    return samples


def stream_rate_bps(trace: PacketTrace,
                    conn_key: Tuple[int, int, int],
                    skip: int = 1) -> Optional[float]:
    """Effective wire rate of a data stream from switch timestamps."""
    data = trace.data_packets(conn_key)
    if len(data) <= skip + 1:
        return None
    window = data[skip:]
    elapsed = window[-1].timestamp_ns - window[0].timestamp_ns
    if elapsed <= 0:
        return None
    payload_bits = sum(p.record.payload_len * 8 for p in window[1:])
    return payload_bits / elapsed * 1e9
