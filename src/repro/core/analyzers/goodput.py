"""Application-level performance analyzer: goodput and MCT statistics.

Works on the traffic generator's log (Table 1) — the metrics that back
the ETS (Fig. 10), noisy-neighbor (Fig. 11) and overhead (Fig. 7)
experiments. Pure arithmetic over message records; no simulation state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..trafficgen import MessageRecord, TrafficGenLog

__all__ = ["MctStats", "mct_stats", "per_qp_goodput_gbps", "split_mct"]


@dataclass
class MctStats:
    """Summary statistics over message completion times (ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    min_ns: int
    max_ns: int

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1e3

    @property
    def mean_ms(self) -> float:
        return self.mean_ns / 1e6


def _percentile(sorted_values: Sequence[int], fraction: float) -> float:
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def mct_stats(messages: Sequence[MessageRecord]) -> Optional[MctStats]:
    """Statistics over the completed messages in a record list."""
    times = sorted(m.completion_time_ns for m in messages
                   if m.ok and m.completion_time_ns is not None)
    if not times:
        return None
    return MctStats(
        count=len(times),
        mean_ns=sum(times) / len(times),
        p50_ns=_percentile(times, 0.50),
        p99_ns=_percentile(times, 0.99),
        min_ns=times[0],
        max_ns=times[-1],
    )


def per_qp_goodput_gbps(log: TrafficGenLog) -> Dict[int, float]:
    """Goodput per connection index, in Gbit/s."""
    out: Dict[int, float] = {}
    for qp in log.per_qp:
        bps = qp.goodput_bps()
        out[qp.qp_index] = (bps or 0.0) / 1e9
    return out


def split_mct(log: TrafficGenLog, qp_indices: Sequence[int]
              ) -> Dict[str, Optional[MctStats]]:
    """MCT stats split into a selected group vs everyone else.

    The Fig. 11 noisy-neighbor analysis splits connections into the
    drop-injected set and the innocent set and compares their MCTs.
    """
    selected = set(qp_indices)
    inside: List[MessageRecord] = []
    outside: List[MessageRecord] = []
    for qp in log.per_qp:
        bucket = inside if qp.qp_index in selected else outside
        bucket.extend(qp.messages)
    return {"selected": mct_stats(inside), "others": mct_stats(outside)}
