"""The analyzer protocol: one uniform shape for every trace verdict.

Historically each analyzer grew its own report type and its own verdict
vocabulary (``compliant``, ``consistent``, ``spurious_cnps == 0``, …),
so every consumer — the conformance suite, the run report, the fuzz
scorer, the campaign store — re-interpreted each one ad hoc. The
protocol normalises the *verdict* while keeping the rich per-analyzer
report available:

* every analyzer has a ``name`` and one entry point,
  ``analyze(trace, ctx) -> AnalyzerResult``;
* every :class:`AnalyzerResult` states a trichotomous
  :class:`Outcome`, a flat list of human-readable ``violations``, and
  the ``evidence_window`` (simulated-time span) the verdict rests on;
* the analyzer's legacy report object rides along as ``data`` for
  consumers that need the full detail (the run report's prose, the
  fuzz scorer's per-field accounting).

INCONCLUSIVE (§3.5 applied to analysis) always means the *capture*
failed the analyzer — a trace gap overlaps the evidence window — never
that the NIC passed or failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from ..results import TestResult
    from ..trace import PacketTrace

try:  # Protocol: typing on 3.8+, typing_extensions not a dependency
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py3.7 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

__all__ = ["Outcome", "AnalyzerResult", "AnalyzerContext", "Analyzer",
           "trace_window"]


class Outcome(str, Enum):
    """Trichotomous verdict (§3.5 applied to analysis).

    INCONCLUSIVE means the capture, not the NIC, failed: a trace gap
    overlaps the evidence the verdict would rest on, so neither PASS
    nor FAIL would be honest. It is rendered distinctly and never
    counts as a pass.
    """

    PASS = "PASS"
    FAIL = "FAIL"
    INCONCLUSIVE = "INCONCLUSIVE"


@dataclass
class AnalyzerResult:
    """What every analyzer returns, whatever it inspected.

    ``data`` carries the analyzer's rich legacy report (``FsmReport``,
    ``CnpReport``, event lists, …) for consumers that need more than
    the uniform verdict; it is deliberately excluded from
    :meth:`to_dict`, which is the flat, store-friendly projection.
    """

    name: str
    outcome: Outcome
    violations: List[str] = field(default_factory=list)
    #: Simulated-time span ``(start_ns, end_ns)`` the verdict rests on,
    #: or None when the analyzer saw no evidence at all.
    evidence_window: Optional[Tuple[int, int]] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    detail: str = ""
    data: Any = None

    @property
    def ok(self) -> bool:
        return self.outcome is Outcome.PASS

    @property
    def is_inconclusive(self) -> bool:
        return self.outcome is Outcome.INCONCLUSIVE

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON projection (drops ``data``) for the store."""
        return {
            "name": self.name,
            "outcome": self.outcome.value,
            "violations": list(self.violations),
            "evidence-window": (list(self.evidence_window)
                                if self.evidence_window else None),
            "metrics": dict(self.metrics),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalyzerResult":
        window = data.get("evidence-window")
        return cls(
            name=data["name"],
            outcome=Outcome(data["outcome"]),
            violations=list(data.get("violations", ())),
            evidence_window=tuple(window) if window else None,
            metrics=dict(data.get("metrics", {})),
            detail=data.get("detail", ""),
        )

    def __str__(self) -> str:
        return f"[{self.outcome.value}] {self.name:<16s} {self.detail}"


@dataclass
class AnalyzerContext:
    """Everything beyond the trace an analyzer may consult.

    Trace-only analyzers ignore it entirely; counter- and
    app-metric-based analyzers need ``result`` and report INCONCLUSIVE
    without one.
    """

    result: Optional["TestResult"] = None
    mtu: int = 1024

    @classmethod
    def for_result(cls, result: "TestResult") -> "AnalyzerContext":
        return cls(result=result, mtu=result.config.traffic.mtu)


@runtime_checkable
class Analyzer(Protocol):
    """The protocol every registered analyzer implements."""

    name: str

    def analyze(self, trace: "PacketTrace",
                ctx: AnalyzerContext) -> AnalyzerResult:
        """Inspect one trace (plus context) and return a verdict."""
        ...  # pragma: no cover - protocol stub


def trace_window(trace: "PacketTrace") -> Optional[Tuple[int, int]]:
    """The full simulated-time span a trace covers, or None if empty."""
    if not trace.packets:
        return None
    return (trace.packets[0].timestamp_ns, trace.packets[-1].timestamp_ns)
