"""Incast topology: N senders → one receiver through the switch.

An extension of the paper's two-host testbed (§7 positions Lumina's
topology as deliberately simple). Incast is *the* scenario the paper's
motivation keeps returning to — "such concurrent packet drops are
common in incast congestion" (§6.2.2) — but two hosts can only emulate
it with multi-GID tricks that share a single link. This module builds a
genuine fan-in: every sender gets its own port, the receiver's egress
port on the switch is the bottleneck, and (with the organic ECN
threshold) DCQCN runs as a real multi-flow control loop.

The orchestration mirrors §3: metadata exchange, optional event
installation, mirroring to the dumper pool, trace reconstruction and
integrity checking all reuse the standard components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dumper.pool import DumperPool
from ..net.addressing import ip_to_int
from ..net.link import connect, gbps
from ..rdma.nic import RdmaNic
from ..rdma.profiles import get_profile
from ..rdma.qp import QueuePair
from ..rdma.verbs import CompletionQueue, Verb, WcStatus, WorkRequest
from ..sim.engine import Simulator
from ..sim.rng import SimRandom
from ..switch.controlplane import SwitchController
from ..switch.pipeline import TofinoSwitch
from .config import ConfigError, RoceParameters
from .trace import IntegrityReport, PacketTrace, check_integrity, reconstruct_trace

__all__ = ["IncastConfig", "IncastResult", "run_incast", "jain_fairness"]


@dataclass(frozen=True)
class IncastConfig:
    """An N-to-1 Write workload over a fan-in bottleneck."""

    num_senders: int = 4
    nic_type: str = "cx6"
    sender_bandwidth_gbps: Optional[float] = None
    receiver_bandwidth_gbps: Optional[float] = None
    message_size: int = 256 * 1024
    num_msgs_per_sender: int = 10
    mtu: int = 1024
    tx_depth: int = 2
    #: Switch egress queue capacity toward the receiver (bytes); None
    #: models deep buffers, a value enables genuine congestion drops.
    receiver_queue_bytes: Optional[int] = None
    ecn_threshold_kb: Optional[int] = None
    roce: RoceParameters = field(default_factory=RoceParameters)
    min_retransmit_timeout: int = 14
    max_retransmit_retry: int = 7
    dumper_servers: int = 3
    seed: int = 1
    max_duration_ns: int = 200_000_000_000
    link_delay_ns: int = 500

    def __post_init__(self) -> None:
        if self.num_senders < 1:
            raise ConfigError("incast needs at least one sender")
        if self.message_size < 1 or self.num_msgs_per_sender < 1:
            raise ConfigError("message geometry must be positive")
        if self.tx_depth < 1:
            raise ConfigError("tx depth must be >= 1")


@dataclass
class IncastResult:
    config: IncastConfig
    trace: PacketTrace
    integrity: IntegrityReport
    per_sender_goodput_bps: Dict[int, float]
    per_sender_retransmits: Dict[int, int]
    receiver_counters: Dict[int, int]
    switch_counters: Dict[str, object]
    duration_ns: int
    aborted_senders: int

    @property
    def aggregate_goodput_bps(self) -> float:
        return sum(self.per_sender_goodput_bps.values())

    @property
    def fairness(self) -> float:
        return jain_fairness(list(self.per_sender_goodput_bps.values()))


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog."""
    if not values:
        return 0.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 0.0
    return (total * total) / (len(values) * squares)


def run_incast(config: IncastConfig) -> IncastResult:
    """Build the fan-in testbed, run the workload, collect results."""
    sim = Simulator()
    rng = SimRandom(config.seed)
    profile = get_profile(config.nic_type)
    roce = config.roce

    def make_nic(name: str, bandwidth: Optional[float]) -> RdmaNic:
        return RdmaNic(
            sim, name, profile, rng,
            bandwidth_gbps=bandwidth,
            mtu=config.mtu,
            min_time_between_cnps_ns=roce.min_time_between_cnps_us * 1_000,
            dcqcn_rp_enable=roce.dcqcn_rp_enable,
            dcqcn_np_enable=roce.dcqcn_np_enable,
            adaptive_retrans=roce.adaptive_retrans,
        )

    receiver = make_nic("receiver", config.receiver_bandwidth_gbps)
    receiver_ip = ip_to_int("10.0.1.1")
    receiver.ip_list = [receiver_ip]
    senders = [make_nic(f"sender{i}", config.sender_bandwidth_gbps)
               for i in range(config.num_senders)]
    sender_ips = [ip_to_int(f"10.0.0.{i + 1}") for i in range(config.num_senders)]

    switch = TofinoSwitch(
        sim, "tofino", rng,
        ecn_threshold_bytes=(config.ecn_threshold_kb * 1024
                             if config.ecn_threshold_kb else None),
    )
    controller = SwitchController(switch)

    # Receiver link: the fan-in bottleneck (optionally shallow-buffered).
    recv_port = switch.add_port(receiver.port.bandwidth_bps,
                                queue_bytes=config.receiver_queue_bytes,
                                name="tofino->receiver")
    connect(recv_port, receiver.port, config.link_delay_ns)
    switch.set_forwarding(receiver_ip, recv_port)

    arp = {receiver_ip: receiver.mac}
    for nic, ip in zip(senders, sender_ips):
        nic.ip_list = [ip]
        sw_port = switch.add_host_port(nic.port.bandwidth_bps,
                                       name=f"tofino->{nic.name}")
        connect(sw_port, nic.port, config.link_delay_ns)
        switch.set_forwarding(ip, sw_port)
        arp[ip] = nic.mac
    receiver.arp.update(arp)
    for nic in senders:
        nic.arp.update(arp)

    dumpers = DumperPool(sim)
    fastest = max([receiver.port.bandwidth_bps]
                  + [nic.port.bandwidth_bps for nic in senders])
    for _ in range(config.dumper_servers):
        dumpers.add_server(switch, bandwidth_bps=fastest,
                           propagation_delay_ns=config.link_delay_ns)

    # QP setup + metadata exchange (one connection per sender).
    sender_qps: List[QueuePair] = []
    sender_cqs: List[CompletionQueue] = []
    recv_cq = CompletionQueue(capacity=65536)
    for nic, ip in zip(senders, sender_ips):
        cq = CompletionQueue(capacity=65536)
        sqp = nic.create_qp(cq, ip, mtu=config.mtu)
        rqp = receiver.create_qp(recv_cq, receiver_ip, mtu=config.mtu)
        sqp.connect(receiver_ip, rqp.qp_num, rqp.initial_psn,
                    timeout_cfg=config.min_retransmit_timeout,
                    retry_cnt=config.max_retransmit_retry)
        rqp.connect(ip, sqp.qp_num, sqp.initial_psn,
                    timeout_cfg=config.min_retransmit_timeout,
                    retry_cnt=config.max_retransmit_retry)
        sender_qps.append(sqp)
        sender_cqs.append(cq)

    # Windowed senders: keep tx_depth messages in flight each.
    state = {
        i: {"remaining": config.num_msgs_per_sender, "inflight": 0,
            "first_post": None, "last_done": None, "bytes": 0}
        for i in range(config.num_senders)
    }

    def post(i: int) -> None:
        qp = sender_qps[i]
        slot = state[i]
        while (slot["remaining"] > 0 and slot["inflight"] < config.tx_depth
               and qp.state.value != "error"):
            slot["remaining"] -= 1
            slot["inflight"] += 1
            if slot["first_post"] is None:
                slot["first_post"] = sim.now
            qp.post_send(WorkRequest(verb=Verb.WRITE,
                                     length=config.message_size))

    def on_completion(i: int):
        def _cb(wc) -> None:
            slot = state[i]
            slot["inflight"] -= 1
            if wc.status is WcStatus.SUCCESS:
                slot["bytes"] += wc.length
                slot["last_done"] = sim.now
            post(i)
        return _cb

    for i, cq in enumerate(sender_cqs):
        cq.on_completion(on_completion(i))
        post(i)

    sim.run(until=config.max_duration_ns)
    sim.run_for(2_000_000)

    records = dumpers.terminate_all()
    trace = reconstruct_trace(records)
    switch_counters = controller.dump_counters()
    integrity = check_integrity(trace, switch_counters)

    goodput = {}
    retransmits = {}
    for i, nic in enumerate(senders):
        slot = state[i]
        if slot["first_post"] is not None and slot["last_done"] and \
                slot["last_done"] > slot["first_post"]:
            goodput[i] = slot["bytes"] * 8 / (slot["last_done"]
                                              - slot["first_post"]) * 1e9
        else:
            goodput[i] = 0.0
        retransmits[i] = nic.counters["retransmitted_packets"]

    return IncastResult(
        config=config,
        trace=trace,
        integrity=integrity,
        per_sender_goodput_bps=goodput,
        per_sender_retransmits=retransmits,
        receiver_counters=receiver.counters.snapshot(),
        switch_counters=switch_counters,
        duration_ns=sim.now,
        aborted_senders=sum(1 for qp in sender_qps
                            if qp.state.value == "error"),
    )
