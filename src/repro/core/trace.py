"""Packet-trace reconstruction and integrity checking (§3.5).

After TERM, the orchestrator gathers records from every dumper server
and rebuilds the global trace by sorting on the switch-assigned mirror
sequence number. Integrity requires all three paper conditions:

1. mirror sequence numbers in the trace are consecutive (0..N-1),
2. the switch mirrored exactly N packets,
3. the switch received exactly N RoCE packets (so nothing escaped
   mirroring and nothing was mirrored twice).

A trace also re-derives the ITER number of every packet offline using
the same Fig. 3 algorithm the data plane runs, which is what lets the
analyzers tell retransmissions apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..dumper.records import DumpRecord, ParsedRecord, expected_icrcs, parse_record
from ..net.headers import Opcode
from ..net.packet import EventType
from ..switch.itertrack import IterTracker

__all__ = ["TracePacket", "TraceGap", "PacketTrace", "IntegrityReport",
           "reconstruct_trace", "check_integrity", "format_trace"]


class TracePacket:
    """One trace entry: a parsed record plus its offline-derived ITER.

    Slotted by hand: one instance per captured packet is built during
    trace reconstruction. Semantics match the dataclass it replaced.
    """

    __slots__ = ("record", "iteration")
    __hash__ = None

    def __init__(self, record: ParsedRecord, iteration: int):
        self.record = record
        self.iteration = iteration

    def __eq__(self, other: object) -> object:
        if other.__class__ is not TracePacket:
            return NotImplemented
        return (self.record == other.record
                and self.iteration == other.iteration)

    def __repr__(self) -> str:
        return (f"TracePacket(record={self.record!r}, "
                f"iteration={self.iteration!r})")

    # Convenience pass-throughs used heavily by the analyzers.
    @property
    def opcode(self) -> Opcode:
        return self.record.opcode

    @property
    def psn(self) -> int:
        return self.record.psn

    @property
    def timestamp_ns(self) -> int:
        return self.record.switch_timestamp_ns

    @property
    def mirror_seq(self) -> int:
        return self.record.mirror_seq

    @property
    def event_type(self) -> int:
        return self.record.event_type

    @property
    def conn_key(self) -> Tuple[int, int, int]:
        return self.record.conn_key

    @property
    def is_data(self) -> bool:
        return self.record.opcode.is_data

    @property
    def was_dropped(self) -> bool:
        return self.record.event_type == EventType.DROP

    @property
    def was_ecn_marked(self) -> bool:
        return self.record.event_type == EventType.ECN


@dataclass(frozen=True)
class TraceGap:
    """A contiguous range of mirror sequence numbers missing from a trace.

    Gaps are first-class: capture loss (mirror-link drops, dumper ring
    overflow) must not silently degrade analysis. The surrounding switch
    timestamps bound *when* the hole occurred; either bound is None when
    the gap touches the head or tail of the trace, in which case the
    window is treated as open-ended (conservative for overlap queries).
    """

    first_seq: int
    last_seq: int
    #: Switch timestamp of the last packet before the gap (None = head gap).
    before_ns: Optional[int] = None
    #: Switch timestamp of the first packet after the gap (None = tail gap).
    after_ns: Optional[int] = None

    @property
    def count(self) -> int:
        return self.last_seq - self.first_seq + 1

    def overlaps(self, start_ns: int, end_ns: int) -> bool:
        """Whether the gap's time window intersects [start_ns, end_ns].

        Open bounds count as overlap: a head/tail gap could hide
        packets from any time before/after its known edge.
        """
        if self.after_ns is not None and self.after_ns < start_ns:
            return False
        if self.before_ns is not None and self.before_ns > end_ns:
            return False
        return True

    def __str__(self) -> str:
        if self.first_seq == self.last_seq:
            span = f"seq {self.first_seq}"
        else:
            span = f"seqs {self.first_seq}-{self.last_seq}"
        before = "start" if self.before_ns is None else f"{self.before_ns}ns"
        after = "end" if self.after_ns is None else f"{self.after_ns}ns"
        return f"gap of {self.count} ({span}) between {before} and {after}"


@dataclass
class PacketTrace:
    """The reconstructed, time-ordered view of everything on the wire.

    Lookups are index-backed: analyzers call :meth:`find` per packet
    (the Go-back-N checker resolves every (PSN, ITER) identity), so a
    linear scan would make checking quadratic in trace length. The
    indexes are built lazily on first use — a trace is immutable once
    reconstructed — and cover per-connection packet lists plus the
    (connection, PSN, ITER) identity map.
    """

    packets: List[TracePacket] = field(default_factory=list)
    #: How many packets the switch claims to have mirrored; bounds the
    #: mirror-seq space for gap detection (None = trust the trace).
    expected_packets: Optional[int] = None
    _by_conn: Optional[Dict[Tuple[int, int, int], List[TracePacket]]] = \
        field(default=None, repr=False, compare=False)
    _by_identity: Optional[Dict[Tuple, TracePacket]] = \
        field(default=None, repr=False, compare=False)
    _gaps: Optional[List[TraceGap]] = \
        field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self):
        return iter(self.packets)

    def _index(self) -> Dict[Tuple[int, int, int], List[TracePacket]]:
        if self._by_conn is None:
            by_conn: Dict[Tuple[int, int, int], List[TracePacket]] = {}
            by_identity: Dict[Tuple, TracePacket] = {}
            for pkt in self.packets:
                by_conn.setdefault(pkt.conn_key, []).append(pkt)
                # First match wins, like the original scan did.
                by_identity.setdefault(
                    (pkt.conn_key, pkt.psn, pkt.iteration), pkt)
            self._by_conn = by_conn
            self._by_identity = by_identity
        return self._by_conn

    def connections(self) -> List[Tuple[int, int, int]]:
        """Directed connection keys present, in first-seen order."""
        return list(self._index())

    def for_connection(self, conn_key: Tuple[int, int, int]) -> List[TracePacket]:
        return list(self._index().get(conn_key, ()))

    def data_packets(self, conn_key: Optional[Tuple[int, int, int]] = None
                     ) -> List[TracePacket]:
        return [p for p in self.packets
                if p.is_data and (conn_key is None or p.conn_key == conn_key)]

    def by_opcode(self, *opcodes: Opcode) -> List[TracePacket]:
        wanted = set(opcodes)
        return [p for p in self.packets if p.opcode in wanted]

    def cnps(self) -> List[TracePacket]:
        return self.by_opcode(Opcode.CNP)

    def acks(self) -> List[TracePacket]:
        return self.by_opcode(Opcode.ACKNOWLEDGE)

    def naks(self) -> List[TracePacket]:
        return [p for p in self.acks()
                if p.record.aeth is not None and p.record.aeth.is_nak]

    def find(self, conn_key: Tuple[int, int, int], psn: int,
             iteration: int = 1) -> Optional[TracePacket]:
        """The packet of a connection with the given (PSN, ITER) identity."""
        self._index()
        assert self._by_identity is not None
        return self._by_identity.get((conn_key, psn, iteration))

    def expected_icrcs(self) -> List[int]:
        """Batched clean iCRC for every packet in trace order.

        One :func:`repro.dumper.records.expected_icrcs` call over the
        whole trace — duplicate transport-header shapes (long trains of
        same-shaped data packets) collapse inside the batch instead of
        costing a cache probe each.
        """
        return expected_icrcs(p.record for p in self.packets)

    @property
    def gaps(self) -> List[TraceGap]:
        """Missing mirror-seq ranges, annotated with bounding timestamps.

        Packets arrive sorted by mirror sequence (reconstruct_trace
        guarantees it), so a single pass finds every hole. When the
        switch mirrored more packets than the trace holds, the shortfall
        shows up as a tail gap — the case the naive len()-based check
        was blind to.
        """
        if self._gaps is None:
            gaps: List[TraceGap] = []
            prev_seq = -1
            prev_ts: Optional[int] = None
            for pkt in self.packets:
                if pkt.mirror_seq > prev_seq + 1:
                    gaps.append(TraceGap(
                        first_seq=prev_seq + 1,
                        last_seq=pkt.mirror_seq - 1,
                        before_ns=prev_ts,
                        after_ns=pkt.timestamp_ns,
                    ))
                prev_seq = pkt.mirror_seq
                prev_ts = pkt.timestamp_ns
            if self.expected_packets is not None and prev_seq + 1 < self.expected_packets:
                gaps.append(TraceGap(
                    first_seq=prev_seq + 1,
                    last_seq=self.expected_packets - 1,
                    before_ns=prev_ts,
                    after_ns=None,
                ))
            self._gaps = gaps
        return self._gaps

    @property
    def has_gaps(self) -> bool:
        return bool(self.gaps)

    @property
    def coverage(self) -> float:
        """Fraction of the mirror-seq space present in the trace."""
        total = len(self.packets) + sum(g.count for g in self.gaps)
        if total == 0:
            return 1.0
        return len(self.packets) / total

    def gaps_overlap_window(self, start_ns: int, end_ns: int) -> bool:
        """Whether any capture gap could hide packets in [start, end]."""
        return any(g.overlaps(start_ns, end_ns) for g in self.gaps)

    def conn_coverage_ok(self, conn_key: Tuple[int, int, int]) -> bool:
        """Whether this connection's packets are provably all present.

        False when a gap's time window intersects the connection's
        lifetime, or when the connection is absent from a gapped trace
        (the gap itself could be hiding the whole connection).
        """
        if not self.gaps:
            return True
        pkts = self._index().get(conn_key)
        if not pkts:
            return False
        first = pkts[0].timestamp_ns
        last = pkts[-1].timestamp_ns
        return not self.gaps_overlap_window(first, last)


@dataclass
class IntegrityReport:
    """Result of the three-condition §3.5 integrity check."""

    seq_consecutive: bool
    mirror_count_matches: bool
    roce_count_matches: bool
    trace_packets: int
    mirrored_packets: int
    roce_rx_packets: int
    missing_seqs: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.seq_consecutive and self.mirror_count_matches
                and self.roce_count_matches)

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (f"integrity {status}: trace={self.trace_packets} "
                f"mirrored={self.mirrored_packets} roce_rx={self.roce_rx_packets} "
                f"missing={len(self.missing_seqs)}")


def format_trace(trace: PacketTrace, limit: Optional[int] = None,
                 conn_key: Optional[Tuple[int, int, int]] = None) -> str:
    """Render a trace as tcpdump-style text (debugging / examples).

    One line per packet: switch timestamp, mirror sequence, addresses,
    opcode, PSN, offline-derived ITER and any injected event.
    """
    from ..net.addressing import int_to_ip

    lines = []
    shown = 0
    for pkt in trace:
        if conn_key is not None and pkt.conn_key != conn_key:
            continue
        if limit is not None and shown >= limit:
            lines.append(f"... ({len(trace) - shown} more packets)")
            break
        shown += 1
        record = pkt.record
        event = ""
        if pkt.event_type != EventType.NONE:
            event = f"  [{record.event_name.upper()}]"
        extra = ""
        if record.aeth is not None:
            if record.aeth.is_nak:
                extra = " NAK"
            elif record.aeth.is_rnr:
                extra = " RNR"
            elif pkt.opcode == Opcode.ACKNOWLEDGE:
                extra = " ACK"
        lines.append(
            f"{pkt.timestamp_ns / 1e3:12.3f}us #{pkt.mirror_seq:<6d} "
            f"{int_to_ip(record.ip.src_ip):>11s} > "
            f"{int_to_ip(record.ip.dst_ip):<11s} "
            f"{pkt.opcode.name:<26s} psn={pkt.psn:<8d} "
            f"iter={pkt.iteration}{extra}{event}"
        )
    return "\n".join(lines)


def reconstruct_trace(records: Iterable[DumpRecord],
                      expected_packets: Optional[int] = None) -> PacketTrace:
    """Sort dumped records by mirror sequence and re-derive ITERs.

    ``expected_packets`` is the switch's mirrored-packet count; passing
    it lets the trace annotate *tail* losses (mirror seqs beyond the
    last captured packet) as gaps, which the trace alone cannot see.
    """
    parsed = sorted((parse_record(r) for r in records), key=lambda p: p.mirror_seq)
    tracker = IterTracker(max_connections=1_000_000)
    packets = []
    append = packets.append
    update = tracker.update
    for record in parsed:
        ip = record.ip
        bth = record.bth
        append(TracePacket(record,
                           update(ip.src_ip, ip.dst_ip, bth.dest_qp, bth.psn)))
    return PacketTrace(packets=packets, expected_packets=expected_packets)


def check_integrity(trace: PacketTrace, switch_counters: Dict) -> IntegrityReport:
    """Apply the three §3.5 conditions against the switch's counters.

    ``missing_seqs`` is computed against the switch's *mirrored* count,
    not the trace length: with seqs [0,1,2] and mirrored=5 the missing
    set is [3,4]. The old ``range(len(seqs))`` form could never report
    a tail loss — every lost-highest-seq capture looked gapless.
    """
    seqs = [p.mirror_seq for p in trace.packets]
    mirrored = int(switch_counters.get("mirrored_packets", 0))
    roce_rx = int(switch_counters.get("roce_rx_packets", 0))
    expected_count = mirrored if mirrored else len(seqs)
    missing = sorted(set(range(expected_count)) - set(seqs))
    consecutive = seqs == list(range(len(seqs))) and len(set(seqs)) == len(seqs)
    return IntegrityReport(
        seq_consecutive=consecutive,
        mirror_count_matches=(mirrored == len(seqs)),
        roce_count_matches=(roce_rx == len(seqs)),
        trace_packets=len(seqs),
        mirrored_packets=mirrored,
        roce_rx_packets=roce_rx,
        missing_seqs=missing,
    )
