"""Human-readable test reports.

Renders everything a single Lumina run produced — integrity verdict,
traffic metrics, analyzer outcomes and interesting counters — as plain
text, the way an operator would want to read it after a testbed run.
Used by the CLI (``python -m repro run``) and handy in notebooks.
"""

from __future__ import annotations

from typing import List

from ..net.addressing import int_to_ip
from .analyzers.base import AnalyzerContext
from .analyzers.goodput import mct_stats
from .analyzers.registry import get_analyzer
from .results import TestResult

__all__ = ["render_report", "render_fuzz_summary"]

_INTERESTING_COUNTERS = (
    "packet_seq_err", "out_of_sequence", "implied_nak_seq_err",
    "local_ack_timeout_err", "retransmitted_packets", "rx_icrc_errors",
    "rx_discards_phy", "cnp_sent", "cnp_handled", "nak_sent",
    "rnr_nak_sent", "qp_retry_exceeded",
)


def _section(title: str) -> List[str]:
    return ["", title, "-" * len(title)]


def render_report(result: TestResult) -> str:
    """Render one result as a multi-section plain-text report."""
    traffic = result.config.traffic
    ctx = AnalyzerContext.for_result(result)
    lines: List[str] = [
        "Lumina test report",
        "==================",
        f"verb={traffic.rdma_verb} connections={traffic.num_connections} "
        f"msgs/qp={traffic.num_msgs_per_qp} size={traffic.message_size}B "
        f"mtu={traffic.mtu} seed={result.config.seed}",
        f"requester: {result.requester_counters.nic_type}  "
        f"responder: {result.responder_counters.nic_type}",
        f"injected events: {len(traffic.data_pkt_events)} "
        f"(+{len(traffic.periodic_events)} periodic-ECN intents)",
        f"simulated duration: {result.duration_ns / 1e6:.3f} ms",
    ]

    lines += _section("Integrity (§3.5)")
    lines.append(result.integrity.summary())
    if result.dumper_discards:
        lines.append(f"WARNING: {result.dumper_discards} packets discarded "
                     f"by the dumper pool — capture incomplete")
    if result.trace.has_gaps:
        lines.append(f"trace coverage: {result.trace.coverage:.1%} "
                     f"({len(result.trace.gaps)} gap(s))")
        for gap in result.trace.gaps[:10]:
            lines.append(f"  {gap}")
        if len(result.trace.gaps) > 10:
            lines.append(f"  ... ({len(result.trace.gaps) - 10} more)")
    if len(result.attempts) > 1:
        lines.append(f"attempts: {len(result.attempts)} "
                     f"(integrity-driven retry, §3.5)")
        for record in result.attempts:
            status = "PASS" if record.ok else "FAIL"
            extra = (f", backoff {record.backoff_ns / 1e6:.1f} ms"
                     if record.backoff_ns else "")
            lines.append(f"  attempt {record.attempt}: integrity {status}, "
                         f"trace={record.trace_packets} "
                         f"discards={record.dumper_discards}{extra}")
    faults = result.config.measurement_faults
    if faults is not None and faults.injects_faults:
        lines.append("NOTE: measurement-plane faults were injected "
                     "(capture stress test)")

    lines += _section("Application metrics")
    stats = mct_stats(result.traffic_log.all_messages)
    lines.append(f"goodput: {result.traffic_log.total_goodput_bps() / 1e9:.2f} Gbps")
    if stats is not None:
        lines.append(f"MCT: mean {stats.mean_us:.1f} us, p50 "
                     f"{stats.p50_ns / 1e3:.1f} us, p99 {stats.p99_ns / 1e3:.1f} us, "
                     f"max {stats.max_ns / 1e3:.1f} us ({stats.count} messages)")
    if result.traffic_log.aborted_qps:
        lines.append(f"WARNING: {result.traffic_log.aborted_qps} QP(s) "
                     f"aborted (retry exhaustion)")

    lines += _section("Retransmission analysis (§4)")
    events = get_analyzer("retransmission").analyze(result.trace, ctx).data
    if not events:
        lines.append("no injected drops")
    for event in events:
        src, dst, qpn = event.conn_key
        kind = "fast retransmission" if event.fast_retransmission else "timeout"
        detail = f"drop psn={event.dropped_psn} iter={event.drop_iteration} " \
                 f"on {int_to_ip(src)}->{int_to_ip(dst)}: {kind}"
        if event.nack_generation_ns is not None:
            detail += f", NACK gen {event.nack_generation_ns / 1e3:.1f} us"
        if event.nack_reaction_ns is not None:
            detail += f", react {event.nack_reaction_ns / 1e3:.1f} us"
        if not event.recovered:
            detail += " — NOT RECOVERED"
        if not event.conclusive:
            detail += " [INCONCLUSIVE: capture gap in recovery window]"
        lines.append(detail)

    fsm = get_analyzer("gbn").analyze(result.trace, ctx).data
    lines += _section("Go-back-N logic check (§4)")
    if fsm.compliant:
        lines.append(f"compliant ({fsm.connections_checked} connections, "
                     f"{fsm.packets_checked} packets)")
    else:
        lines.append(f"{len(fsm.violations)} VIOLATION(S):")
        lines.extend(f"  {violation}" for violation in fsm.violations[:10])
    if not fsm.conclusive:
        lines.append(f"INCONCLUSIVE: {len(fsm.inconclusive_connections)} "
                     f"connection(s) skipped — capture gaps overlap their "
                     f"window")

    cnps = get_analyzer("cnp").analyze(result.trace, ctx).data
    if cnps.total_cnps or cnps.total_ecn_marked:
        lines += _section("Congestion notification (§4)")
        lines.append(f"ECN-marked data packets: {cnps.total_ecn_marked}, "
                     f"CNPs: {cnps.total_cnps}, spurious: {cnps.spurious_cnps}")
        if not cnps.conclusive:
            lines.append("INCONCLUSIVE: capture gaps — counts are lower "
                         "bounds, spurious CNPs may have visible causes "
                         "lost from the trace")

    counter_report = get_analyzer("counters").analyze(result.trace, ctx).data
    lines += _section("Counter check (§4)")
    if not counter_report.conclusive:
        lines.append("INCONCLUSIVE: capture gaps make trace-derived "
                     "expectations unreliable; no counters checked")
    elif counter_report.consistent:
        lines.append(f"all {counter_report.checked} checked counters "
                     f"consistent with the trace")
    else:
        lines.append("COUNTER BUGS:")
        lines.extend(f"  {mismatch}" for mismatch in counter_report.mismatches)

    lines += _section("Counters (vendor names)")
    from ..rdma.profiles import get_profile

    for host in (result.requester_counters, result.responder_counters):
        names = get_profile(host.nic_type).counter_names
        shown = [f"{names.get(c, c)}={host.canonical.get(c, 0)}"
                 for c in _INTERESTING_COUNTERS if host.canonical.get(c, 0)]
        lines.append(f"{host.host} ({host.nic_type}): "
                     + (", ".join(shown) if shown else "all quiet"))

    if result.coverage is not None:
        # Conditional section: coverage-off reports stay byte-identical
        # to the pre-coverage format.
        from ..coverage.domains import DOMAINS
        from ..coverage.report import summarize_points

        lines += _section("Micro-behavior coverage")
        summary = summarize_points(result.coverage)
        for domain in sorted(DOMAINS):
            row = summary.get(domain)
            hit = row["hit"] if row else 0
            known = row["known"] if row else len(DOMAINS[domain])
            hits = row["hits"] if row else 0
            lines.append(f"{domain:<18s} {hit:>3d}/{known:<3d} points, "
                         f"{hits} hit(s)")
        if result.flight_record:
            lines.append(f"flight record: {len(result.flight_record)} "
                         f"event(s) captured (see --coverage dump)")

    return "\n".join(lines) + "\n"


def render_fuzz_summary(report) -> str:
    """The fuzz command's deterministic summary of one FuzzReport.

    The single rendering path for ``python -m repro fuzz``, the campaign
    service and the api facade — a campaign executed through any of them
    yields a byte-identical summary document.
    """
    lines = [f"iterations: {report.iterations_run}  "
             f"findings: {len(report.findings)}  "
             f"invalid: {report.invalid_runs}"]
    lines.extend("  " + finding.summary() for finding in report.findings)
    if report.coverage_growth:
        lines.append("coverage growth:")
        lines.extend(
            f"  gen {row['generation']:>3d}: +{row['new-points']} point(s), "
            f"{row['total-points']} total"
            for row in report.coverage_growth)
    if report.rediscoveries:
        lines.append(f"dedup: {report.rediscoveries} anomalous re-run(s) "
                     f"collapsed into {len(report.findings)} finding(s)")
        lines.append(f"  {'iter':>4s} {'count':>5s} {'score':>7s}  anomaly")
        lines.extend(
            f"  {f.iteration:>4d} {f.count:>5d} {f.score.total:>7.1f}  "
            + (f.score.anomalies[0] if f.score.anomalies else "-")
            for f in report.findings)
    if report.pool_evictions:
        lines.append(f"corpus: {report.pool_evictions} dominated pool "
                     "entries evicted")
    return "\n".join(lines) + "\n"
