"""Conformance suite: a standardised battery of Lumina tests.

The paper closes by arguing the community needs "a comprehensive suite
of testing tools and an ImageNet-like benchmark" for hardware network
stacks (§1). This module is that benchmark for the simulated testbed: a
fixed battery of scenarios, each with a spec-derived pass criterion,
run against any NIC model to produce a scorecard.

Checks are wire-evidence only (trace + counters + app metrics), so the
same battery would be meaningful against real hardware:

==============================  ==========================================
check                           what passes
==============================  ==========================================
gbn-logic                       Go-back-N FSM compliance under drops
fast-retransmission             loss recovered via NACK, not timeout
recovery-latency                total recovery within budget (100 µs)
read-loss-recovery              OOO Read responses recovered promptly
tail-drop-timeout               last-packet drop recovered by RTO
corruption-detection            iCRC failures detected and recovered
counter-consistency             counters match the wire trace
cnp-generation                  marks produce CNPs; none spurious
cnp-interval-honoured           configured CNP interval respected
ets-work-conservation           idle-queue bandwidth is redistributed
isolation-under-read-loss       innocent flows unaffected by others' drops
timeout-spec-compliance         RTO ≈ 4.096 µs · 2^timeout, retries exact
reorder-tolerance               reordering recovered without a timeout
rnr-flow-control                Sends without recv WQEs RNR-NAK, then finish
==============================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

if TYPE_CHECKING:  # avoid a runtime core -> exec/store import cycle
    from ..exec.runner import ParallelRunner
    from ..faults.scenarios import FaultScenario
    from ..store.index import CampaignStore

from ..coverage import runtime as coverage
from .analyzers.base import AnalyzerContext, AnalyzerResult, Outcome
from .analyzers.cnp import min_cnp_interval_ns
from .analyzers.goodput import per_qp_goodput_gbps, split_mct
from .analyzers.registry import get_analyzer
from .config import (
    DataPacketEvent,
    DumperPoolConfig,
    EtsConfig,
    EtsQueueSpec,
    HostConfig,
    PeriodicEcnIntent,
    RoceParameters,
    TestConfig,
    TrafficConfig,
)
from .orchestrator import run_test
from .results import TestResult

__all__ = ["Outcome", "CheckResult", "Scorecard", "COVERAGE",
           "run_conformance_suite", "run_single_check", "CHECKS",
           "DEFAULT_SUITE_SEED"]

#: The battery's canonical seed. Every front-end (CLI, api facade,
#: examples) that wants "the standard scorecard" resolves a missing
#: seed to this one value — the 77-vs-None divergence between entry
#: points is gone.
DEFAULT_SUITE_SEED = 77


# Outcome now lives with the analyzer protocol (analyzers.base) and is
# re-exported here unchanged for every existing ``suite.Outcome`` user.


def _analyze(name: str, result: TestResult) -> AnalyzerResult:
    """Run one registered analyzer over a finished test."""
    return get_analyzer(name).analyze(result.trace,
                                      AnalyzerContext.for_result(result))


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str
    outcome: Optional[Outcome] = None
    #: Micro-behavior coverage recorded while this check ran (snapshot
    #: rows); None when coverage was disabled.
    coverage: Optional[List[list]] = None
    #: Flight-recorder timeline, attached only when the check did not
    #: PASS (FAIL or INCONCLUSIVE verdicts get a dump, §3.5 spirit).
    flight_record: Optional[List[list]] = None

    def __post_init__(self) -> None:
        if self.outcome is None:
            self.outcome = Outcome.PASS if self.passed else Outcome.FAIL

    @classmethod
    def inconclusive(cls, name: str, detail: str) -> "CheckResult":
        return cls(name, False, detail, outcome=Outcome.INCONCLUSIVE)

    @property
    def is_inconclusive(self) -> bool:
        return self.outcome is Outcome.INCONCLUSIVE

    def __str__(self) -> str:
        status = self.outcome.value if self.outcome else (
            "PASS" if self.passed else "FAIL")
        return f"[{status}] {self.name:<28s} {self.detail}"


@dataclass
class Scorecard:
    nic: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.outcome is Outcome.PASS)

    @property
    def inconclusive(self) -> int:
        return sum(1 for r in self.results if r.is_inconclusive)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total

    def failures(self) -> List[CheckResult]:
        """Checks that genuinely failed (INCONCLUSIVE is not failure)."""
        return [r for r in self.results if r.outcome is Outcome.FAIL]

    def inconclusives(self) -> List[CheckResult]:
        return [r for r in self.results if r.is_inconclusive]

    def render(self) -> str:
        header = (f"Conformance scorecard: {self.nic} "
                  f"({self.passed}/{self.total} checks passed")
        if self.inconclusive:
            header += f", {self.inconclusive} inconclusive"
        header += ")"
        lines = [header, "=" * 60]
        lines.extend(str(r) for r in self.results)
        return "\n".join(lines)


def _config(nic: str, traffic: TrafficConfig, seed: int,
            roce: Optional[RoceParameters] = None,
            max_duration_ns: int = 60_000_000_000,
            faults: Optional["FaultScenario"] = None) -> TestConfig:
    roce = roce or RoceParameters()
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",), roce=roce),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",), roce=roce),
        traffic=traffic,
        dumpers=DumperPoolConfig(num_servers=3),
        seed=seed,
        max_duration_ns=max_duration_ns,
    )
    if faults is not None:
        config = faults.apply(config)
    return config


def _drop_run(nic: str, verb: str, seed: int,
              faults: Optional["FaultScenario"] = None) -> TestResult:
    traffic = TrafficConfig(
        num_connections=1, rdma_verb=verb, num_msgs_per_qp=2,
        message_size=102400, mtu=1024, min_retransmit_timeout=17,
        data_pkt_events=(DataPacketEvent(qpn=1, psn=50, type="drop"),),
    )
    return run_test(_config(nic, traffic, seed, faults=faults))


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------

def check_gbn_logic(nic: str, seed: int,
                    faults: Optional["FaultScenario"] = None) -> CheckResult:
    result = _drop_run(nic, "write", seed, faults)
    report = _analyze("gbn", result).data
    if not report.conclusive:
        return CheckResult.inconclusive(
            "gbn-logic",
            f"capture gaps overlap {len(report.inconclusive_connections)} "
            f"connection(s); coverage {result.trace.coverage:.1%}")
    return CheckResult(
        "gbn-logic", report.compliant,
        f"{report.packets_checked} packets checked, "
        f"{len(report.violations)} violation(s)")


def check_fast_retransmission(nic: str, seed: int,
                              faults: Optional["FaultScenario"] = None,
                              ) -> CheckResult:
    result = _drop_run(nic, "write", seed, faults)
    events = _analyze("retransmission", result).data
    if (not events and result.trace.has_gaps) or \
            (events and not events[0].conclusive):
        return CheckResult.inconclusive(
            "fast-retransmission",
            f"capture gaps overlap the recovery window; "
            f"coverage {result.trace.coverage:.1%}")
    ok = bool(events) and events[0].fast_retransmission and events[0].recovered
    return CheckResult("fast-retransmission", ok,
                       "recovered via NACK" if ok else "timeout or unrecovered")


def check_recovery_latency(nic: str, seed: int,
                           faults: Optional["FaultScenario"] = None,
                           budget_ns: int = 100_000) -> CheckResult:
    result = _drop_run(nic, "write", seed, faults)
    events = _analyze("retransmission", result).data
    if (not events and result.trace.has_gaps) or \
            (events and not events[0].conclusive):
        return CheckResult.inconclusive(
            "recovery-latency",
            f"capture gaps overlap the recovery window; "
            f"coverage {result.trace.coverage:.1%}")
    if not events:
        return CheckResult("recovery-latency", False,
                           "no drop event observed in the trace")
    event = events[0]
    total = event.total_recovery_ns or 0
    return CheckResult(
        "recovery-latency", bool(total) and total <= budget_ns,
        f"total {total / 1e3:.1f} us (budget {budget_ns / 1e3:.0f} us)")


def check_read_loss_recovery(nic: str, seed: int,
                             faults: Optional["FaultScenario"] = None,
                             budget_ns: int = 1_000_000) -> CheckResult:
    result = _drop_run(nic, "read", seed, faults)
    events = _analyze("retransmission", result).data
    if (not events and result.trace.has_gaps) or \
            (events and not events[0].conclusive):
        return CheckResult.inconclusive(
            "read-loss-recovery",
            f"capture gaps overlap the recovery window; "
            f"coverage {result.trace.coverage:.1%}")
    if not events:
        return CheckResult("read-loss-recovery", False,
                           "no drop event observed in the trace")
    event = events[0]
    total = event.total_recovery_ns or 0
    ok = event.recovered and total <= budget_ns
    return CheckResult(
        "read-loss-recovery", ok,
        f"total {total / 1e3:.1f} us (budget {budget_ns / 1e3:.0f} us)")


def check_tail_drop_timeout(nic: str, seed: int,
                            faults: Optional["FaultScenario"] = None,
                            ) -> CheckResult:
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=1,
        message_size=4096, mtu=1024, min_retransmit_timeout=10,
        data_pkt_events=(DataPacketEvent(qpn=1, psn=4, type="drop"),),
    )
    result = run_test(_config(nic, traffic, seed, faults=faults))
    timeouts = result.requester_counters["local_ack_timeout_err"]
    done = all(m.ok for m in result.traffic_log.all_messages)
    return CheckResult("tail-drop-timeout", done and timeouts >= 1,
                       f"{timeouts} timeout(s), "
                       f"{'completed' if done else 'stuck'}")


def check_corruption_detection(nic: str, seed: int,
                               faults: Optional["FaultScenario"] = None,
                               ) -> CheckResult:
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=2,
        message_size=10240, mtu=1024,
        data_pkt_events=(DataPacketEvent(qpn=1, psn=3, type="corrupt"),),
    )
    result = run_test(_config(nic, traffic, seed, faults=faults))
    detected = result.responder_counters["rx_icrc_errors"] == 1
    done = all(m.ok for m in result.traffic_log.all_messages)
    return CheckResult("corruption-detection", detected and done,
                       f"icrc_errors={result.responder_counters['rx_icrc_errors']}, "
                       f"{'recovered' if done else 'stuck'}")


def check_counter_consistency(nic: str, seed: int,
                              faults: Optional["FaultScenario"] = None,
                              ) -> CheckResult:
    mismatches: List[str] = []
    for verb, event in (("write", DataPacketEvent(1, 3, "ecn")),
                        ("read", DataPacketEvent(1, 2, "drop"))):
        traffic = TrafficConfig(num_connections=1, rdma_verb=verb,
                                num_msgs_per_qp=2, message_size=10240,
                                mtu=1024, data_pkt_events=(event,))
        report = _analyze(
            "counters",
            run_test(_config(nic, traffic, seed, faults=faults))).data
        if not report.conclusive:
            return CheckResult.inconclusive(
                "counter-consistency",
                "capture gaps: trace-derived expectations unreliable")
        mismatches.extend(str(m) for m in report.mismatches)
    return CheckResult("counter-consistency", not mismatches,
                       mismatches[0] if mismatches else "all consistent")


def check_cnp_generation(nic: str, seed: int,
                         faults: Optional["FaultScenario"] = None,
                         ) -> CheckResult:
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=2,
        message_size=10240, mtu=1024,
        data_pkt_events=(DataPacketEvent(qpn=1, psn=3, type="ecn"),),
    )
    result = run_test(_config(nic, traffic, seed, faults=faults))
    report = _analyze("cnp", result).data
    if not report.conclusive:
        return CheckResult.inconclusive(
            "cnp-generation",
            f"capture gaps: a lost clone may hide a mark or CNP; "
            f"coverage {result.trace.coverage:.1%}")
    ok = report.total_cnps >= 1 and report.spurious_cnps == 0
    return CheckResult("cnp-generation", ok,
                       f"{report.total_cnps} CNP(s) for "
                       f"{report.total_ecn_marked} mark(s), "
                       f"{report.spurious_cnps} spurious")


def check_cnp_interval(nic: str, seed: int,
                       faults: Optional["FaultScenario"] = None,
                       configured_us: int = 8) -> CheckResult:
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=10,
        message_size=102400, mtu=1024, barrier_sync=False, tx_depth=4,
        periodic_events=(PeriodicEcnIntent(qpn=1, period=1),),
    )
    roce = RoceParameters(dcqcn_rp_enable=False,
                          min_time_between_cnps_us=configured_us)
    result = run_test(_config(nic, traffic, seed, roce=roce, faults=faults))
    if result.trace.has_gaps:
        # A CNP lost from the capture *lengthens* observed intervals,
        # so a gapped trace could false-PASS this check.
        return CheckResult.inconclusive(
            "cnp-interval-honoured",
            f"capture gaps: missing CNPs would inflate the measured "
            f"floor; coverage {result.trace.coverage:.1%}")
    interval = min_cnp_interval_ns(result.trace)
    ok = interval is not None and interval >= configured_us * 1000 * 0.9
    detail = (f"min observed {interval / 1e3:.1f} us "
              f"(configured {configured_us} us)" if interval else "no CNPs")
    return CheckResult("cnp-interval-honoured", ok, detail)


def check_ets_work_conservation(nic: str, seed: int,
                                faults: Optional["FaultScenario"] = None,
                                ) -> CheckResult:
    from ..rdma.profiles import get_profile

    line = get_profile(nic).default_bandwidth_gbps
    traffic = TrafficConfig(
        num_connections=2, rdma_verb="write", num_msgs_per_qp=8,
        message_size=256 * 1024, mtu=1024, barrier_sync=False, tx_depth=2,
        periodic_events=(PeriodicEcnIntent(qpn=1, period=50),),
        ets=EtsConfig(queues=(EtsQueueSpec(0, 50.0), EtsQueueSpec(1, 50.0)),
                      qp_to_queue={1: 0, 2: 1}),
    )
    result = run_test(_config(nic, traffic, seed, faults=faults))
    goodput = per_qp_goodput_gbps(result.traffic_log)
    ok = goodput[2] > 0.62 * line
    return CheckResult("ets-work-conservation", ok,
                       f"idle-queue bandwidth: QP1 got {goodput[2]:.1f} of "
                       f"{line:.0f} Gbps")


def check_isolation_under_read_loss(nic: str, seed: int,
                                    faults: Optional["FaultScenario"] = None,
                                    ) -> CheckResult:
    events = tuple(DataPacketEvent(qpn=q + 1, psn=5, type="drop")
                   for q in range(12))
    traffic = TrafficConfig(num_connections=24, rdma_verb="read",
                            num_msgs_per_qp=3, message_size=20480, mtu=1024,
                            barrier_sync=True, data_pkt_events=events)
    result = run_test(_config(nic, traffic, seed, faults=faults))
    parts = split_mct(result.traffic_log, list(range(1, 13)))
    innocent = parts["others"]
    ok = innocent is not None and innocent.max_ns < 1_000_000
    detail = (f"innocent max MCT {innocent.max_ns / 1e6:.2f} ms, "
              f"rx_discards={result.requester_counters['rx_discards_phy']}"
              if innocent else "no innocent flows completed")
    return CheckResult("isolation-under-read-loss", ok, detail)


def check_timeout_spec(nic: str, seed: int,
                       faults: Optional["FaultScenario"] = None) -> CheckResult:
    # Drop the last packet 3 times with timeout=10 (4.19 ms): each gap
    # must be the configured RTO and retries must not exceed budget.
    events = tuple(DataPacketEvent(qpn=1, psn=10, type="drop", iter=i)
                   for i in range(1, 4))
    traffic = TrafficConfig(num_connections=1, rdma_verb="write",
                            num_msgs_per_qp=1, message_size=10240, mtu=1024,
                            min_retransmit_timeout=10, max_retransmit_retry=7,
                            data_pkt_events=events)
    result = run_test(_config(nic, traffic, seed, faults=faults))
    meta = result.metadata[0]
    conn = (meta.requester_ip, meta.responder_ip, meta.responder_qpn)
    if not result.trace.conn_coverage_ok(conn):
        # A lost clone of any reappearance corrupts the RTO ladder.
        return CheckResult.inconclusive(
            "timeout-spec-compliance",
            f"capture gaps overlap the retransmission ladder; "
            f"coverage {result.trace.coverage:.1%}")
    last_psn = (meta.requester_ipsn + 9) & 0xFFFFFF
    appearances = [p for p in result.trace.data_packets(conn)
                   if p.psn == last_psn]
    gaps_ms = [(b.timestamp_ns - a.timestamp_ns) / 1e6
               for a, b in zip(appearances, appearances[1:])]
    expected_ms = 4096 * (2 ** 10) / 1e6
    ok = bool(gaps_ms) and all(abs(g - expected_ms) < expected_ms * 0.1
                               for g in gaps_ms)
    return CheckResult("timeout-spec-compliance", ok,
                       f"RTOs {['%.2f' % g for g in gaps_ms]} ms "
                       f"(spec {expected_ms:.2f} ms)")


def check_reorder_tolerance(nic: str, seed: int,
                            faults: Optional["FaultScenario"] = None,
                            ) -> CheckResult:
    """§7 extension event: a reordered packet must not cost a timeout."""
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=2,
        message_size=10240, mtu=1024,
        data_pkt_events=(DataPacketEvent(qpn=1, psn=3, type="reorder"),),
    )
    result = run_test(_config(nic, traffic, seed, faults=faults))
    done = all(m.ok for m in result.traffic_log.all_messages)
    timeouts = result.requester_counters["local_ack_timeout_err"]
    return CheckResult("reorder-tolerance", done and timeouts == 0,
                       f"{'recovered' if done else 'stuck'}, "
                       f"{timeouts} timeout(s)")


def check_rnr_flow_control(nic: str, seed: int,
                           faults: Optional["FaultScenario"] = None,
                           ) -> CheckResult:
    """RC flow control: Sends without receive WQEs must RNR-NAK, then
    complete once WQEs appear — without exploding into a retry storm.

    Drives the testbed directly (no trace involved), so measurement
    faults cannot make it inconclusive."""
    from .. import quick_config
    from ..rdma.verbs import CompletionQueue, Verb, WcStatus, WorkRequest
    from .testbed import build_testbed

    testbed = build_testbed(quick_config(nic=nic, seed=seed))
    req_cq, resp_cq = CompletionQueue(), CompletionQueue()
    req = testbed.requester.nic.create_qp(req_cq, testbed.requester.ips[0])
    resp = testbed.responder.nic.create_qp(resp_cq, testbed.responder.ips[0])
    req.connect(testbed.responder.ips[0], resp.qp_num, resp.initial_psn)
    resp.connect(testbed.requester.ips[0], req.qp_num, req.initial_psn)
    resp.auto_recv = False
    req.rnr_timer_ns = 10_000
    req.post_send(WorkRequest(verb=Verb.SEND, length=2048))
    testbed.sim.run_for(25_000)
    rnr_naks = testbed.responder.nic.counters["rnr_nak_sent"]
    resp.post_recv(1)
    testbed.sim.run()
    completions = req_cq.poll()
    ok = (rnr_naks >= 1 and completions
          and completions[0].status is WcStatus.SUCCESS)
    return CheckResult("rnr-flow-control", bool(ok),
                       f"{rnr_naks} RNR NAK(s), "
                       f"{'completed after post_recv' if ok else 'failed'}")


CHECKS: Dict[str, Callable[..., CheckResult]] = {
    "gbn-logic": check_gbn_logic,
    "fast-retransmission": check_fast_retransmission,
    "recovery-latency": check_recovery_latency,
    "read-loss-recovery": check_read_loss_recovery,
    "tail-drop-timeout": check_tail_drop_timeout,
    "corruption-detection": check_corruption_detection,
    "counter-consistency": check_counter_consistency,
    "cnp-generation": check_cnp_generation,
    "cnp-interval-honoured": check_cnp_interval,
    "ets-work-conservation": check_ets_work_conservation,
    "isolation-under-read-loss": check_isolation_under_read_loss,
    "timeout-spec-compliance": check_timeout_spec,
    "reorder-tolerance": check_reorder_tolerance,
    "rnr-flow-control": check_rnr_flow_control,
}

#: What trace coverage each check needs before it can rule PASS/FAIL.
#: ``full-trace`` — any gap invalidates the verdict; ``connection`` —
#: only gaps overlapping the inspected connection's window matter;
#: ``event-window`` — only gaps overlapping the injected event's
#: recovery window matter; ``none`` — the check is counters/app-metrics
#: only and survives arbitrary capture loss.
COVERAGE: Dict[str, str] = {
    "gbn-logic": "connection",
    "fast-retransmission": "event-window",
    "recovery-latency": "event-window",
    "read-loss-recovery": "event-window",
    "tail-drop-timeout": "none",
    "corruption-detection": "none",
    "counter-consistency": "full-trace",
    "cnp-generation": "full-trace",
    "cnp-interval-honoured": "full-trace",
    "ets-work-conservation": "none",
    "isolation-under-read-loss": "none",
    "timeout-spec-compliance": "connection",
    "reorder-tolerance": "none",
    "rnr-flow-control": "none",
}


def _resolve_faults(faults: Optional[Union[str, "FaultScenario"]]
                    ) -> Optional["FaultScenario"]:
    if faults is None or not isinstance(faults, str):
        return faults
    from ..faults.scenarios import get_scenario

    return get_scenario(faults)


def _check_fingerprint(name: str, nic: str, seed: int,
                       scenario: Optional["FaultScenario"]) -> str:
    """Store address of one check verdict: battery inputs + NIC profile."""
    from ..rdma.profiles import PROFILES
    from ..store.fingerprint import canonicalize, fingerprint

    payload = {
        "check": name,
        "nic": nic.lower(),
        "seed": seed,
        "faults": canonicalize(scenario),
        "profile": canonicalize(PROFILES[nic.lower()]),
    }
    if coverage.active() is not None:
        # Coverage-annotated verdicts live at their own address, so a
        # coverage-off replay never serves a map-less cached verdict.
        payload["coverage"] = True
    return fingerprint("check", payload)


def run_single_check(name: str, nic: str, seed: int,
                     scenario: Optional["FaultScenario"] = None,
                     ) -> CheckResult:
    """Run one battery check, recording coverage when enabled.

    The single execution path for serial suites and pool workers alike:
    the check runs inside its own coverage scope, whose snapshot rides
    on the :class:`CheckResult`. A non-PASS verdict additionally carries
    the flight-recorder timeline for the anomaly dump.
    """
    cov = coverage.active()
    if cov is None:
        return CHECKS[name](nic, seed, scenario)
    cov.reset_recorders()
    cov.push_scope()
    try:
        result = CHECKS[name](nic, seed, scenario)
    finally:
        check_map = cov.pop_scope()
    result.coverage = check_map.snapshot()
    if result.outcome is not Outcome.PASS:
        result.flight_record = cov.flight_snapshot()
    return result


def run_conformance_suite(nic: str, seed: Optional[int] = None,
                          checks: Optional[List[str]] = None,
                          workers: int = 1,
                          runner: Optional["ParallelRunner"] = None,
                          faults: Optional[Union[str, "FaultScenario"]] = None,
                          store: Optional["CampaignStore"] = None,
                          ) -> Scorecard:
    """Run the standard battery (or a subset) against one NIC model.

    ``seed=None`` resolves to :data:`DEFAULT_SUITE_SEED` — the single
    source of truth for the battery's canonical seed.

    Checks are independent (each builds its own testbed from the same
    seed), so with ``workers > 1`` they execute on a
    :class:`repro.exec.ParallelRunner` process pool. The scorecard is
    identical for any worker count: results keep battery order and
    each check's verdict depends only on ``(nic, seed)``. A check
    whose *execution* dies (worker lost and unrecoverable) reports as
    a failed check rather than aborting the battery.

    ``faults`` (a scenario name or :class:`FaultScenario`) runs every
    check under injected measurement-plane faults: trace-based checks
    whose inspected window is hit by a capture gap come back
    INCONCLUSIVE instead of a false verdict (see ``COVERAGE``).

    ``store`` (a :class:`repro.store.CampaignStore`) replays cached
    verdicts instead of re-running checks: each verdict is keyed by
    (check, nic, seed, fault scenario, NIC profile, code version), so
    a repeated battery is near-instant while any input change forces a
    re-run. Execution *failures* are never cached.
    """
    if seed is None:
        seed = DEFAULT_SUITE_SEED
    selected = checks or list(CHECKS)
    unknown = set(selected) - set(CHECKS)
    if unknown:
        raise KeyError(f"unknown checks: {sorted(unknown)}")
    scenario = _resolve_faults(faults)
    card = Scorecard(nic=nic)
    results: Dict[str, CheckResult] = {}
    fps: Dict[str, str] = {}
    pending = list(selected)
    if store is not None:
        from ..store.serialize import decode_check_result

        pending = []
        for name in selected:
            fps[name] = _check_fingerprint(name, nic, seed, scenario)
            cached = store.get(fps[name])
            if cached is not None:
                results[name] = decode_check_result(cached)
            else:
                pending.append(name)

    def _record(name: str, result: CheckResult, cacheable: bool) -> None:
        results[name] = result
        if store is not None and cacheable:
            from ..store.serialize import encode_check_result

            store.put(fps[name], "check", encode_check_result(result))

    if pending and workers <= 1 and runner is None:
        for name in pending:
            _record(name, run_single_check(name, nic, seed, scenario), True)
    elif pending:
        from ..exec import ParallelRunner
        from ..exec.tasks import run_check_task

        owns_runner = runner is None
        if owns_runner:
            runner = ParallelRunner(run_check_task, workers=workers)
        try:
            payloads = []
            for name in pending:
                payload: Dict[str, object] = {"check": name, "nic": nic,
                                              "seed": seed}
                if scenario is not None:
                    # FaultScenario is a frozen dataclass: pickles fine,
                    # so ad-hoc scenarios work across the pool, not just
                    # named presets.
                    payload["faults"] = scenario
                payloads.append(payload)
            outcomes = runner.map(payloads)
        finally:
            if owns_runner:
                runner.close()
        for name, outcome in zip(pending, outcomes):
            if outcome.ok:
                _record(name, outcome.value, True)
            else:
                _record(name, CheckResult(
                    name, False, f"execution failed: {outcome.error}"), False)
    card.results = [results[name] for name in selected]
    cov = coverage.active()
    if cov is not None:
        # Fold each check's map into the session in battery order — the
        # same route for serial, pooled and store-replayed verdicts, so
        # the session map is byte-identical for any worker count.
        for check in card.results:
            if check.coverage:
                cov.merge_snapshot(check.coverage)
    return card
