"""Predefined fuzzing targets (§4: general vs specific targets).

Algorithm 1 takes a *target* that shapes the initial pool and the
scoring weights — "finding bugs in a network setting with 0.1% loss
rate" is general; "finding potential bugs where packet loss in one
connection affects other co-existing connections" is specific and has
a smaller search space. These presets package the targets used in the
paper's case studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import (
    DataPacketEvent,
    DumperPoolConfig,
    HostConfig,
    TestConfig,
    TrafficConfig,
)
from .fuzzer import LuminaFuzzer
from .score import ScoreWeights

__all__ = ["FuzzTarget", "TARGETS", "make_fuzzer"]


@dataclass(frozen=True)
class FuzzTarget:
    """A named search objective: seed pool + scoring emphasis."""

    name: str
    description: str
    weights: ScoreWeights
    anomaly_threshold: float
    #: Coverage-guided fitness knobs (used only when a coverage session
    #: is live): bonus per never-seen coverage point, bonus scale for
    #: rare points, and the minimized-corpus bound.
    novelty_first_bonus: float = 2.0
    novelty_rare_bonus: float = 1.0
    max_pool_size: int = 64

    def initial_pool(self) -> List[TrafficConfig]:
        raise NotImplementedError


class _GeneralTarget(FuzzTarget):
    """Anything anomalous under light loss (the paper's general example)."""

    def initial_pool(self) -> List[TrafficConfig]:
        pool = []
        for verb in ("write", "read", "send"):
            pool.append(TrafficConfig(
                num_connections=2, rdma_verb=verb, num_msgs_per_qp=3,
                message_size=10240, mtu=1024,
                data_pkt_events=(DataPacketEvent(1, 5, "drop"),),
            ))
        pool.append(TrafficConfig(
            num_connections=2, rdma_verb="write", num_msgs_per_qp=3,
            message_size=10240, mtu=1024,
            data_pkt_events=(DataPacketEvent(1, 3, "ecn"),),
        ))
        return pool


class _NoisyNeighborTarget(FuzzTarget):
    """Cross-connection interference (the paper's specific example)."""

    def initial_pool(self) -> List[TrafficConfig]:
        pool = []
        for conns in (16, 24):
            pool.append(TrafficConfig(
                num_connections=conns, rdma_verb="read", num_msgs_per_qp=3,
                message_size=20480, mtu=1024,
                data_pkt_events=tuple(
                    DataPacketEvent(q + 1, 5, "drop")
                    for q in range(conns // 3)),
            ))
        return pool


class _CounterBugTarget(FuzzTarget):
    """Counters that disagree with the wire (§6.2.4-shaped)."""

    def initial_pool(self) -> List[TrafficConfig]:
        return [
            TrafficConfig(num_connections=1, rdma_verb="write",
                          num_msgs_per_qp=2, message_size=10240, mtu=1024,
                          data_pkt_events=(DataPacketEvent(1, 3, "ecn"),)),
            TrafficConfig(num_connections=1, rdma_verb="read",
                          num_msgs_per_qp=2, message_size=10240, mtu=1024,
                          data_pkt_events=(DataPacketEvent(1, 2, "drop"),)),
        ]


TARGETS: Dict[str, FuzzTarget] = {
    "general": _GeneralTarget(
        name="general",
        description="any anomaly in a lightly lossy setting",
        weights=ScoreWeights(),
        anomaly_threshold=3.0,
    ),
    "noisy-neighbor": _NoisyNeighborTarget(
        name="noisy-neighbor",
        description="loss on some connections hurting innocent ones",
        weights=ScoreWeights(innocent_inflation=10.0,
                             unexplained_discards=4.0,
                             counter_inconsistency=0.5,
                             mct_inflation=0.5),
        anomaly_threshold=8.0,
    ),
    "counter-bugs": _CounterBugTarget(
        name="counter-bugs",
        description="NIC counters disagreeing with the dumped trace",
        weights=ScoreWeights(counter_inconsistency=8.0,
                             mct_inflation=0.2,
                             innocent_inflation=0.2),
        anomaly_threshold=6.0,
    ),
}


def make_fuzzer(target_name: str, nic: str, seed: int = 1,
                nic_responder: str = "") -> Tuple[LuminaFuzzer, FuzzTarget]:
    """Build a fuzzer configured for a named target on a NIC pair."""
    try:
        target = TARGETS[target_name]
    except KeyError:
        raise KeyError(f"unknown fuzz target {target_name!r}; "
                       f"known: {sorted(TARGETS)}") from None
    pool = target.initial_pool()
    base = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic_responder or nic,
                             ip_list=("10.0.0.2/24",)),
        traffic=pool[0],
        dumpers=DumperPoolConfig(num_servers=3),
        seed=seed,
        max_duration_ns=60_000_000_000,
    )
    fuzzer = LuminaFuzzer(base, seed=seed, weights=target.weights,
                          anomaly_threshold=target.anomaly_threshold,
                          initial_pool=pool,
                          max_pool_size=target.max_pool_size,
                          novelty_first_bonus=target.novelty_first_bonus,
                          novelty_rare_bonus=target.novelty_rare_bonus)
    return fuzzer, target
