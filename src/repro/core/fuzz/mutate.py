"""Mutation operators for fuzzing (Algorithm 1, step 2).

Each mutator takes a :class:`TrafficConfig` and a random source and
returns a *valid* new config: basic-traffic mutations adjust the number
of QPs, verb, message geometry and depth; event mutations add, remove
or retarget injected drops/ECN marks. Events are re-clamped after every
traffic mutation so they always reference packets that exist.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from ...sim.rng import SimRandom
from ..config import DataPacketEvent, TrafficConfig

__all__ = ["MUTATORS", "mutate", "clamp_events"]

_MESSAGE_SIZES = (1024, 4096, 10240, 20480, 102400)
_VERBS = ("write", "send", "read")


def clamp_events(traffic: TrafficConfig) -> TrafficConfig:
    """Drop events that no longer reference an existing packet/QP.

    The packet stream is 1-indexed (``_spread_drops`` and ``_add_event``
    draw from ``randint(1, …)``), so an event targeting psn 0 or qpn 0
    references a packet that never exists and must be rejected too —
    not only events past the upper bound.
    """
    total = traffic.packets_per_connection
    kept = tuple(
        e for e in traffic.data_pkt_events
        if 1 <= e.psn <= total and 1 <= e.qpn <= traffic.num_connections
    )
    if len(kept) == len(traffic.data_pkt_events):
        return traffic
    return replace(traffic, data_pkt_events=kept)


def _replace_geometry(t: TrafficConfig, **kwargs) -> TrafficConfig:
    """Change traffic geometry, re-clamping events afterwards.

    Events are stripped before the change because the dataclass
    validates event bounds on construction: shrinking the stream with
    stale events attached would raise before clamping could run.
    """
    changed = replace(t, data_pkt_events=(), **kwargs)
    total = changed.packets_per_connection
    kept = tuple(e for e in t.data_pkt_events
                 if 1 <= e.psn <= total
                 and 1 <= e.qpn <= changed.num_connections)
    return replace(changed, data_pkt_events=kept)


def _mutate_num_connections(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    delta = rng.choice([-8, -4, -1, 1, 4, 8])
    return _replace_geometry(
        t, num_connections=max(1, min(64, t.num_connections + delta)))


def _mutate_verb(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    return replace(t, rdma_verb=rng.choice(_VERBS))


def _mutate_message_size(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    return _replace_geometry(t, message_size=rng.choice(_MESSAGE_SIZES))


def _mutate_num_msgs(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    delta = rng.choice([-5, -2, 2, 5])
    return _replace_geometry(
        t, num_msgs_per_qp=max(1, min(50, t.num_msgs_per_qp + delta)))


def _mutate_tx_depth(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    return replace(t, tx_depth=rng.choice([1, 2, 4]))


def _mutate_barrier(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    return replace(t, barrier_sync=not t.barrier_sync)


def _add_event(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    event = DataPacketEvent(
        qpn=rng.randint(1, t.num_connections),
        psn=rng.randint(1, t.packets_per_connection),
        type=rng.choice(["drop", "ecn", "corrupt"]),
        iter=rng.choice([1, 1, 1, 2]),
    )
    existing = set((e.qpn, e.psn, e.iter) for e in t.data_pkt_events)
    if (event.qpn, event.psn, event.iter) in existing:
        return t
    return replace(t, data_pkt_events=tuple(t.data_pkt_events) + (event,))


def _remove_event(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    if not t.data_pkt_events:
        return t
    victim = rng.randint(0, len(t.data_pkt_events) - 1)
    kept = tuple(e for i, e in enumerate(t.data_pkt_events) if i != victim)
    return replace(t, data_pkt_events=kept)


def _spread_drops(t: TrafficConfig, rng: SimRandom) -> TrafficConfig:
    """Inject the same drop across the first K connections.

    This is the mutation that finds noisy-neighbor behaviour: many
    connections losing a packet *simultaneously* (§6.2.2).
    """
    if t.num_connections < 2:
        return t
    k = rng.randint(2, t.num_connections)
    psn = rng.randint(1, t.packets_per_connection)
    events = tuple(DataPacketEvent(qpn=i + 1, psn=psn, type="drop")
                   for i in range(k))
    return replace(t, data_pkt_events=events)


MUTATORS: Sequence[Callable[[TrafficConfig, SimRandom], TrafficConfig]] = (
    _mutate_num_connections,
    _mutate_verb,
    _mutate_message_size,
    _mutate_num_msgs,
    _mutate_tx_depth,
    _mutate_barrier,
    _add_event,
    _add_event,          # weighted: event mutations drive discovery
    _remove_event,
    _spread_drops,
)


def mutate(traffic: TrafficConfig, rng: SimRandom,
           rounds: int = 1) -> TrafficConfig:
    """Apply ``rounds`` random mutation operators."""
    result = traffic
    for _ in range(max(1, rounds)):
        mutator = rng.choice(MUTATORS)
        result = mutator(result, rng)
    return clamp_events(result)
