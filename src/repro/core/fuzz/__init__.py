"""Genetic fuzzing module: automatic test-case generation (§4, Alg. 1)."""

from .fuzzer import FuzzFinding, FuzzReport, LuminaFuzzer, PoolEntry
from .mutate import MUTATORS, clamp_events, mutate
from .score import Score, ScoreWeights, novelty_score, score_result
from .targets import TARGETS, FuzzTarget, make_fuzzer

__all__ = [
    "FuzzFinding",
    "FuzzReport",
    "LuminaFuzzer",
    "PoolEntry",
    "MUTATORS",
    "clamp_events",
    "mutate",
    "Score",
    "ScoreWeights",
    "novelty_score",
    "score_result",
    "TARGETS",
    "FuzzTarget",
    "make_fuzzer",
]
