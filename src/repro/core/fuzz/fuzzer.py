"""Genetic test-case generation (Algorithm 1).

The fuzzer maintains a pool Γ of traffic configurations. Each round it
picks a random member, mutates it, runs Lumina with the mutated config,
scores the results, and keeps high-scoring configs (score ≥ pool
median) — low-scoring ones survive only with probability *p*. The loop
stops when an anomaly crosses the threshold or the iteration budget is
exhausted (``stop_on_first`` controls whether the first finding ends
the search, as in the paper's pseudocode).

Everything is deterministic given the fuzzer seed: per-iteration run
seeds derive from it, so any finding replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from statistics import median
from typing import Callable, List, Optional

from ...sim.rng import SimRandom
from ...telemetry import runtime as telemetry
from ..config import TestConfig, TrafficConfig
from ..orchestrator import run_test
from ..results import TestResult
from .mutate import mutate
from .score import Score, ScoreWeights, score_result

__all__ = ["FuzzFinding", "FuzzReport", "LuminaFuzzer"]


@dataclass
class FuzzFinding:
    """One anomalous configuration discovered by the fuzzer."""

    iteration: int
    config: TestConfig
    score: Score

    def summary(self) -> str:
        t = self.config.traffic
        return (f"iter {self.iteration}: score={self.score.total:.1f} "
                f"verb={t.rdma_verb} conns={t.num_connections} "
                f"events={len(t.data_pkt_events)} -> "
                + "; ".join(self.score.anomalies[:2]))


@dataclass
class FuzzReport:
    iterations_run: int = 0
    invalid_runs: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    pool_scores: List[float] = field(default_factory=list)

    @property
    def found_anomaly(self) -> bool:
        return bool(self.findings)

    @property
    def best(self) -> Optional[FuzzFinding]:
        if not self.findings:
            return None
        return max(self.findings, key=lambda f: f.score.total)


class LuminaFuzzer:
    """Algorithm 1: genetic-based fuzzing over traffic configurations."""

    def __init__(self, base_config: TestConfig, seed: int = 1,
                 weights: ScoreWeights = ScoreWeights(),
                 keep_probability: float = 0.25,
                 anomaly_threshold: float = 3.0,
                 initial_pool: Optional[List[TrafficConfig]] = None,
                 run_fn: Callable[[TestConfig], TestResult] = run_test):
        self.base_config = base_config
        self.rng = SimRandom(seed, "fuzzer")
        self.weights = weights
        self.keep_probability = keep_probability
        self.anomaly_threshold = anomaly_threshold
        self._run = run_fn
        # Step 1: initialise the candidate pool with valid configs.
        self.pool: List[TrafficConfig] = list(initial_pool or [])
        if not self.pool:
            self.pool = self._default_pool()
        self._pool_scores: List[float] = [0.0] * len(self.pool)
        self._next_seed = seed * 1_000_003 + 7

    def _default_pool(self) -> List[TrafficConfig]:
        base = self.base_config.traffic
        pool = [base]
        for _ in range(3):
            pool.append(mutate(base, self.rng, rounds=2))
        return pool

    def _config_for(self, traffic: TrafficConfig) -> TestConfig:
        self._next_seed += 1
        return replace(self.base_config, traffic=traffic, seed=self._next_seed)

    def run(self, iterations: int = 20, stop_on_first: bool = False) -> FuzzReport:
        """Run the fuzzing loop for at most ``iterations`` rounds."""
        report = FuzzReport()
        tel = telemetry.current()
        m_iters = tel.counter("fuzz_iterations")
        m_invalid = tel.counter("fuzz_invalid_runs")
        m_findings = tel.counter("fuzz_findings")
        h_score = tel.histogram("fuzz_score",
                                buckets=(0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0))
        for iteration in range(1, iterations + 1):
            report.iterations_run = iteration
            m_iters.inc()
            # Step 2: pick + mutate.
            gamma = self.rng.choice(self.pool)
            candidate = mutate(gamma, self.rng,
                               rounds=self.rng.choice([1, 1, 2]))
            # Each iteration spawns an independent sim starting at t=0,
            # so the generation span lives on the wall-clock lane.
            with tel.wall_span("fuzz.generation", pid="fuzzer",
                               category="fuzz", iteration=iteration) as span:
                # Run Lumina with the mutated configuration.
                result = self._run(self._config_for(candidate))
                # Step 3: score.
                score = score_result(result, self.weights)
                span.set(score=round(score.total, 3), valid=score.valid)
            if not score.valid:
                report.invalid_runs += 1
                m_invalid.inc()
                continue
            h_score.observe(score.total)
            # Step 4: selection against the pool median.
            current_median = median(self._pool_scores) if self._pool_scores else 0.0
            if score.total >= current_median or \
                    self.rng.random() < self.keep_probability:
                self.pool.append(candidate)
                self._pool_scores.append(score.total)
            report.pool_scores.append(score.total)
            if score.total >= self.anomaly_threshold:
                m_findings.inc()
                report.findings.append(FuzzFinding(
                    iteration=iteration,
                    config=self._config_for(candidate),
                    score=score,
                ))
                if stop_on_first:
                    break
        return report
