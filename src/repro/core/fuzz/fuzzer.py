"""Genetic test-case generation (Algorithm 1).

The fuzzer maintains a pool Γ of traffic configurations. Each round it
picks a random member, mutates it, runs Lumina with the mutated config,
scores the results, and keeps high-scoring configs (score ≥ pool
median) — low-scoring ones survive only with probability *p*. The loop
stops when an anomaly crosses the threshold or the iteration budget is
exhausted (``stop_on_first`` controls whether the first finding ends
the search, as in the paper's pseudocode).

Everything is deterministic given the fuzzer seed: per-iteration run
seeds derive from it, so any finding replays exactly.

Campaign execution is *batched*: each generation draws a batch of K
candidates from the current pool snapshot (consuming the fuzzer RNG
candidate-by-candidate), runs and scores all K — in-process, or fanned
out over a :class:`repro.exec.ParallelRunner` process pool — and only
then applies median selection sequentially in candidate order. All RNG
consumption lives in the sequential phases, so for a fixed
``batch_size`` the report is byte-identical for **any** worker count;
``batch_size=1`` degenerates to the paper's strictly serial schedule.

**Coverage-guided mode** (FP4/P4Testgen-style structural feedback)
activates when a coverage session is live (override per-run with
``coverage_fitness``). Selection then works on ``score.fitness`` —
analyzer total plus a :func:`~.score.novelty_score` bonus computed
against the cumulative campaign map, folded per candidate *in
candidate order* so the math is worker-count independent — and any
candidate that reaches a never-before-seen coverage point is admitted
to the pool regardless of its analyzer score. The pool is kept lean by
dominance minimization (an entry whose coverage points are a subset of
a higher-ranked survivor's is evicted; pool size is bounded), and
repeated rediscoveries of one bug collapse into a single
:class:`FuzzFinding` whose ``count`` grows — findings are keyed on
``(fingerprint of the clamped candidate traffic, coverage signature)``.
The blind path (``coverage_fitness=False``, or no session) consumes
the RNG exactly as before this mode existed, so legacy schedules and
journals reproduce byte-identically.
"""

from __future__ import annotations

import os
from bisect import insort
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # avoid a runtime core -> exec/store import cycle
    from ...exec.runner import ParallelRunner
    from ...store.index import CampaignStore

from ...coverage import runtime as coverage
from ...coverage.map import CoverageMap
from ...sim.rng import SimRandom
from ...telemetry import runtime as telemetry
from ..config import TestConfig, TrafficConfig
from ..orchestrator import run_test
from ..results import TestResult
from .mutate import mutate
from .score import Score, ScoreWeights, novelty_score, score_result

__all__ = ["FuzzFinding", "FuzzReport", "LuminaFuzzer", "PoolEntry"]


@dataclass
class PoolEntry:
    """One member of the pool Γ: the config *with* its selection score.

    The score and config travel together (the historical parallel-list
    layout lost the pairing, making eviction impossible); ``points`` is
    the entry's coverage signature — the sorted ``(domain, point)``
    keys its run reached — used by dominance minimization. Empty in
    blind mode and for the initial pool.
    """

    config: TrafficConfig
    score: float
    points: Tuple[Tuple[str, str], ...] = ()


@dataclass
class FuzzFinding:
    """One anomalous configuration discovered by the fuzzer."""

    iteration: int
    config: TestConfig
    score: Score
    #: How many times the campaign rediscovered this same bug (same
    #: dedup key); 1 outside coverage-guided mode.
    count: int = 1

    def summary(self) -> str:
        t = self.config.traffic
        times = f" x{self.count}" if self.count > 1 else ""
        return (f"iter {self.iteration}{times}: "
                f"score={self.score.total:.1f} "
                f"verb={t.rdma_verb} conns={t.num_connections} "
                f"events={len(t.data_pkt_events)} -> "
                + "; ".join(self.score.anomalies[:2]))


@dataclass
class FuzzReport:
    iterations_run: int = 0
    invalid_runs: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    pool_scores: List[float] = field(default_factory=list)
    #: Per-generation coverage growth rows ({generation, new-points,
    #: total-points}); empty when coverage was disabled.
    coverage_growth: List[dict] = field(default_factory=list)
    #: Cumulative campaign coverage snapshot; None when disabled.
    coverage: Optional[List[list]] = None
    #: Anomalous runs collapsed into an existing finding (guided mode).
    rediscoveries: int = 0
    #: Pool entries removed by dominance minimization (guided mode).
    pool_evictions: int = 0

    @property
    def found_anomaly(self) -> bool:
        return bool(self.findings)

    @property
    def best(self) -> Optional[FuzzFinding]:
        if not self.findings:
            return None
        return max(self.findings, key=lambda f: f.score.total)


class LuminaFuzzer:
    """Algorithm 1: genetic-based fuzzing over traffic configurations."""

    def __init__(self, base_config: TestConfig, seed: int = 1,
                 weights: ScoreWeights = ScoreWeights(),
                 keep_probability: float = 0.25,
                 anomaly_threshold: float = 3.0,
                 initial_pool: Optional[List[TrafficConfig]] = None,
                 run_fn: Callable[[TestConfig], TestResult] = run_test,
                 max_pool_size: int = 64,
                 novelty_first_bonus: float = 2.0,
                 novelty_rare_bonus: float = 1.0):
        self.base_config = base_config
        self.seed = seed
        self.rng = SimRandom(seed, "fuzzer")
        self.weights = weights
        self.keep_probability = keep_probability
        self.anomaly_threshold = anomaly_threshold
        self.max_pool_size = max(1, max_pool_size)
        self.novelty_first_bonus = novelty_first_bonus
        self.novelty_rare_bonus = novelty_rare_bonus
        self._run = run_fn
        # Step 1: initialise the candidate pool with valid configs.
        configs = list(initial_pool or [])
        if not configs:
            configs = self._default_pool()
        self._pool: List[PoolEntry] = [PoolEntry(config=c, score=0.0)
                                       for c in configs]
        # Selection needs the pool *median*: keep the scores sorted
        # (insort is O(n) worst case but tiny next to a simulation run)
        # so each lookup is O(1) instead of statistics.median's sort.
        # Derived from self._pool — rebuilt on load/minimize.
        self._pool_scores: List[float] = sorted(e.score for e in self._pool)
        self._next_seed = seed * 1_000_003 + 7
        # Cumulative campaign coverage; fed in candidate order from the
        # compact scores, so it grows identically for any worker count.
        self._coverage = CoverageMap()
        # Guided-mode finding dedup: key -> the FuzzFinding it owns.
        # Rebuilt from the journaled report on resume.
        self._findings_by_key: Dict[Tuple, FuzzFinding] = {}

    @property
    def pool(self) -> List[TrafficConfig]:
        """Pool Γ as bare configs (read-only view of the entries)."""
        return [e.config for e in self._pool]

    def _default_pool(self) -> List[TrafficConfig]:
        base = self.base_config.traffic
        pool = [base]
        for _ in range(3):
            pool.append(mutate(base, self.rng, rounds=2))
        return pool

    def _config_for(self, traffic: TrafficConfig) -> TestConfig:
        self._next_seed += 1
        return replace(self.base_config, traffic=traffic, seed=self._next_seed)

    def _pool_median(self) -> float:
        """Median of the (sorted) pool scores; 0.0 for an empty pool."""
        scores = self._pool_scores
        n = len(scores)
        if not n:
            return 0.0
        mid = n // 2
        if n % 2:
            return scores[mid]
        return (scores[mid - 1] + scores[mid]) / 2

    def _admit(self, candidate: TrafficConfig, total: float,
               points: Tuple[Tuple[str, str], ...] = ()) -> None:
        self._pool.append(PoolEntry(config=candidate, score=total,
                                    points=points))
        insort(self._pool_scores, total)

    def _minimize_pool(self) -> int:
        """Corpus minimization: evict dominated entries, bound the pool.

        Entries are ranked by ``(-score, insertion order)``. Walking
        down the ranking, an entry is evicted when its (non-empty)
        coverage point set is a subset of some already-kept survivor's
        — it explores nothing the better entry does not — or when the
        survivor quota ``max_pool_size`` is full. Entries with *no*
        coverage signature (initial pool, blind admissions) are exempt
        from dominance (the empty set is a subset of everything) but
        still count against the size bound. Purely a function of pool
        state, so it is deterministic across workers and resume.
        Returns the number of evictions.
        """
        if len(self._pool) <= self.max_pool_size:
            return 0
        ranked = sorted(range(len(self._pool)),
                        key=lambda i: (-self._pool[i].score, i))
        survivors: List[int] = []
        survivor_points: List[frozenset] = []
        for idx in ranked:
            if len(survivors) >= self.max_pool_size:
                break
            pts = frozenset(self._pool[idx].points)
            if pts and any(pts <= sp for sp in survivor_points):
                continue
            survivors.append(idx)
            survivor_points.append(pts)
        evicted = len(self._pool) - len(survivors)
        # Survivors keep their relative insertion order so later
        # rankings (and RNG-driven pool draws) stay stable.
        self._pool = [self._pool[i] for i in sorted(survivors)]
        self._pool_scores = sorted(e.score for e in self._pool)
        return evicted

    def _finding_key(self, traffic: TrafficConfig,
                     rows: Optional[Sequence]) -> Tuple:
        """Dedup key: (clamped-config fingerprint, coverage signature).

        Two anomalous runs are "the same bug" when the mutated traffic
        config fingerprints identically *and* the run reached the same
        coverage points (hit counts and times excluded — a retry loop
        spinning twice is still the same bug).
        """
        from ...store.fingerprint import fingerprint

        config_fp = fingerprint("fuzz-finding-config", {"traffic": traffic})
        signature = tuple(sorted((row[0], row[1]) for row in rows or ()))
        return (config_fp, signature)

    # ------------------------------------------------------------------
    # Campaign checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Everything a later process needs to continue this fuzzer.

        Restoring this state with :meth:`load_state` reproduces the
        remaining iterations exactly — RNG stream position, the
        per-iteration seed counter, the evolved pool (with per-entry
        score/coverage pairing) are the only mutable state the loop
        reads.

        Schema: ``"pool-entries"`` (one ``{score, points}`` dict per
        pool config, same order as ``"pool"``) is the v2 pairing;
        ``"pool-scores"`` is kept so v1 readers still find the sorted
        score list, and v1 checkpoints without ``"pool-entries"`` still
        load (see :meth:`load_state`). ``"coverage-map"`` is emitted
        whenever a coverage session is active — even while empty —
        so a coverage-enabled campaign that has hit zero points is
        distinguishable from a coverage-off one on resume.
        """
        state = {
            "rng": self.rng.getstate(),
            "next-seed": self._next_seed,
            "pool": [e.config.to_dict() for e in self._pool],
            "pool-scores": list(self._pool_scores),
            "pool-entries": [
                {"score": e.score, "points": [list(p) for p in e.points]}
                for e in self._pool
            ],
        }
        if coverage.active() is not None or len(self._coverage):
            state["coverage-map"] = self._coverage.snapshot()
        return state

    def load_state(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` checkpoint (journal resume).

        v1 checkpoints (no ``"pool-entries"``) recorded configs and a
        *sorted* score list with no linkage, so the true pairing is
        unrecoverable; scores are assigned positionally. That preserves
        the config order and the score multiset — everything the blind
        selection loop reads — so resumed v1 campaigns still replay
        byte-identically.
        """
        self.rng.setstate(state["rng"])
        self._next_seed = state["next-seed"]
        configs = [TrafficConfig.from_dict(t) for t in state["pool"]]
        entries = state.get("pool-entries")
        if entries is None:
            scores = sorted(state["pool-scores"])
            self._pool = [PoolEntry(config=c, score=s)
                          for c, s in zip(configs, scores)]
        else:
            self._pool = [
                PoolEntry(config=c, score=e["score"],
                          points=tuple((d, p) for d, p in e["points"]))
                for c, e in zip(configs, entries)
            ]
        self._pool_scores = sorted(e.score for e in self._pool)
        self._coverage = CoverageMap.from_snapshot(
            state.get("coverage-map", []))

    def _campaign_fingerprint(self, batch_size: int,
                              guided: bool = False) -> str:
        """Address of this campaign: base config + every fuzzing knob.

        ``iterations`` is deliberately excluded — a finished campaign
        may be resumed with a larger budget and simply continues.
        """
        from ...store.fingerprint import config_fingerprint

        extra = {
            "fuzzer-seed": self.seed,
            "weights": self.weights,
            "keep-probability": self.keep_probability,
            "anomaly-threshold": self.anomaly_threshold,
            "batch-size": batch_size,
            "initial-pool": [e.config.to_dict() for e in self._pool],
        }
        if coverage.active() is not None:
            extra["coverage"] = True
        if guided:
            # Guided campaigns evolve a different schedule, so they
            # never share a journal with a blind campaign; the novelty
            # knobs are part of the address for the same reason the
            # weights are.
            extra["coverage-fitness"] = {
                "first-hit-bonus": self.novelty_first_bonus,
                "rare-hit-bonus": self.novelty_rare_bonus,
                "max-pool-size": self.max_pool_size,
            }
        return config_fingerprint(self.base_config, kind="fuzz-campaign",
                                  extra=extra)

    # ------------------------------------------------------------------
    # Batch phases
    # ------------------------------------------------------------------
    def _generate_batch(self, k: int) -> List[Tuple[TrafficConfig, TestConfig]]:
        """Step 2, batched: draw K candidates from the pool snapshot.

        Consumes the fuzzer RNG candidate-by-candidate — entirely
        sequential, so the schedule is independent of how the batch is
        later executed.
        """
        batch = []
        for _ in range(k):
            # choice() consumes one draw keyed on sequence length, so
            # drawing an entry costs exactly what drawing a bare config
            # did — the legacy blind schedules are untouched.
            gamma = self.rng.choice(self._pool).config
            candidate = mutate(gamma, self.rng,
                               rounds=self.rng.choice([1, 1, 2]))
            batch.append((candidate, self._config_for(candidate)))
        return batch

    def _score_batch(self, batch: Sequence[Tuple[TrafficConfig, TestConfig]],
                     runner, first_iteration: int,
                     store: Optional["CampaignStore"] = None,
                     ) -> List[Optional[Score]]:
        """Step 3, batched: run + score every candidate.

        With a ``store``, each candidate's fingerprint is probed first
        and cached scores are replayed without touching the testbed;
        only the misses are executed (and written back). With a runner,
        misses execute in pool workers which ship back only the compact
        :class:`Score` (never the trace). A candidate whose execution
        fails outright maps to ``None`` and is later counted as an
        invalid run.
        """
        tel = telemetry.current()
        cov = coverage.active()
        scores: List[Optional[Score]] = [None] * len(batch)
        pending = list(range(len(batch)))
        fps: List[Optional[str]] = [None] * len(batch)
        if store is not None:
            from ...store.fingerprint import config_fingerprint
            from ...store.serialize import decode_score

            extra: Dict = {"weights": self.weights}
            if cov is not None:
                extra["coverage"] = True
            pending = []
            for i, (_, config) in enumerate(batch):
                fps[i] = config_fingerprint(config, kind="score", extra=extra)
                cached = store.get(fps[i])
                if cached is not None:
                    scores[i] = decode_score(cached)
                    if cov is not None and scores[i].coverage:
                        # Replayed runs never touch run_test, so their
                        # coverage folds into the session here.
                        cov.merge_snapshot(scores[i].coverage)
                else:
                    pending.append(i)
        if runner is not None:
            if pending:
                with tel.wall_span("fuzz.batch", pid="fuzzer",
                                   category="fuzz",
                                   first_iteration=first_iteration,
                                   size=len(pending)) as span:
                    outcomes = runner.map([
                        {"config": batch[i][1], "weights": self.weights}
                        for i in pending
                    ])
                    for i, outcome in zip(pending, outcomes):
                        scores[i] = outcome.value if outcome.ok else None
                        if (cov is not None and scores[i] is not None
                                and scores[i].coverage
                                and not outcome.ran_in_process):
                            # Pool workers merge into their own private
                            # session; fold into the parent's here. An
                            # in-process fallback already merged via
                            # run_test — folding again would double it.
                            cov.merge_snapshot(scores[i].coverage)
                    span.set(failed=sum(1 for i in pending
                                        if scores[i] is None))
        else:
            for i in pending:
                config = batch[i][1]
                # Each iteration spawns an independent sim starting at
                # t=0, so the generation span lives on the wall-clock
                # lane.
                with tel.wall_span("fuzz.generation", pid="fuzzer",
                                   category="fuzz",
                                   iteration=first_iteration + i) as span:
                    if cov is not None:
                        # Scoped capture: isolate this candidate's
                        # coverage delta even for custom run_fns that
                        # hit points without attaching them to the
                        # result; the scope folds back into the
                        # session on exit, so the session total is
                        # unchanged. run_test-produced results already
                        # carry their own (identical) run snapshot.
                        with cov.scope() as run_scope:
                            result = self._run(config)
                        rows = result.coverage
                        if rows is None and len(run_scope):
                            rows = run_scope.snapshot()
                    else:
                        result = self._run(config)
                        rows = result.coverage
                    score = score_result(result, self.weights)
                    # The score just carries the snapshot for the
                    # fuzzer's cumulative map and the store.
                    score.coverage = rows
                    span.set(score=round(score.total, 3), valid=score.valid)
                scores[i] = score
        if store is not None:
            from ...store.serialize import encode_score

            for i in pending:
                if scores[i] is not None:
                    store.put(fps[i], "score", encode_score(scores[i]))
        return scores

    # ------------------------------------------------------------------
    def run(self, iterations: int = 20, stop_on_first: bool = False,
            workers: int = 1, batch_size: int = 1,
            runner: Optional["ParallelRunner"] = None,
            store: Optional["CampaignStore"] = None,
            campaign_dir: Optional[str] = None,
            coverage_fitness: Optional[bool] = None) -> FuzzReport:
        """Run the fuzzing loop for at most ``iterations`` rounds.

        ``batch_size`` fixes the generation schedule (how many
        candidates are drawn per pool snapshot); ``workers`` only
        decides how each batch is executed. Reports are therefore
        byte-identical across worker counts for a given
        ``batch_size``, and ``batch_size=1`` (the default) reproduces
        the historical strictly-serial schedule exactly.

        A ``runner`` may be injected (for pool reuse across campaigns
        or for tests); otherwise one is created when ``workers > 1``.
        Pool execution requires the default ``run_test`` runner — a
        custom ``run_fn`` keeps scoring in-process.

        ``store`` dedups identical candidate runs across (and within)
        campaigns. ``campaign_dir`` makes the campaign *persistent*:
        a store under ``<dir>/store`` plus a generation journal under
        ``<dir>/journal.jsonl``. A killed campaign re-invoked with the
        same directory resumes after the last complete generation and
        its final report is byte-identical to an uninterrupted run's
        (the journal carries the full fuzzer state). The environment
        knob ``REPRO_CAMPAIGN_CRASH_AFTER_GEN=<k>`` kills the process
        (exit 3) right after journaling generation ``k`` — a
        deterministic stand-in for mid-campaign crashes, used by tests
        and the CI resume smoke; ``k=0`` crashes right after the
        ``begin`` record, before any generation runs.

        ``coverage_fitness`` selects coverage-guided selection (see the
        module docstring): ``None`` (default) turns it on exactly when
        a coverage session is active; ``False`` forces the blind GA
        even under a session; ``True`` is still a no-op without a
        session, since there is no coverage to feed back.
        """
        batch_size = max(1, batch_size)
        cov_on = coverage.active() is not None
        if coverage_fitness is None:
            guided = cov_on
        else:
            guided = bool(coverage_fitness) and cov_on
        journal = None
        if campaign_dir is not None:
            from ...store import CampaignJournal, CampaignStore

            if store is None:
                store = CampaignStore(os.path.join(campaign_dir, "store"))
            journal = CampaignJournal(
                os.path.join(campaign_dir, "journal.jsonl"))
        report = FuzzReport()
        completed = 0
        stopped = False
        generation = 0
        crash_after: Optional[int] = None
        if journal is not None:
            from ...store.index import StoreError
            from ...store.serialize import decode_fuzz_report

            campaign_fp = self._campaign_fingerprint(batch_size, guided)
            begin = journal.last("begin")
            if begin is None:
                journal.append({"type": "begin",
                                "fingerprint": campaign_fp})
            elif begin["fingerprint"] != campaign_fp:
                raise StoreError(
                    f"campaign dir {campaign_dir!r} belongs to a different "
                    "campaign (base config, seed or fuzzing knobs differ)")
            checkpoint = journal.last("generation")
            if checkpoint is not None:
                self.load_state(checkpoint["state"])
                report = decode_fuzz_report(checkpoint["report"])
                completed = checkpoint["completed"]
                stopped = checkpoint["stopped"]
                generation = checkpoint["generation"]
            env = os.environ.get("REPRO_CAMPAIGN_CRASH_AFTER_GEN")
            if env:
                crash_after = int(env)
                if crash_after <= generation:
                    # Every journaled generation ≤ the crash point is
                    # already on disk; k=0 in particular dies right
                    # after the begin record, before generation 1.
                    raise SystemExit(3)
        if guided:
            # Resume (or a re-entered run) must dedup against every
            # finding already journaled.
            self._findings_by_key = {
                self._finding_key(f.config.traffic, f.score.coverage): f
                for f in report.findings
            }
        tel = telemetry.current()
        m_iters = tel.counter("fuzz_iterations")
        m_invalid = tel.counter("fuzz_invalid_runs")
        m_findings = tel.counter("fuzz_findings")
        h_score = tel.histogram("fuzz_score",
                                buckets=(0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0))
        owns_runner = False
        if runner is None and workers > 1 and self._run is run_test:
            from ...exec import ParallelRunner
            from ...exec.tasks import score_config_task

            runner = ParallelRunner(score_config_task, workers=workers)
            owns_runner = True
        try:
            while completed < iterations and not stopped:
                batch = self._generate_batch(
                    min(batch_size, iterations - completed))
                scores = self._score_batch(batch, runner, completed + 1,
                                           store)
                before_points = len(self._coverage)
                if cov_on and not guided:
                    # Blind mode folds the whole batch before selection
                    # — the historical order, kept bit-exact so legacy
                    # schedules reproduce.
                    for score in scores:
                        if score is not None and score.coverage:
                            self._coverage.merge_snapshot(score.coverage)
                # Step 4: selection — sequential, in candidate order, so
                # every RNG draw happens on the parent's single stream.
                for offset, ((candidate, _), score) in enumerate(
                        zip(batch, scores)):
                    iteration = completed + offset + 1
                    report.iterations_run = iteration
                    m_iters.inc()
                    if score is None or not score.valid:
                        report.invalid_runs += 1
                        m_invalid.inc()
                        continue
                    rows = score.coverage if guided else None
                    first_hits = 0
                    if guided:
                        # Novelty first, fold second: each candidate is
                        # judged against everything folded before it —
                        # earlier batch members included — in candidate
                        # order, independent of the worker count.
                        score.novelty, first_hits = novelty_score(
                            rows, self._coverage,
                            self.novelty_first_bonus,
                            self.novelty_rare_bonus)
                        if rows:
                            self._coverage.merge_snapshot(rows)
                    h_score.observe(score.total)
                    current_median = self._pool_median()
                    fitness = score.fitness if guided else score.total
                    # A first-hit candidate is admitted unconditionally
                    # (it reached somewhere the campaign never has);
                    # the keep-probability draw short-circuits exactly
                    # as in the blind GA, which in that mode leaves the
                    # RNG stream untouched relative to the legacy code.
                    if fitness >= current_median or first_hits > 0 or \
                            self.rng.random() < self.keep_probability:
                        points = (tuple(sorted((r[0], r[1]) for r in rows))
                                  if guided and rows else ())
                        self._admit(candidate, fitness, points)
                    report.pool_scores.append(fitness)
                    if score.total >= self.anomaly_threshold:
                        if guided:
                            key = self._finding_key(candidate, rows)
                            known = self._findings_by_key.get(key)
                            if known is not None:
                                # Same reduced config, same coverage
                                # signature: a rediscovery, not a new
                                # finding.
                                known.count += 1
                                report.rediscoveries += 1
                                continue
                        m_findings.inc()
                        finding = FuzzFinding(
                            iteration=iteration,
                            config=self._config_for(candidate),
                            score=score,
                        )
                        if guided:
                            self._findings_by_key[key] = finding
                        report.findings.append(finding)
                        if stop_on_first:
                            stopped = True
                            break
                if guided:
                    report.pool_evictions += self._minimize_pool()
                if cov_on:
                    report.coverage_growth.append({
                        "generation": len(report.coverage_growth) + 1,
                        "new-points": len(self._coverage) - before_points,
                        "total-points": len(self._coverage),
                    })
                    report.coverage = self._coverage.snapshot()
                completed += len(batch)
                if journal is not None:
                    generation += 1
                    from ...store.serialize import encode_fuzz_report

                    journal.append({
                        "type": "generation",
                        "generation": generation,
                        "completed": completed,
                        "stopped": stopped,
                        "state": self.state_dict(),
                        "report": encode_fuzz_report(report),
                    })
                    if crash_after is not None and generation >= crash_after:
                        raise SystemExit(3)
        finally:
            if owns_runner:
                runner.close()
        return report
