"""Genetic test-case generation (Algorithm 1).

The fuzzer maintains a pool Γ of traffic configurations. Each round it
picks a random member, mutates it, runs Lumina with the mutated config,
scores the results, and keeps high-scoring configs (score ≥ pool
median) — low-scoring ones survive only with probability *p*. The loop
stops when an anomaly crosses the threshold or the iteration budget is
exhausted (``stop_on_first`` controls whether the first finding ends
the search, as in the paper's pseudocode).

Everything is deterministic given the fuzzer seed: per-iteration run
seeds derive from it, so any finding replays exactly.

Campaign execution is *batched*: each generation draws a batch of K
candidates from the current pool snapshot (consuming the fuzzer RNG
candidate-by-candidate), runs and scores all K — in-process, or fanned
out over a :class:`repro.exec.ParallelRunner` process pool — and only
then applies median selection sequentially in candidate order. All RNG
consumption lives in the sequential phases, so for a fixed
``batch_size`` the report is byte-identical for **any** worker count;
``batch_size=1`` degenerates to the paper's strictly serial schedule.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # avoid a runtime core -> exec import cycle
    from ...exec.runner import ParallelRunner

from ...sim.rng import SimRandom
from ...telemetry import runtime as telemetry
from ..config import TestConfig, TrafficConfig
from ..orchestrator import run_test
from ..results import TestResult
from .mutate import mutate
from .score import Score, ScoreWeights, score_result

__all__ = ["FuzzFinding", "FuzzReport", "LuminaFuzzer"]


@dataclass
class FuzzFinding:
    """One anomalous configuration discovered by the fuzzer."""

    iteration: int
    config: TestConfig
    score: Score

    def summary(self) -> str:
        t = self.config.traffic
        return (f"iter {self.iteration}: score={self.score.total:.1f} "
                f"verb={t.rdma_verb} conns={t.num_connections} "
                f"events={len(t.data_pkt_events)} -> "
                + "; ".join(self.score.anomalies[:2]))


@dataclass
class FuzzReport:
    iterations_run: int = 0
    invalid_runs: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    pool_scores: List[float] = field(default_factory=list)

    @property
    def found_anomaly(self) -> bool:
        return bool(self.findings)

    @property
    def best(self) -> Optional[FuzzFinding]:
        if not self.findings:
            return None
        return max(self.findings, key=lambda f: f.score.total)


class LuminaFuzzer:
    """Algorithm 1: genetic-based fuzzing over traffic configurations."""

    def __init__(self, base_config: TestConfig, seed: int = 1,
                 weights: ScoreWeights = ScoreWeights(),
                 keep_probability: float = 0.25,
                 anomaly_threshold: float = 3.0,
                 initial_pool: Optional[List[TrafficConfig]] = None,
                 run_fn: Callable[[TestConfig], TestResult] = run_test):
        self.base_config = base_config
        self.rng = SimRandom(seed, "fuzzer")
        self.weights = weights
        self.keep_probability = keep_probability
        self.anomaly_threshold = anomaly_threshold
        self._run = run_fn
        # Step 1: initialise the candidate pool with valid configs.
        self.pool: List[TrafficConfig] = list(initial_pool or [])
        if not self.pool:
            self.pool = self._default_pool()
        # Selection needs the pool *median*: keep the scores sorted
        # (insort is O(n) worst case but tiny next to a simulation run)
        # so each lookup is O(1) instead of statistics.median's sort.
        self._pool_scores: List[float] = sorted([0.0] * len(self.pool))
        self._next_seed = seed * 1_000_003 + 7

    def _default_pool(self) -> List[TrafficConfig]:
        base = self.base_config.traffic
        pool = [base]
        for _ in range(3):
            pool.append(mutate(base, self.rng, rounds=2))
        return pool

    def _config_for(self, traffic: TrafficConfig) -> TestConfig:
        self._next_seed += 1
        return replace(self.base_config, traffic=traffic, seed=self._next_seed)

    def _pool_median(self) -> float:
        """Median of the (sorted) pool scores; 0.0 for an empty pool."""
        scores = self._pool_scores
        n = len(scores)
        if not n:
            return 0.0
        mid = n // 2
        if n % 2:
            return scores[mid]
        return (scores[mid - 1] + scores[mid]) / 2

    def _admit(self, candidate: TrafficConfig, total: float) -> None:
        self.pool.append(candidate)
        insort(self._pool_scores, total)

    # ------------------------------------------------------------------
    # Batch phases
    # ------------------------------------------------------------------
    def _generate_batch(self, k: int) -> List[Tuple[TrafficConfig, TestConfig]]:
        """Step 2, batched: draw K candidates from the pool snapshot.

        Consumes the fuzzer RNG candidate-by-candidate — entirely
        sequential, so the schedule is independent of how the batch is
        later executed.
        """
        batch = []
        for _ in range(k):
            gamma = self.rng.choice(self.pool)
            candidate = mutate(gamma, self.rng,
                               rounds=self.rng.choice([1, 1, 2]))
            batch.append((candidate, self._config_for(candidate)))
        return batch

    def _score_batch(self, batch: Sequence[Tuple[TrafficConfig, TestConfig]],
                     runner, first_iteration: int) -> List[Optional[Score]]:
        """Step 3, batched: run + score every candidate.

        With a runner, candidates execute in pool workers which ship
        back only the compact :class:`Score` (never the trace). A
        candidate whose execution fails outright maps to ``None`` and
        is later counted as an invalid run.
        """
        tel = telemetry.current()
        if runner is not None:
            with tel.wall_span("fuzz.batch", pid="fuzzer", category="fuzz",
                               first_iteration=first_iteration,
                               size=len(batch)) as span:
                outcomes = runner.map([
                    {"config": config, "weights": self.weights}
                    for _, config in batch
                ])
                scores = [o.value if o.ok else None for o in outcomes]
                span.set(failed=sum(1 for s in scores if s is None))
            return scores
        scores = []
        for offset, (_, config) in enumerate(batch):
            # Each iteration spawns an independent sim starting at t=0,
            # so the generation span lives on the wall-clock lane.
            with tel.wall_span("fuzz.generation", pid="fuzzer",
                               category="fuzz",
                               iteration=first_iteration + offset) as span:
                result = self._run(config)
                score = score_result(result, self.weights)
                span.set(score=round(score.total, 3), valid=score.valid)
            scores.append(score)
        return scores

    # ------------------------------------------------------------------
    def run(self, iterations: int = 20, stop_on_first: bool = False,
            workers: int = 1, batch_size: int = 1,
            runner: Optional["ParallelRunner"] = None) -> FuzzReport:
        """Run the fuzzing loop for at most ``iterations`` rounds.

        ``batch_size`` fixes the generation schedule (how many
        candidates are drawn per pool snapshot); ``workers`` only
        decides how each batch is executed. Reports are therefore
        byte-identical across worker counts for a given
        ``batch_size``, and ``batch_size=1`` (the default) reproduces
        the historical strictly-serial schedule exactly.

        A ``runner`` may be injected (for pool reuse across campaigns
        or for tests); otherwise one is created when ``workers > 1``.
        Pool execution requires the default ``run_test`` runner — a
        custom ``run_fn`` keeps scoring in-process.
        """
        report = FuzzReport()
        tel = telemetry.current()
        m_iters = tel.counter("fuzz_iterations")
        m_invalid = tel.counter("fuzz_invalid_runs")
        m_findings = tel.counter("fuzz_findings")
        h_score = tel.histogram("fuzz_score",
                                buckets=(0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0))
        batch_size = max(1, batch_size)
        owns_runner = False
        if runner is None and workers > 1 and self._run is run_test:
            from ...exec import ParallelRunner
            from ...exec.tasks import score_config_task

            runner = ParallelRunner(score_config_task, workers=workers)
            owns_runner = True
        try:
            completed = 0
            stopped = False
            while completed < iterations and not stopped:
                batch = self._generate_batch(
                    min(batch_size, iterations - completed))
                scores = self._score_batch(batch, runner, completed + 1)
                # Step 4: selection — sequential, in candidate order, so
                # every RNG draw happens on the parent's single stream.
                for offset, ((candidate, _), score) in enumerate(
                        zip(batch, scores)):
                    iteration = completed + offset + 1
                    report.iterations_run = iteration
                    m_iters.inc()
                    if score is None or not score.valid:
                        report.invalid_runs += 1
                        m_invalid.inc()
                        continue
                    h_score.observe(score.total)
                    current_median = self._pool_median()
                    if score.total >= current_median or \
                            self.rng.random() < self.keep_probability:
                        self._admit(candidate, score.total)
                    report.pool_scores.append(score.total)
                    if score.total >= self.anomaly_threshold:
                        m_findings.inc()
                        report.findings.append(FuzzFinding(
                            iteration=iteration,
                            config=self._config_for(candidate),
                            score=score,
                        ))
                        if stop_on_first:
                            stopped = True
                            break
                completed += len(batch)
        finally:
            if owns_runner:
                runner.close()
        return report
