"""Scoring for fuzzing (Algorithm 1, step 3).

The score is the multi-objective function Score = Σᵢ wᵢ·s(i) where each
s(i) models one anomaly signal extracted from a finished test:

* counter inconsistencies found by the counter analyzer,
* Go-back-N FSM violations,
* message-completion-time inflation versus an analytic lower bound,
* *innocent-flow* MCT inflation (connections with no injected events
  suffering anyway — the noisy-neighbor signature),
* unexplained host-side packet discards,
* aborted QPs (retry exhaustion).

Tests that fail the integrity check are invalid rather than anomalous —
they are scored zero and flagged so the fuzzer does not chase dumping
artefacts.

Under coverage-guided fitness (FP4/P4Testgen-style structural
feedback) the fuzzer adds a *novelty* term on top of the analyzer
score: :func:`novelty_score` rewards a candidate for reaching coverage
points the campaign has never seen and for re-reaching rare ones.
Novelty is campaign state, not run state — it is computed by the
fuzzer's sequential selection phase against the cumulative campaign
map, never inside workers and never persisted into the store's
per-candidate score entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log10
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...coverage.map import CoverageMap
from ..analyzers.base import AnalyzerContext
from ..analyzers.registry import get_analyzer
from ..results import TestResult

__all__ = ["ScoreWeights", "Score", "score_result", "novelty_score"]


@dataclass(frozen=True)
class ScoreWeights:
    counter_inconsistency: float = 3.0
    fsm_violation: float = 4.0
    mct_inflation: float = 1.0
    innocent_inflation: float = 5.0
    unexplained_discards: float = 2.0
    aborted_qp: float = 4.0


@dataclass
class Score:
    total: float = 0.0
    valid: bool = True
    components: Dict[str, float] = field(default_factory=dict)
    anomalies: List[str] = field(default_factory=list)
    #: Micro-behavior coverage of the scored run (snapshot rows); rides
    #: on the compact score across the process boundary so the fuzzer's
    #: cumulative map is worker-count independent. None when disabled.
    coverage: Optional[List[list]] = None
    #: Coverage-novelty bonus assigned by the fuzzer's selection phase
    #: (guided mode only). Campaign-relative, so store entries persist
    #: it only on findings, never on cached candidate scores.
    novelty: float = 0.0

    @property
    def fitness(self) -> float:
        """Selection fitness: analyzer anomalies plus coverage novelty."""
        return self.total + self.novelty

    def add(self, name: str, value: float, detail: str = "") -> None:
        if value <= 0:
            return
        self.components[name] = self.components.get(name, 0.0) + value
        self.total += value
        if detail:
            self.anomalies.append(detail)


def novelty_score(rows: Optional[Iterable[Sequence]],
                  cumulative: CoverageMap,
                  first_hit_bonus: float = 2.0,
                  rare_hit_bonus: float = 1.0) -> Tuple[float, int]:
    """Novelty of one run's coverage snapshot against the campaign map.

    Returns ``(novelty, first_hits)``: ``first_hits`` is the number of
    ``(domain, point)`` keys the cumulative map has never seen (each
    worth ``first_hit_bonus``), and every hit point additionally earns
    a rarity share ``rare_hit_bonus / (1 + campaign hits so far)`` —
    first hits count 1.0, saturated points decay toward 0.

    Pure integer/float arithmetic over sorted snapshot rows: for a
    fixed candidate order the value is byte-identical across worker
    counts and crash-resume (the cumulative map round-trips through
    the journal).
    """
    first_hits = 0
    rarity = 0.0
    for domain, point, _count, _first_ns in rows or ():
        seen = cumulative.count(domain, point)
        if seen == 0:
            first_hits += 1
        rarity += 1.0 / (1.0 + seen)
    return first_hit_bonus * first_hits + rare_hit_bonus * rarity, first_hits


def _ideal_mct_ns(result: TestResult) -> float:
    """Analytic lower bound on one message's completion time."""
    traffic = result.config.traffic
    # Serialisation at 100 Gbps order of magnitude + a couple of RTTs.
    line_rate = 100e9
    serialisation = traffic.message_size * 8 / line_rate * 1e9
    rtt = 4 * result.config.switch.link_delay_ns + 4_000
    return serialisation + 3 * rtt


def score_result(result: TestResult,
                 weights: ScoreWeights = ScoreWeights()) -> Score:
    """Score one finished test for anomaly signals."""
    score = Score()
    if not result.integrity.ok:
        score.valid = False
        score.anomalies.append("invalid test: integrity check failed "
                               f"({result.integrity.summary()})")
        return score

    ctx = AnalyzerContext.for_result(result)
    counter_report = get_analyzer("counters").analyze(result.trace, ctx).data
    if counter_report.mismatches:
        score.add("counter_inconsistency",
                  weights.counter_inconsistency * len(counter_report.mismatches),
                  f"{len(counter_report.mismatches)} counter mismatch(es): "
                  + "; ".join(str(m) for m in counter_report.mismatches[:3]))

    fsm = get_analyzer("gbn").analyze(result.trace, ctx).data
    if fsm.violations:
        score.add("fsm_violation",
                  weights.fsm_violation * len(fsm.violations),
                  f"{len(fsm.violations)} Go-back-N violation(s)")

    ideal = max(1.0, _ideal_mct_ns(result))
    injected = {e.qpn for e in result.config.traffic.data_pkt_events}
    worst_innocent = 0.0
    worst_any = 0.0
    for qp in result.traffic_log.per_qp:
        worst = qp.max_mct_ns
        if worst is None:
            continue
        ratio = worst / ideal
        worst_any = max(worst_any, ratio)
        if qp.qp_index not in injected:
            worst_innocent = max(worst_innocent, ratio)
    if worst_any > 10:
        score.add("mct_inflation", weights.mct_inflation * log10(worst_any),
                  f"worst MCT {worst_any:.0f}x the analytic bound")
    if worst_innocent > 10:
        score.add("innocent_inflation",
                  weights.innocent_inflation * log10(worst_innocent),
                  f"innocent connection MCT {worst_innocent:.0f}x the bound")

    expected_drops = int(result.switch_counters.get("dropped_by_event", 0))
    host_discards = (result.requester_counters["rx_discards_phy"]
                     + result.responder_counters["rx_discards_phy"])
    unexplained = host_discards  # injector drops never reach the hosts
    if unexplained > 0:
        score.add("unexplained_discards",
                  weights.unexplained_discards * log10(1 + unexplained),
                  f"{unexplained} packets discarded at the hosts "
                  f"({expected_drops} injected drops never arrive)")

    if result.traffic_log.aborted_qps:
        score.add("aborted_qp",
                  weights.aborted_qp * result.traffic_log.aborted_qps,
                  f"{result.traffic_log.aborted_qps} QP(s) exhausted retries")
    return score
