"""Test configuration: the user-facing schema of Listings 1 and 2.

A test is described by three blocks — requester host, responder host
and traffic — plus optional switch / dumper-pool tuning. Configurations
are plain dataclasses constructible from nested dicts (the shape of the
paper's YAML files), and every field is validated on construction so a
bad config fails before the testbed is built.

Event descriptions are *intents*: relative QPN (1-based connection
index), relative PSN (1-based packet index within the connection's data
stream) and an iteration number for targeting retransmissions (§3.3).
Translation to absolute header values happens in
:mod:`repro.core.intent` once runtime metadata exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..rdma.profiles import PROFILES
from ..rdma.verbs import Verb
from ..switch.events import EventAction

__all__ = [
    "RoceParameters",
    "HostConfig",
    "DataPacketEvent",
    "PeriodicIntent",
    "PeriodicEcnIntent",
    "PeriodicDropIntent",
    "EtsQueueSpec",
    "EtsConfig",
    "TrafficConfig",
    "DumperPoolConfig",
    "SwitchConfig",
    "MeasurementFaultConfig",
    "RetryPolicy",
    "TestConfig",
    "ConfigError",
]


class ConfigError(ValueError):
    """Raised when a test configuration is invalid."""


@dataclass(frozen=True)
class RoceParameters:
    """Network-stack settings applied to a host before traffic (Listing 1)."""

    dcqcn_rp_enable: bool = True
    dcqcn_np_enable: bool = True
    #: Minimum interval between generated CNPs, µs (NVIDIA knob; §6.3).
    min_time_between_cnps_us: int = 4
    adaptive_retrans: bool = False
    slow_restart: bool = True

    @classmethod
    def from_dict(cls, data: Dict) -> "RoceParameters":
        return cls(
            dcqcn_rp_enable=bool(data.get("dcqcn-rp-enable", True)),
            dcqcn_np_enable=bool(data.get("dcqcn-np-enable", True)),
            min_time_between_cnps_us=int(data.get("min-time-between-cnps", 4)),
            adaptive_retrans=bool(data.get("adaptive-retrans", False)),
            slow_restart=bool(data.get("slow-restart", True)),
        )

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict` (round-trips exactly)."""
        return {
            "dcqcn-rp-enable": self.dcqcn_rp_enable,
            "dcqcn-np-enable": self.dcqcn_np_enable,
            "min-time-between-cnps": self.min_time_between_cnps_us,
            "adaptive-retrans": self.adaptive_retrans,
            "slow-restart": self.slow_restart,
        }


@dataclass(frozen=True)
class HostConfig:
    """One traffic-generation host (Listing 1)."""

    nic_type: str
    ip_list: Sequence[str] = ("10.0.0.1/24",)
    bandwidth_gbps: Optional[float] = None
    roce: RoceParameters = field(default_factory=RoceParameters)

    def __post_init__(self) -> None:
        if self.nic_type.lower() not in PROFILES:
            raise ConfigError(
                f"unknown nic type {self.nic_type!r}; known: {sorted(PROFILES)}"
            )
        if not self.ip_list:
            raise ConfigError("host needs at least one IP")
        if self.bandwidth_gbps is not None and self.bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")

    @classmethod
    def from_dict(cls, data: Dict) -> "HostConfig":
        nic = data.get("nic", data)
        return cls(
            nic_type=nic["type"],
            ip_list=tuple(nic.get("ip-list", ("10.0.0.1/24",))),
            bandwidth_gbps=nic.get("bandwidth-gbps"),
            roce=RoceParameters.from_dict(data.get("roce-parameters", {})),
        )

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict` (round-trips exactly)."""
        return {
            "nic": {
                "type": self.nic_type,
                "ip-list": list(self.ip_list),
                "bandwidth-gbps": self.bandwidth_gbps,
            },
            "roce-parameters": self.roce.to_dict(),
        }


@dataclass(frozen=True)
class DataPacketEvent:
    """One deterministic injection intent (Listing 2's data-pkt-events).

    ``delay`` and ``reorder`` are the §7 extension events; ``delay``
    additionally takes ``delay-us``, the hold time in microseconds.
    """

    qpn: int          # relative connection index, 1-based
    psn: int          # relative packet index within the stream, 1-based
    type: str         # drop | ecn | corrupt | delay | reorder
    #: (re)transmission round, 1-based (Fig. 3). 0 is an extension:
    #: "whichever round the packet first appears in" — the event then
    #: fires exactly once (loss-rate emulation semantics).
    iter: int = 1
    delay_us: float = 0.0

    def __post_init__(self) -> None:
        if self.qpn < 1:
            raise ConfigError("relative QPN is 1-based")
        if self.psn < 1:
            raise ConfigError("relative PSN is 1-based")
        if self.iter < 0:
            raise ConfigError("iter is 1-based (0 = any-round wildcard)")
        if self.type not in EventAction.ALL:
            raise ConfigError(
                f"unknown event type {self.type!r}; known: {EventAction.ALL}"
            )
        if self.type == "delay" and self.delay_us <= 0:
            raise ConfigError("delay events need a positive delay-us")
        if self.type != "delay" and self.delay_us:
            raise ConfigError("delay-us only applies to delay events")

    @classmethod
    def from_dict(cls, data: Dict) -> "DataPacketEvent":
        return cls(qpn=int(data["qpn"]), psn=int(data["psn"]),
                   type=str(data["type"]), iter=int(data.get("iter", 1)),
                   delay_us=float(data.get("delay-us", 0.0)))

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict` (round-trips exactly)."""
        return {"qpn": self.qpn, "psn": self.psn, "type": self.type,
                "iter": self.iter, "delay-us": self.delay_us}


@dataclass(frozen=True)
class PeriodicIntent:
    """Apply an event to every ``period``-th data packet of a connection.

    Deterministic periodic events are how Lumina emulates a fixed
    "loss/marking rate" while staying reproducible (§3.3 rejects
    "randomly drop 10%"-style descriptions): a 1% loss rate becomes
    "drop every 100th packet". The §6.2.1 ETS experiments use the ECN
    flavour ("mark one out of every 50 packets of QP0").
    """

    qpn: int
    period: int
    start: int = 1
    type: str = "ecn"

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigError("period must be >= 1")
        if self.qpn < 1 or self.start < 1:
            raise ConfigError("relative QPN/PSN are 1-based")
        if self.type not in ("ecn", "drop", "corrupt"):
            raise ConfigError(f"unsupported periodic event type {self.type!r}")

    @classmethod
    def from_dict(cls, data: Dict) -> "PeriodicIntent":
        return cls(qpn=int(data["qpn"]), period=int(data["period"]),
                   start=int(data.get("start", 1)),
                   type=str(data.get("type", "ecn")))

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict` (round-trips exactly)."""
        return {"qpn": self.qpn, "period": self.period,
                "start": self.start, "type": self.type}


def PeriodicEcnIntent(qpn: int, period: int, start: int = 1) -> PeriodicIntent:
    """ECN-flavoured periodic intent (the common case, kept as an alias)."""
    return PeriodicIntent(qpn=qpn, period=period, start=start, type="ecn")


def PeriodicDropIntent(qpn: int, period: int, start: int = 1) -> PeriodicIntent:
    """Drop-flavoured periodic intent: deterministic loss-rate emulation."""
    return PeriodicIntent(qpn=qpn, period=period, start=start, type="drop")


@dataclass(frozen=True)
class EtsQueueSpec:
    """One ETS traffic class: weight share in percent, or strict priority."""

    index: int
    weight_percent: float = 0.0
    strict_priority: bool = False


@dataclass(frozen=True)
class EtsConfig:
    """ETS queue layout plus the QP → queue mapping (requester side)."""

    queues: Sequence[EtsQueueSpec] = ()
    #: relative QPN (1-based) -> queue index.
    qp_to_queue: Dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class TrafficConfig:
    """The traffic block (Listing 2)."""

    num_connections: int = 1
    rdma_verb: str = "write"
    num_msgs_per_qp: int = 10
    mtu: int = 1024
    message_size: int = 10240
    multi_gid: bool = False
    barrier_sync: bool = True
    tx_depth: int = 1
    min_retransmit_timeout: int = 14   # exponent: RTO = 4.096 µs * 2^x
    max_retransmit_retry: int = 7
    data_pkt_events: Sequence[DataPacketEvent] = ()
    periodic_events: Sequence[PeriodicIntent] = ()
    ets: Optional[EtsConfig] = None

    def __post_init__(self) -> None:
        if self.num_connections < 1:
            raise ConfigError("need at least one connection")
        if self.num_msgs_per_qp < 1:
            raise ConfigError("need at least one message per QP")
        if self.mtu < 256 or self.mtu > 4096:
            raise ConfigError("RDMA MTU must be within [256, 4096]")
        if self.message_size < 1:
            raise ConfigError("message size must be positive")
        if self.tx_depth < 1:
            raise ConfigError("tx depth must be >= 1")
        if not 0 <= self.min_retransmit_timeout <= 31:
            raise ConfigError("timeout exponent must be in [0, 31]")
        if not 0 <= self.max_retransmit_retry <= 15:
            raise ConfigError("retry count must be in [0, 15]")
        try:
            verbs = self.verbs
        except ValueError as exc:
            raise ConfigError(f"unknown verb in {self.rdma_verb!r}") from exc
        if not verbs:
            raise ConfigError("rdma-verb must name at least one verb")
        total = self.packets_per_connection
        for event in self.data_pkt_events:
            if event.psn > total:
                raise ConfigError(
                    f"event targets packet {event.psn} but each connection "
                    f"only carries {total} data packets"
                )

    @property
    def verbs(self) -> List[Verb]:
        """Verb sequence; combos like ``"send,read"`` alternate (§3.2)."""
        return [Verb(v.strip().lower()) for v in self.rdma_verb.split(",") if v.strip()]

    @property
    def packets_per_message(self) -> int:
        return max(1, (self.message_size + self.mtu - 1) // self.mtu)

    @property
    def packets_per_connection(self) -> int:
        """Data packets one connection carries in iteration 1."""
        return self.packets_per_message * self.num_msgs_per_qp

    def with_events(self, events: Sequence[DataPacketEvent]) -> "TrafficConfig":
        return replace(self, data_pkt_events=tuple(events))

    @classmethod
    def from_dict(cls, data: Dict) -> "TrafficConfig":
        ets = None
        if "ets" in data:
            raw = data["ets"]
            ets = EtsConfig(
                queues=tuple(
                    EtsQueueSpec(index=int(q["index"]),
                                 weight_percent=float(q.get("weight", 0.0)),
                                 strict_priority=bool(q.get("strict", False)))
                    for q in raw.get("queues", ())
                ),
                qp_to_queue={int(k): int(v)
                             for k, v in raw.get("qp-to-queue", {}).items()},
            )
        return cls(
            num_connections=int(data.get("num-connections", 1)),
            rdma_verb=str(data.get("rdma-verb", "write")),
            num_msgs_per_qp=int(data.get("num-msgs-per-qp", 10)),
            mtu=int(data.get("mtu", 1024)),
            message_size=int(data.get("message-size", 10240)),
            multi_gid=bool(data.get("multi-gid", False)),
            barrier_sync=bool(data.get("barrier-sync", True)),
            tx_depth=int(data.get("tx-depth", 1)),
            min_retransmit_timeout=int(data.get("min-retransmit-timeout", 14)),
            max_retransmit_retry=int(data.get("max-retransmit-retry", 7)),
            data_pkt_events=tuple(
                DataPacketEvent.from_dict(e) for e in data.get("data-pkt-events", ())
            ),
            periodic_events=tuple(
                PeriodicIntent.from_dict(e) for e in data.get("periodic-events", ())
            ),
            ets=ets,
        )

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict` (round-trips exactly)."""
        data: Dict = {
            "num-connections": self.num_connections,
            "rdma-verb": self.rdma_verb,
            "num-msgs-per-qp": self.num_msgs_per_qp,
            "mtu": self.mtu,
            "message-size": self.message_size,
            "multi-gid": self.multi_gid,
            "barrier-sync": self.barrier_sync,
            "tx-depth": self.tx_depth,
            "min-retransmit-timeout": self.min_retransmit_timeout,
            "max-retransmit-retry": self.max_retransmit_retry,
            "data-pkt-events": [e.to_dict() for e in self.data_pkt_events],
            "periodic-events": [e.to_dict() for e in self.periodic_events],
        }
        if self.ets is not None:
            data["ets"] = {
                "queues": [
                    {"index": q.index, "weight": q.weight_percent,
                     "strict": q.strict_priority}
                    for q in self.ets.queues
                ],
                "qp-to-queue": {str(k): v
                                for k, v in self.ets.qp_to_queue.items()},
            }
        return data


@dataclass(frozen=True)
class DumperPoolConfig:
    """Shape of the traffic dumper pool."""

    num_servers: int = 2
    cores_per_server: int = 8
    core_service_ns: int = 170
    ring_slots: int = 1024
    bandwidth_gbps: Optional[float] = None  # None: match host bandwidth

    def __post_init__(self) -> None:
        if self.num_servers < 0:
            raise ConfigError("dumper pool size cannot be negative")

    def to_dict(self) -> Dict:
        """Dict shape of :meth:`TestConfig.from_dict`'s ``dumpers`` block."""
        return {
            "num-servers": self.num_servers,
            "cores-per-server": self.cores_per_server,
            "core-service-ns": self.core_service_ns,
            "ring-slots": self.ring_slots,
            "bandwidth-gbps": self.bandwidth_gbps,
        }


@dataclass(frozen=True)
class MeasurementFaultConfig:
    """Faults injected on the *measurement* path (mirror → dumper).

    Lumina treats capture loss as a first-class failure mode (§3.4/§3.5):
    the mirror-sequence scheme exists precisely because mirrored packets
    can be lost between switch and dumpers. This block stresses that
    path deterministically, the same way periodic intents stress the
    data path — losses are either periodic (every ``period``-th mirror
    clone) or Bernoulli with a seeded RNG stream, never wall-clock
    random.
    """

    #: Drop every ``period``-th mirrored clone (0 disables periodic loss).
    mirror_loss_period: int = 0
    #: Bernoulli loss probability per clone, from a seeded stream.
    mirror_loss_rate: float = 0.0
    #: Consecutive clones lost per loss trigger (burst length).
    mirror_loss_burst: int = 1
    #: Hold every ``mirror_delay_period``-th clone for this long, ns.
    mirror_delay_ns: int = 0
    mirror_delay_period: int = 0
    #: Override the dumper ring size to create ring-pressure scenarios.
    ring_slots: Optional[int] = None
    #: Stop injecting faults after this attempt number (1-based); lets
    #: tests model transient capture trouble that a retry recovers from.
    heal_after_attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mirror_loss_period < 0:
            raise ConfigError("mirror loss period cannot be negative")
        if not 0.0 <= self.mirror_loss_rate <= 1.0:
            raise ConfigError("mirror loss rate must be within [0, 1]")
        if self.mirror_loss_burst < 1:
            raise ConfigError("mirror loss burst must be >= 1")
        if self.mirror_delay_ns < 0:
            raise ConfigError("mirror delay cannot be negative")
        if self.mirror_delay_period < 0:
            raise ConfigError("mirror delay period cannot be negative")
        if self.mirror_delay_period and self.mirror_delay_ns <= 0:
            raise ConfigError("periodic mirror delay needs a positive delay-ns")
        if self.ring_slots is not None and self.ring_slots < 1:
            raise ConfigError("ring-slots override must be >= 1")
        if self.heal_after_attempt is not None and self.heal_after_attempt < 1:
            raise ConfigError("heal-after-attempt is 1-based")

    @property
    def injects_faults(self) -> bool:
        """True when any fault knob is actually armed."""
        return bool(self.mirror_loss_period or self.mirror_loss_rate
                    or self.mirror_delay_period
                    or self.ring_slots is not None)

    def active_on(self, attempt: int) -> bool:
        """Whether faults fire on the given 1-based attempt."""
        if not self.injects_faults:
            return False
        if self.heal_after_attempt is None:
            return True
        return attempt <= self.heal_after_attempt

    @classmethod
    def from_dict(cls, data: Dict) -> "MeasurementFaultConfig":
        return cls(
            mirror_loss_period=int(data.get("mirror-loss-period", 0)),
            mirror_loss_rate=float(data.get("mirror-loss-rate", 0.0)),
            mirror_loss_burst=int(data.get("mirror-loss-burst", 1)),
            mirror_delay_ns=int(data.get("mirror-delay-ns", 0)),
            mirror_delay_period=int(data.get("mirror-delay-period", 0)),
            ring_slots=data.get("ring-slots"),
            heal_after_attempt=data.get("heal-after-attempt"),
        )

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict` (round-trips exactly)."""
        return {
            "mirror-loss-period": self.mirror_loss_period,
            "mirror-loss-rate": self.mirror_loss_rate,
            "mirror-loss-burst": self.mirror_loss_burst,
            "mirror-delay-ns": self.mirror_delay_ns,
            "mirror-delay-period": self.mirror_delay_period,
            "ring-slots": self.ring_slots,
            "heal-after-attempt": self.heal_after_attempt,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff on integrity failure (§3.5).

    The paper's rule: a run whose capture failed the mirror-sequence
    check is *unreliable* and must be redone. ``max_attempts=1`` keeps
    the legacy single-shot behaviour; the backoff is simulated time
    between attempts, recorded on each :class:`AttemptRecord`.
    """

    max_attempts: int = 1
    backoff_ns: int = 1_000_000
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("retry policy needs at least one attempt")
        if self.backoff_ns < 0:
            raise ConfigError("backoff cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff multiplier must be >= 1")

    def backoff_for(self, attempt: int) -> int:
        """Backoff to wait *after* the given failed 1-based attempt."""
        return int(self.backoff_ns * self.backoff_multiplier ** (attempt - 1))

    @classmethod
    def from_dict(cls, data: Dict) -> "RetryPolicy":
        return cls(
            max_attempts=int(data.get("max-attempts", 1)),
            backoff_ns=int(data.get("backoff-ns", 1_000_000)),
            backoff_multiplier=float(data.get("backoff-multiplier", 2.0)),
        )

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict` (round-trips exactly)."""
        return {
            "max-attempts": self.max_attempts,
            "backoff-ns": self.backoff_ns,
            "backoff-multiplier": self.backoff_multiplier,
        }


@dataclass(frozen=True)
class SwitchConfig:
    """Event injector feature flags (Fig. 7's Lumina variants)."""

    event_injection: bool = True
    mirroring: bool = True
    randomize_mirror_udp_port: bool = True
    link_delay_ns: int = 500
    #: RED-style organic ECN marking above this egress-queue depth (KB);
    #: None leaves only injected (deterministic) marks, as in the paper.
    ecn_threshold_kb: Optional[int] = None

    def to_dict(self) -> Dict:
        """Dict shape of :meth:`TestConfig.from_dict`'s ``switch`` block."""
        return {
            "event-injection": self.event_injection,
            "mirroring": self.mirroring,
            "randomize-udp-port": self.randomize_mirror_udp_port,
            "link-delay-ns": self.link_delay_ns,
            "ecn-threshold-kb": self.ecn_threshold_kb,
        }


@dataclass(frozen=True)
class TestConfig:
    """A complete Lumina test: everything the orchestrator needs."""

    # Not a pytest class, despite the name.
    __test__ = False

    requester: HostConfig
    responder: HostConfig
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    dumpers: DumperPoolConfig = field(default_factory=DumperPoolConfig)
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    seed: int = 1
    #: Hard cap on simulated time, ns (guards against wedged QPs).
    max_duration_ns: int = 20_000_000_000
    #: Measurement-path fault injection; None = pristine capture plane.
    measurement_faults: Optional[MeasurementFaultConfig] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Upper bound on the post-traffic adaptive drain, ns.
    drain_deadline_ns: int = 50_000_000

    def __post_init__(self) -> None:
        if self.drain_deadline_ns < 0:
            raise ConfigError("drain deadline cannot be negative")

    @classmethod
    def from_dict(cls, data: Dict) -> "TestConfig":
        dumpers = data.get("dumpers", {})
        switch = data.get("switch", {})
        faults = None
        if "measurement-faults" in data:
            faults = MeasurementFaultConfig.from_dict(data["measurement-faults"])
        return cls(
            requester=HostConfig.from_dict(data["requester"]),
            responder=HostConfig.from_dict(data["responder"]),
            traffic=TrafficConfig.from_dict(data.get("traffic", {})),
            dumpers=DumperPoolConfig(
                num_servers=int(dumpers.get("num-servers", 2)),
                cores_per_server=int(dumpers.get("cores-per-server", 8)),
                core_service_ns=int(dumpers.get("core-service-ns", 170)),
                ring_slots=int(dumpers.get("ring-slots", 1024)),
                bandwidth_gbps=dumpers.get("bandwidth-gbps"),
            ),
            switch=SwitchConfig(
                event_injection=bool(switch.get("event-injection", True)),
                mirroring=bool(switch.get("mirroring", True)),
                randomize_mirror_udp_port=bool(switch.get("randomize-udp-port", True)),
                link_delay_ns=int(switch.get("link-delay-ns", 500)),
                ecn_threshold_kb=switch.get("ecn-threshold-kb"),
            ),
            seed=int(data.get("seed", 1)),
            max_duration_ns=int(data.get("max-duration-ns", 20_000_000_000)),
            measurement_faults=faults,
            retry=RetryPolicy.from_dict(data.get("retry", {})),
            drain_deadline_ns=int(data.get("drain-deadline-ns", 50_000_000)),
        )

    def to_dict(self) -> Dict:
        """Inverse of :meth:`from_dict`: ``TestConfig.from_dict(c.to_dict()) == c``.

        The emitted dict is JSON-serialisable and is the canonical shape
        the campaign store fingerprints (:mod:`repro.store.fingerprint`).
        """
        data: Dict = {
            "requester": self.requester.to_dict(),
            "responder": self.responder.to_dict(),
            "traffic": self.traffic.to_dict(),
            "dumpers": self.dumpers.to_dict(),
            "switch": self.switch.to_dict(),
            "seed": self.seed,
            "max-duration-ns": self.max_duration_ns,
            "retry": self.retry.to_dict(),
            "drain-deadline-ns": self.drain_deadline_ns,
        }
        if self.measurement_faults is not None:
            data["measurement-faults"] = self.measurement_faults.to_dict()
        return data
