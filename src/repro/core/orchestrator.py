"""The orchestrator: runs one complete Lumina test end to end (Fig. 1).

Sequence, matching §3:

1. Build the testbed from the config and apply host network settings.
2. Create QPs, exchange metadata, translate user intents into event
   table entries and install them on the switch **before** traffic
   starts (the stateless design of §3.3).
3. Run the traffic generators to completion (with a hard simulated-time
   cap to survive wedged QPs).
4. TERM the dumpers, collect all results (Table 1), reconstruct the
   packet trace and run the integrity check.
"""

from __future__ import annotations

from typing import List, Optional

from ..switch.events import RewriteRule
from ..telemetry import runtime as telemetry
from ..telemetry.instrument import attach_testbed
from .config import TestConfig
from .intent import expand_periodic_events, translate_events
from .results import HostCounters, TestResult
from .testbed import Host, Testbed, build_testbed
from .trace import check_integrity, reconstruct_trace
from .trafficgen import TrafficSession

__all__ = ["Orchestrator", "run_test", "run_tests"]


class Orchestrator:
    """Coordinates all components for a single test run."""

    def __init__(self, config: TestConfig,
                 rewrite_rules: Optional[List[RewriteRule]] = None):
        self.config = config
        self.testbed: Testbed = build_testbed(config)
        self.session = TrafficSession(self.testbed, config.traffic)
        self._extra_rewrites = list(rewrite_rules or [])

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Connect QPs and populate the event injector's tables."""
        self.session.connect_all()
        self.session.configure_ets()
        events = list(self.config.traffic.data_pkt_events)
        events.extend(expand_periodic_events(self.config.traffic,
                                          self.config.traffic.periodic_events))
        entries = translate_events(self.session.metadata, events)
        self.testbed.switch_controller.install_events(entries)
        for rule in self._extra_rewrites:
            self.testbed.switch_controller.install_rewrite(rule)

    def run(self) -> TestResult:
        """Execute the test and return the collected results."""
        tel = telemetry.active()
        session = telemetry.current()
        if tel is not None:
            attach_testbed(self.testbed, tel)
        with session.span("run.setup", pid="orchestrator"):
            self.setup()
        sim = self.testbed.sim
        process = self.session.start()
        with session.span("run.traffic", pid="orchestrator"):
            sim.run(until=self.config.max_duration_ns)
        # Drain: let in-flight control packets, mirrors and dumper rings
        # settle before TERM. The queue is usually empty already unless
        # the duration cap fired mid-transfer.
        with session.span("run.drain", pid="orchestrator"):
            sim.run_for(2_000_000)
        with session.span("run.collect", pid="orchestrator"):
            records = self.testbed.dumpers.terminate_all()
            trace = reconstruct_trace(records)
            switch_counters = self.testbed.switch_controller.dump_counters()
            integrity = check_integrity(trace, switch_counters)
        if not self.session.log.finished_at:
            # Duration cap hit: close the log so metrics stay meaningful.
            self.session.log.finished_at = sim.now
            self.session.log.aborted_qps = sum(
                1 for qp in self.session.requester_qps
                if qp.state.value == "error"
            )
        del process
        # sim.now sits at the duration cap (run() advances the clock);
        # the meaningful duration is when traffic actually finished.
        duration = self.session.log.finished_at or sim.now
        if tel is not None:
            probe = getattr(sim, "probe", None)
            if probe is not None:
                probe.flush()
            session.gauge("run_duration_ns").set(duration)
            session.gauge("run_trace_packets").set(len(trace))
            session.gauge("run_integrity_ok").set(int(integrity.ok))
        return TestResult(
            config=self.config,
            metadata=self.session.metadata,
            trace=trace,
            integrity=integrity,
            requester_counters=self._host_counters(self.testbed.requester,
                                                   self.config.requester.nic_type),
            responder_counters=self._host_counters(self.testbed.responder,
                                                   self.config.responder.nic_type),
            traffic_log=self.session.log,
            switch_counters=switch_counters,
            duration_ns=duration,
            dumper_discards=self.testbed.dumpers.total_discards,
        )

    @staticmethod
    def _host_counters(host: Host, nic_type: str) -> HostCounters:
        counters = host.nic.counters
        return HostCounters(
            host=host.name,
            nic_type=nic_type,
            canonical=counters.snapshot(),
            vendor=counters.vendor_snapshot(),
            suppressed={name: counters.suppressed(name)
                        for name in counters.stuck_counters},
        )


def run_test(config: TestConfig,
             rewrite_rules: Optional[List[RewriteRule]] = None) -> TestResult:
    """Convenience one-shot: build, run and collect a test."""
    return Orchestrator(config, rewrite_rules=rewrite_rules).run()


def run_tests(configs: List[TestConfig], workers: int = 1,
              task_timeout_s: Optional[float] = None) -> List[TestResult]:
    """Run a batch of independent tests, optionally on a process pool.

    Results come back in config order and are identical for any worker
    count (each run is seed-deterministic and fully isolated). Full
    :class:`TestResult` objects — traces included — cross the process
    boundary, so for very large campaigns prefer a compact task
    (see :mod:`repro.exec.tasks`) over this convenience.

    Raises ``RuntimeError`` if any run fails outright; worker crashes
    are retried and fall back to in-process execution first.
    """
    if workers <= 1:
        return [run_test(config) for config in configs]
    from ..exec import ParallelRunner
    from ..exec.tasks import run_config_task

    with ParallelRunner(run_config_task, workers=workers,
                        task_timeout_s=task_timeout_s) as runner:
        outcomes = runner.map([{"config": config} for config in configs])
    failures = [o for o in outcomes if not o.ok]
    if failures:
        raise RuntimeError(
            f"{len(failures)} of {len(configs)} runs failed; first: "
            f"{failures[0].error}")
    return [o.value for o in outcomes]
