"""The orchestrator: runs one complete Lumina test end to end (Fig. 1).

Sequence, matching §3:

1. Build the testbed from the config and apply host network settings.
2. Create QPs, exchange metadata, translate user intents into event
   table entries and install them on the switch **before** traffic
   starts (the stateless design of §3.3).
3. Run the traffic generators to completion (with a hard simulated-time
   cap to survive wedged QPs).
4. TERM the dumpers, collect all results (Table 1), reconstruct the
   packet trace and run the integrity check.

Integrity-driven recovery (§3.5): the drain before TERM is adaptive —
it runs until the mirror queues, dumper rings and any delayed-clone
backlog are empty (bounded by ``drain_deadline_ns``) instead of a fixed
2 ms. If the integrity check still fails, the run is re-executed under
the config's :class:`~repro.core.config.RetryPolicy` with an
attempt-derived RNG stream, and every attempt is recorded on the
returned :class:`~repro.core.results.TestResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # avoid a runtime core -> store import cycle
    from ..store.index import CampaignStore

from ..coverage import runtime as coverage
from ..net.checksum import icrc_for
from ..net.checksum import icrc_batch_stats
from ..net.packet import pack_cache_hits
from ..switch.events import RewriteRule
from ..telemetry import runtime as telemetry
from ..telemetry.instrument import attach_testbed
from .config import TestConfig
from .intent import expand_periodic_events, translate_events
from .results import AttemptRecord, HostCounters, TestResult
from .testbed import Host, Testbed, build_testbed
from .trace import check_integrity, reconstruct_trace
from .trafficgen import TrafficSession

__all__ = ["Orchestrator", "run_test", "run_tests"]

#: The legacy fixed drain; the adaptive drain's first (and usually only)
#: slice, so quiescent runs stay bit-for-bit identical to before.
_BASE_DRAIN_NS = 2_000_000
#: Granularity of subsequent drain slices while queues are non-empty.
_DRAIN_SLICE_NS = 500_000


class Orchestrator:
    """Coordinates all components for a single test run."""

    def __init__(self, config: TestConfig,
                 rewrite_rules: Optional[List[RewriteRule]] = None):
        self.config = config
        self.testbed: Testbed = build_testbed(config)
        self.session = TrafficSession(self.testbed, config.traffic)
        self._extra_rewrites = list(rewrite_rules or [])

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Connect QPs and populate the event injector's tables."""
        self.session.connect_all()
        self.session.configure_ets()
        events = list(self.config.traffic.data_pkt_events)
        events.extend(expand_periodic_events(self.config.traffic,
                                          self.config.traffic.periodic_events))
        entries = translate_events(self.session.metadata, events)
        self.testbed.switch_controller.install_events(entries)
        for rule in self._extra_rewrites:
            self.testbed.switch_controller.install_rewrite(rule)

    def run(self) -> TestResult:
        """Execute the test, retrying on integrity failure (§3.5).

        Attempts are bounded by ``config.retry``; each failed attempt
        waits the policy's (simulated-time) backoff before the next one
        starts. The returned result is the *last* attempt's, with every
        attempt — successful or not — recorded on ``result.attempts``.
        """
        session = telemetry.current()
        m_retries = session.counter("run_retries")
        m_integrity_failures = session.counter("run_integrity_failures")
        # Hot-path cache effectiveness: record per-run deltas of the
        # process-wide icrc_for lru_cache and pack_headers() counters.
        icrc_info_start = icrc_for.cache_info()
        batch_hits_start, batch_misses_start = icrc_batch_stats()
        pack_hits_start = pack_cache_hits()
        policy = self.config.retry
        cov = coverage.active()
        if cov is not None:
            cov.push_scope()
        try:
            attempts: List[AttemptRecord] = []
            backoff = 0
            result: TestResult
            while True:
                attempt = len(attempts) + 1
                if attempt > 1:
                    m_retries.inc()
                    self.testbed = build_testbed(self.config, attempt=attempt)
                    self.session = TrafficSession(self.testbed,
                                                  self.config.traffic)
                    if backoff:
                        # Idle the fresh simulation through the backoff so the
                        # retried trace's timestamps reflect the wait.
                        self.testbed.sim.run_for(backoff)
                if cov is not None:
                    # Each attempt gets a clean flight-recorder timeline;
                    # only the final attempt's rings survive onto the result.
                    cov.reset_recorders()
                result = self._run_attempt()
                record = AttemptRecord(
                    attempt=attempt,
                    integrity=result.integrity,
                    trace_packets=len(result.trace),
                    dumper_discards=result.dumper_discards,
                    duration_ns=result.duration_ns,
                )
                attempts.append(record)
                if result.integrity.ok:
                    break
                m_integrity_failures.inc()
                if attempt >= policy.max_attempts:
                    break
                backoff = policy.backoff_for(attempt)
                record.backoff_ns = backoff
        finally:
            if cov is not None:
                run_map = cov.pop_scope()
        result.attempts = attempts
        if cov is not None:
            result.coverage = run_map.snapshot()
            if len(attempts) > 1 or not result.integrity.ok:
                result.flight_record = cov.flight_snapshot()
        if telemetry.active() is not None:
            session.gauge("run_attempts").set(len(attempts))
            icrc_info = icrc_for.cache_info()
            batch_hits, batch_misses = icrc_batch_stats()
            session.counter("icrc_cache_hits").inc(
                icrc_info.hits - icrc_info_start.hits
                + batch_hits - batch_hits_start)
            session.counter("icrc_cache_misses").inc(
                icrc_info.misses - icrc_info_start.misses
                + batch_misses - batch_misses_start)
            session.counter("pack_cache_hits").inc(
                pack_cache_hits() - pack_hits_start)
        return result

    def _run_attempt(self) -> TestResult:
        """One build-run-collect cycle on the current testbed."""
        tel = telemetry.active()
        session = telemetry.current()
        if tel is not None:
            attach_testbed(self.testbed, tel)
        with session.span("run.setup", pid="orchestrator"):
            self.setup()
        sim = self.testbed.sim
        process = self.session.start()
        with session.span("run.traffic", pid="orchestrator"):
            sim.run(until=sim.now + self.config.max_duration_ns)
        # Drain: let in-flight control packets, mirrors and dumper rings
        # settle before TERM. The queue is usually empty already unless
        # the duration cap fired mid-transfer.
        with session.span("run.drain", pid="orchestrator"):
            self._drain(sim)
        with session.span("run.collect", pid="orchestrator"):
            records = self.testbed.dumpers.terminate_all()
            switch_counters = self.testbed.switch_controller.dump_counters()
            trace = reconstruct_trace(
                records,
                expected_packets=int(switch_counters.get("mirrored_packets", 0)),
            )
            integrity = check_integrity(trace, switch_counters)
        if not self.session.log.finished_at:
            # Duration cap hit: close the log so metrics stay meaningful.
            self.session.log.finished_at = sim.now
            self.session.log.aborted_qps = sum(
                1 for qp in self.session.requester_qps
                if qp.state.value == "error"
            )
        del process
        # sim.now sits at the duration cap (run() advances the clock);
        # the meaningful duration is when traffic actually finished.
        duration = self.session.log.finished_at or sim.now
        if tel is not None:
            probe = getattr(sim, "probe", None)
            if probe is not None:
                probe.flush()
            session.gauge("run_duration_ns").set(duration)
            session.gauge("run_trace_packets").set(len(trace))
            session.gauge("run_integrity_ok").set(int(integrity.ok))
        return TestResult(
            config=self.config,
            metadata=self.session.metadata,
            trace=trace,
            integrity=integrity,
            requester_counters=self._host_counters(self.testbed.requester,
                                                   self.config.requester.nic_type),
            responder_counters=self._host_counters(self.testbed.responder,
                                                   self.config.responder.nic_type),
            traffic_log=self.session.log,
            switch_counters=switch_counters,
            duration_ns=duration,
            dumper_discards=self.testbed.dumpers.total_discards,
            dumper_core_stats=self.testbed.dumpers.per_core_stats,
        )

    def _drain(self, sim) -> None:
        """Adaptive drain: run until the measurement plane is empty.

        The first slice equals the legacy fixed 2 ms drain, so a run
        that is already quiescent behaves exactly as before. Only when
        mirror queues, dumper rings or delayed clones are still pending
        does the drain keep going, in sub-ms slices, up to the config's
        drain deadline.
        """
        deadline = sim.now + max(self.config.drain_deadline_ns, _BASE_DRAIN_NS)
        sim.run_for(min(_BASE_DRAIN_NS, deadline - sim.now))
        while not self._measurement_quiescent() and sim.now < deadline:
            sim.run_for(min(_DRAIN_SLICE_NS, deadline - sim.now))

    def _measurement_quiescent(self) -> bool:
        """No bytes left anywhere on the mirror → dumper path."""
        testbed = self.testbed
        if any(t.port.queued_bytes for t in testbed.switch.mirror.targets):
            return False
        if testbed.dumpers.total_backlog:
            return False
        injector = testbed.fault_injector
        return injector is None or injector.quiescent

    @staticmethod
    def _host_counters(host: Host, nic_type: str) -> HostCounters:
        counters = host.nic.counters
        return HostCounters(
            host=host.name,
            nic_type=nic_type,
            canonical=counters.snapshot(),
            vendor=counters.vendor_snapshot(),
            suppressed={name: counters.suppressed(name)
                        for name in counters.stuck_counters},
        )


def run_test(config: TestConfig,
             rewrite_rules: Optional[List[RewriteRule]] = None,
             store: Optional["CampaignStore"] = None) -> TestResult:
    """Convenience one-shot: build, run and collect a test.

    With a ``store``, the config's fingerprint is probed first and a
    cached run is replayed — full trace included — instead of
    simulating again; fresh results are written back. Rewrite rules
    are extra-config state, so rewrite-rule runs bypass the store.

    With coverage enabled, the run's coverage snapshot rides on the
    result and is merged into the live session map here — the same
    single merge point for fresh, cached and pool-executed runs, which
    is what keeps campaign maps byte-identical across worker counts.
    """
    cov = coverage.active()
    if store is not None and not rewrite_rules:
        from ..store.fingerprint import config_fingerprint
        from ..store.serialize import decode_result, encode_result

        extra = {"coverage": True} if cov is not None else None
        fp = config_fingerprint(config, kind="result", extra=extra)
        cached = store.get(fp)
        if cached is not None:
            result = decode_result(cached)
        else:
            result = Orchestrator(config).run()
            store.put(fp, "result", encode_result(result))
    else:
        result = Orchestrator(config, rewrite_rules=rewrite_rules).run()
    if cov is not None and result.coverage:
        cov.merge_snapshot(result.coverage)
    return result


def run_tests(configs: List[TestConfig], workers: int = 1,
              task_timeout_s: Optional[float] = None,
              store: Optional["CampaignStore"] = None) -> List[TestResult]:
    """Run a batch of independent tests, optionally on a process pool.

    Results come back in config order and are identical for any worker
    count (each run is seed-deterministic and fully isolated). Full
    :class:`TestResult` objects — traces included — cross the process
    boundary, so for very large campaigns prefer a compact task
    (see :mod:`repro.exec.tasks`) over this convenience.

    Raises ``RuntimeError`` if any run fails outright; worker crashes
    are retried and fall back to in-process execution first.

    ``store`` dedups: cached configs are replayed from disk and only
    the misses are dispatched (results are written back).
    """
    if workers <= 1:
        return [run_test(config, store=store) for config in configs]
    cov = coverage.active()
    results: List[Optional[TestResult]] = [None] * len(configs)
    pending = list(range(len(configs)))
    fps: List[Optional[str]] = [None] * len(configs)
    if store is not None:
        from ..store.fingerprint import config_fingerprint
        from ..store.serialize import decode_result

        extra = {"coverage": True} if cov is not None else None
        pending = []
        for i, config in enumerate(configs):
            fps[i] = config_fingerprint(config, kind="result", extra=extra)
            cached = store.get(fps[i])
            if cached is not None:
                results[i] = decode_result(cached)
            else:
                pending.append(i)
    merged_in_process = set()
    if pending:
        from ..exec import ParallelRunner
        from ..exec.tasks import run_config_task

        with ParallelRunner(run_config_task, workers=workers,
                            task_timeout_s=task_timeout_s) as runner:
            outcomes = runner.map([{"config": configs[i]} for i in pending])
        failures = [o for o in outcomes if not o.ok]
        if failures:
            raise RuntimeError(
                f"{len(failures)} of {len(configs)} runs failed; first: "
                f"{failures[0].error}")
        if store is not None:
            from ..store.serialize import encode_result

            for i, outcome in zip(pending, outcomes):
                results[i] = outcome.value
                store.put(fps[i], "result", encode_result(outcome.value))
        else:
            for i, outcome in zip(pending, outcomes):
                results[i] = outcome.value
        for i, outcome in zip(pending, outcomes):
            if outcome.ran_in_process:
                # The fallback ran run_test in this process, which
                # already merged its coverage into the session.
                merged_in_process.add(i)
    if cov is not None:
        # Same merge route as run_test, in config order: worker-local
        # maps ride on each result and fold here, so any worker count
        # produces an identical session map.
        for i, result in enumerate(results):
            if i in merged_in_process:
                continue
            if result is not None and result.coverage:
                cov.merge_snapshot(result.coverage)
    return results  # type: ignore[return-value]
