"""CampaignDaemon: queue + dispatcher + retention + HTTP under one roof.

State-directory layout (everything the daemon knows survives a kill)::

    <state_dir>/
      queue.jsonl        # the journaled job queue
      store/             # shared campaign store (results + unit caches)
      jobs/<job-id>/     # per-job: spec.json, result.json, coverage/
                         # and telemetry/ exports
      campaigns/<fp>/    # fuzz generation journals, keyed by spec
                         # fingerprint (survive resubmission)

Start/stop are idempotent; ``run_forever`` blocks for the CLI's
``serve`` command. Tests drive the daemon in-process (often with an
:class:`~repro.service.dispatcher.InlineJobExecutor`) on an ephemeral
loopback port.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

from .dispatcher import Dispatcher
from .queue import Job, JobQueue
from .retention import RetentionDaemon

__all__ = ["CampaignDaemon"]


class CampaignDaemon:
    """The long-running campaign service (ROADMAP item 1)."""

    def __init__(self, state_dir: str, host: str = "127.0.0.1",
                 port: int = 0, executor=None,
                 retention_interval_s: float = 60.0,
                 retain_entries: Optional[int] = None):
        self.state_dir = state_dir
        self.host = host
        self._requested_port = port
        os.makedirs(state_dir, exist_ok=True)
        self.store_root = os.path.join(state_dir, "store")
        self.jobs_root = os.path.join(state_dir, "jobs")
        os.makedirs(self.jobs_root, exist_ok=True)
        self.queue = JobQueue(state_dir)
        self.dispatcher = Dispatcher(
            self.queue, self.jobs_root, store_root=self.store_root,
            executor=executor,
            campaigns_root=os.path.join(state_dir, "campaigns"))
        self.retention = RetentionDaemon(
            store_factory=self._open_store,
            busy=lambda: self.dispatcher.busy,
            interval_s=retention_interval_s,
            retain_entries=retain_entries)
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._started = False

    def _open_store(self):
        from ..store import CampaignStore

        return CampaignStore(self.store_root)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        from .http import make_server

        self._server = make_server(self, self.host, self._requested_port)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="repro-service-http",
            daemon=True)
        self._server_thread.start()
        self.dispatcher.start()
        self.retention.start()
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        self.retention.stop()
        self.dispatcher.stop()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(5.0)
            self._server_thread = None
        self._started = False

    def run_forever(self) -> None:
        """Start and block until interrupted (the ``serve`` command)."""
        self.start()
        try:
            while True:
                threading.Event().wait(3600)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "CampaignDaemon":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection --------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("daemon is not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def job_dir(self, job_id: str) -> str:
        return self.dispatcher.job_dir(job_id)

    def health_body(self) -> Dict:
        store = self._open_store()
        return {
            "state-dir": self.state_dir,
            "jobs": self.queue.counts(),
            "queue-depth": self.queue.depth(),
            "dispatcher": dict(self.dispatcher.counters),
            "retention": dict(self.retention.counters),
            "store-entries": len(store),
        }

    def progress_body(self, job: Job) -> Dict:
        """Incremental progress for one job, fed from on-disk state.

        Fuzz jobs report their campaign journal's latest generation;
        coverage-enabled jobs report the exported point count; both are
        written incrementally by the job process, so this works while
        the job is still running.
        """
        body: Dict = {"id": job.id, "state": job.state.value,
                      "job-kind": job.spec.kind}
        position = self.queue.position(job.id)
        if position is not None:
            body["queue-position"] = position
        job_dir = self.job_dir(job.id)
        if job.spec.kind == "fuzz":
            from ..store.journal import CampaignJournal

            journal = CampaignJournal(os.path.join(
                self.dispatcher.campaigns_root, job.fingerprint[:32],
                "journal.jsonl"))
            last = journal.last("generation")
            if last is not None:
                body["generation"] = last.get("generation")
                body["completed-iterations"] = last.get("completed")
        coverage_path = os.path.join(job_dir, "coverage", "coverage.json")
        if os.path.exists(coverage_path):
            import json

            try:
                with open(coverage_path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
                body["coverage-points"] = len(doc.get("points", []))
            except (OSError, json.JSONDecodeError):
                pass  # a torn snapshot just means "no number yet"
        if os.path.isdir(os.path.join(job_dir, "telemetry")):
            body["telemetry-exported"] = True
        return body
