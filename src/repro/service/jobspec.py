"""Versioned job specifications — the campaign service's unit of work.

A :class:`JobSpec` is a plain JSON document describing one campaign
command (``run``, ``suite``, ``fuzz`` or ``sweep``) with exactly the
inputs the one-shot CLI would have taken, so a job submitted to the
daemon and the same command run locally follow one execution path and
produce byte-identical result documents.

Specs are *content-addressed* through the store canonicalizer: the
fingerprint covers ``(kind, payload)`` — everything that determines the
result — and deliberately excludes execution knobs (``priority``,
``workers``, ``timeout_s``), which change how fast a job runs, never
what it produces. Resubmitting a finished spec therefore replays its
result document straight from the service store without spawning a
worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.config import TestConfig
from ..store.fingerprint import fingerprint
from ..store.serialize import unwrap_document, wrap_document

__all__ = ["JobSpec", "encode_jobspec", "decode_jobspec",
           "JOB_KINDS"]

#: The campaign commands a daemon accepts.
JOB_KINDS = ("run", "suite", "fuzz", "sweep")

#: Allowed payload keys per kind — submissions with unknown keys are
#: rejected up front (a typoed knob must not silently fingerprint as a
#: different job).
_SESSION_KEYS = {"coverage", "telemetry"}
_PAYLOAD_KEYS = {
    "run": {"config", "faults"} | _SESSION_KEYS,
    "suite": {"nic", "seed", "checks", "faults"} | _SESSION_KEYS,
    "fuzz": {"config", "target", "nic", "seed", "iterations", "batch",
             "threshold", "stop-on-first", "coverage-fitness",
             "faults"} | _SESSION_KEYS,
    "sweep": {"config", "nics", "seeds", "base-seed", "verb",
              "connections", "messages", "size", "faults",
              "timeout"} | _SESSION_KEYS,
}


def _with_sessions(payload: Dict, coverage: bool,
                   telemetry: bool) -> Dict:
    """Fold session requests into a payload.

    The keys appear only when enabled, so a plain spec fingerprints
    identically to one built before sessions existed — and a
    coverage-annotated job (whose inner runs cache at coverage-flagged
    store addresses) is a *different* document from a plain one, just
    as ``--coverage`` changes a local campaign's store addresses.
    """
    if coverage:
        payload["coverage"] = True
    if telemetry:
        payload["telemetry"] = True
    return payload


def _config_dict(config: Union[TestConfig, Dict, None]) -> Optional[Dict]:
    if config is None:
        return None
    if isinstance(config, TestConfig):
        return config.to_dict()
    return dict(config)


@dataclass(frozen=True)
class JobSpec:
    """One queued unit of campaign work.

    ``payload`` is kind-specific plain JSON (see the ``for_*``
    constructors); ``priority`` orders the queue (higher first, FIFO
    within a priority); ``workers`` sizes the job's internal
    :class:`~repro.exec.ParallelRunner` pool; ``timeout_s`` bounds the
    job's wall-clock execution in the daemon (None: unbounded).
    """

    kind: str
    payload: Dict = field(default_factory=dict)
    priority: int = 0
    workers: int = 1
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"known: {list(JOB_KINDS)}")
        unknown = set(self.payload) - _PAYLOAD_KEYS[self.kind]
        if unknown:
            raise ValueError(f"unknown {self.kind} payload keys: "
                             f"{sorted(unknown)}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    # -- content address ------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """SHA-256 content address over ``(kind, payload)`` only.

        Execution knobs are excluded by design: results are
        byte-identical for any worker count (the repo-wide determinism
        contract), so two specs differing only in ``workers`` /
        ``priority`` / ``timeout_s`` share one cached result.
        """
        return fingerprint("job", {"job-kind": self.kind,
                                   "payload": self.payload})

    # -- constructors (one per campaign command) ------------------------
    @classmethod
    def for_run(cls, config: Union[TestConfig, Dict],
                faults: Optional[str] = None, coverage: bool = False,
                telemetry: bool = False, **opts) -> "JobSpec":
        """One end-to-end test run of ``config`` (dict or TestConfig)."""
        return cls("run", _with_sessions(
            {"config": _config_dict(config), "faults": faults},
            coverage, telemetry), **opts)

    @classmethod
    def for_suite(cls, nic: str, seed: Optional[int] = None,
                  checks: Optional[List[str]] = None,
                  faults: Optional[str] = None, coverage: bool = False,
                  telemetry: bool = False, **opts) -> "JobSpec":
        """The conformance battery (or a subset) against one NIC model."""
        return cls("suite", _with_sessions(
            {"nic": nic, "seed": seed,
             "checks": list(checks) if checks else None,
             "faults": faults}, coverage, telemetry), **opts)

    @classmethod
    def for_fuzz(cls, config: Union[TestConfig, Dict, None] = None,
                 target: Optional[str] = None, nic: str = "cx5",
                 seed: Optional[int] = None, iterations: int = 20,
                 batch: int = 4, threshold: float = 3.0,
                 stop_on_first: bool = False,
                 coverage_fitness: Optional[bool] = None,
                 faults: Optional[str] = None, coverage: bool = False,
                 telemetry: bool = False, **opts) -> "JobSpec":
        """Algorithm-1 fuzzing around a config or a named target."""
        if config is None and target is None:
            raise ValueError("fuzz jobs need a config or a target")
        return cls("fuzz", _with_sessions(
            {"config": _config_dict(config),
             "target": target, "nic": nic, "seed": seed,
             "iterations": iterations, "batch": batch,
             "threshold": threshold,
             "stop-on-first": bool(stop_on_first),
             "coverage-fitness": coverage_fitness,
             "faults": faults}, coverage, telemetry), **opts)

    @classmethod
    def for_sweep(cls, nics: List[str], seeds: int = 1, base_seed: int = 1,
                  config: Union[TestConfig, Dict, None] = None,
                  verb: str = "write", connections: int = 2,
                  messages: int = 4, size: int = 20480,
                  faults: Optional[str] = None,
                  timeout: Optional[float] = None, coverage: bool = False,
                  telemetry: bool = False, **opts) -> "JobSpec":
        """One workload across a NIC × seed grid."""
        return cls("sweep", _with_sessions(
            {"config": _config_dict(config),
             "nics": list(nics), "seeds": seeds,
             "base-seed": base_seed, "verb": verb,
             "connections": connections,
             "messages": messages, "size": size,
             "faults": faults, "timeout": timeout},
            coverage, telemetry), **opts)


def encode_jobspec(spec: JobSpec) -> Dict:
    """``JobSpec`` → versioned wire/disk document."""
    return wrap_document("job-spec", {
        "job-kind": spec.kind,
        "payload": spec.payload,
        "priority": spec.priority,
        "workers": spec.workers,
        "timeout-s": spec.timeout_s,
    })


def decode_jobspec(data: Dict) -> JobSpec:
    """Inverse of :func:`encode_jobspec`.

    Also accepts a legacy unversioned body (``{"job-kind": ...,
    "payload": ...}``) with a DeprecationWarning, per the repo-wide
    document-versioning policy.
    """
    _version, body = unwrap_document(data, kind="job-spec"
                                     if "schema-version" in data else None)
    try:
        kind = body["job-kind"]
    except KeyError:
        raise ValueError("job-spec document has no job-kind") from None
    return JobSpec(kind=kind, payload=dict(body.get("payload") or {}),
                   priority=int(body.get("priority", 0)),
                   workers=int(body.get("workers", 1)),
                   timeout_s=body.get("timeout-s"))
