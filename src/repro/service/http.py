"""The daemon's REST/JSON surface — stdlib ``http.server`` only.

Routes (all under ``/api/v1``, all payloads versioned documents):

====== ============================ =======================================
POST   /api/v1/jobs                 submit a job-spec document → job-status
GET    /api/v1/jobs                 list every job → job-list
GET    /api/v1/jobs/<id>            one job → job-status
GET    /api/v1/jobs/<id>/results    the result document, byte-verbatim
GET    /api/v1/jobs/<id>/progress   incremental progress → job-progress
POST   /api/v1/jobs/<id>/cancel     cancel queued/running → job-cancel
GET    /api/v1/health               daemon health → service-health
====== ============================ =======================================

The results route streams ``result.json`` exactly as the job process
wrote it (no re-serialization), which is what lets CI ``cmp`` a fetched
result against the one-shot CLI artifact.
"""

from __future__ import annotations

import json
import os
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..store.serialize import wrap_document
from .jobs import RESULT_FILE
from .jobspec import decode_jobspec

__all__ = ["make_server"]

_JOB_ROUTE = re.compile(
    r"^/api/v1/jobs/([A-Za-z0-9_-]+)(/results|/progress|/cancel)?$")

#: Submission bodies are small JSON documents; anything bigger is a
#: client bug, not a job.
_MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    daemon = None  # injected by make_server's subclass
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the daemon is quiet; health/status carry the signal

    def _send_json(self, status: int, doc: Dict) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, wrap_document("error",
                                              {"error": message}))

    def _read_body(self) -> Optional[Dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY_BYTES:
            return None
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None

    def _route(self) -> Tuple[Optional[str], Optional[str]]:
        """``(job_id, action)`` for job routes, else ``(None, None)``."""
        match = _JOB_ROUTE.match(self.path)
        if match is None:
            return None, None
        return match.group(1), (match.group(2) or "").lstrip("/") or None

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/api/v1/health":
            self._send_json(200, wrap_document(
                "service-health", self.daemon.health_body()))
            return
        if self.path == "/api/v1/jobs":
            self._send_json(200, wrap_document("job-list", {
                "jobs": [job.status_body()
                         for job in self.daemon.queue.jobs()]}))
            return
        job_id, action = self._route()
        if job_id is None or action == "cancel":
            self._send_error_json(404, f"no route for GET {self.path}")
            return
        job = self.daemon.queue.get(job_id)
        if job is None:
            self._send_error_json(404, f"unknown job {job_id}")
            return
        if action is None:
            self._send_json(200, wrap_document("job-status",
                                               job.status_body()))
        elif action == "progress":
            self._send_json(200, wrap_document(
                "job-progress", self.daemon.progress_body(job)))
        elif action == "results":
            self._send_results(job)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/api/v1/jobs":
            self._submit()
            return
        job_id, action = self._route()
        if job_id is None or action != "cancel":
            self._send_error_json(404, f"no route for POST {self.path}")
            return
        try:
            outcome = self.daemon.queue.cancel(job_id)
        except KeyError:
            self._send_error_json(404, f"unknown job {job_id}")
            return
        self._send_json(200, wrap_document("job-cancel",
                                           {"id": job_id,
                                            "cancel": outcome}))

    # -- handlers -------------------------------------------------------
    def _submit(self) -> None:
        body = self._read_body()
        if body is None:
            self._send_error_json(400, "request body is not JSON")
            return
        try:
            spec = decode_jobspec(body)
        except ValueError as exc:
            self._send_error_json(400, f"bad job spec: {exc}")
            return
        job = self.daemon.queue.submit(spec)
        self._send_json(201, wrap_document("job-status",
                                           job.status_body()))

    def _send_results(self, job) -> None:
        path = os.path.join(self.daemon.job_dir(job.id), RESULT_FILE)
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            self._send_error_json(
                404, f"job {job.id} has no result document "
                     f"(state: {job.state.value})")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


def make_server(daemon, host: str, port: int) -> ThreadingHTTPServer:
    """A ready-to-serve (not yet serving) HTTP server bound to the daemon."""
    handler = type("CampaignHandler", (_Handler,), {"daemon": daemon})
    return ThreadingHTTPServer((host, port), handler)
