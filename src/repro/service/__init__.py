"""repro.service — the long-running campaign daemon and its clients.

The testbed-as-a-service layer (ROADMAP item 1, modeled on FlockLab2's
testbed-management server): a persistent priority job queue accepting
run/suite/fuzz/sweep submissions as versioned :class:`JobSpec`
documents, a dispatcher executing them one at a time in isolated job
processes (store replay short-circuits fully cached jobs without
spawning anything), background retention over the shared campaign
store, and a stdlib ``http.server`` REST/JSON API —
``submit``/``status``/``results``/``cancel``/``progress``/``health``
under ``/api/v1/``.

Component map (see DESIGN.md for the FlockLab2 correspondence):

* :mod:`jobspec`    — versioned job documents + fingerprints
* :mod:`jobs`       — the single local execution path (`execute_jobspec`)
* :mod:`queue`      — journaled priority queue, crash-resumable
* :mod:`dispatcher` — job executors (process / inline) + dispatch loop
* :mod:`retention`  — background ``prune``/``gc`` over the store
* :mod:`daemon`     — ties the above together under one state dir
* :mod:`http`       — the REST/JSON surface
* :mod:`client`     — ``urllib``-based Client (submit/status/.../wait)

Everything a result document contains is deterministic: a suite
submitted through the service renders byte-identical to ``python -m
repro suite`` with the same config and seed.
"""

from .client import Client, ServiceError
from .daemon import CampaignDaemon
from .jobs import JobOutcome, execute_jobspec
from .jobspec import JobSpec, decode_jobspec, encode_jobspec
from .queue import Job, JobQueue, JobState

__all__ = [
    "JobSpec", "encode_jobspec", "decode_jobspec",
    "JobOutcome", "execute_jobspec",
    "Job", "JobQueue", "JobState",
    "CampaignDaemon", "Client", "ServiceError",
]
