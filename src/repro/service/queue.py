"""Persistent priority job queue with a crash-resumable journal.

The daemon's source of truth for "what work exists and where it
stands". Submissions and every state transition append one JSONL
record to ``queue.jsonl`` (via the same torn-tail-tolerant
:class:`~repro.store.journal.CampaignJournal` the fuzzer uses), so a
killed daemon reloads the journal and finds its queue exactly as it
was — jobs that were QUEUED are still queued in the same order, and a
job that was RUNNING when the process died goes back to QUEUED for
re-dispatch (job execution is deterministic and store-cached, so
re-running loses nothing; fuzz jobs additionally resume mid-campaign
from their own generation journal).

Ordering is ``(-priority, seq)``: higher priority first, FIFO within a
priority band — deterministic for any submission interleaving.
"""

from __future__ import annotations

import enum
import heapq
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..store.journal import CampaignJournal
from .jobspec import JobSpec, decode_jobspec, encode_jobspec

__all__ = ["Job", "JobQueue", "JobState", "QUEUE_JOURNAL"]

#: The queue journal's file name inside a daemon state directory.
QUEUE_JOURNAL = "queue.jsonl"


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


@dataclass
class Job:
    """One queue entry: a spec plus its lifecycle bookkeeping."""

    id: str
    seq: int
    spec: JobSpec
    state: JobState = JobState.QUEUED
    #: Exit code of the finished job's command (0/1/2 semantics match
    #: the one-shot CLI); None until DONE.
    exit_code: Optional[int] = None
    error: Optional[str] = None
    #: True when the result was served from the store without running.
    replayed: bool = False
    #: Set to ask a running job's executor to stop (never journaled).
    cancel_event: threading.Event = field(default_factory=threading.Event,
                                          repr=False, compare=False)

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def fingerprint(self) -> str:
        return self.spec.fingerprint

    def status_body(self) -> Dict:
        """The JSON status body (wrapped by the API layer)."""
        return {
            "id": self.id,
            "job-kind": self.spec.kind,
            "state": self.state.value,
            "priority": self.priority,
            "fingerprint": self.fingerprint,
            "exit-code": self.exit_code,
            "error": self.error,
            "replayed": self.replayed,
        }


class JobQueue:
    """Priority queue + job table, journaled to ``<root>/queue.jsonl``.

    Thread-safe: the HTTP handler threads submit/cancel/inspect while
    the dispatcher thread claims and finishes jobs.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._journal = CampaignJournal(os.path.join(root, QUEUE_JOURNAL))
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._heap: List[tuple] = []  # (-priority, seq, id)
        self._next_seq = 0
        self._load()

    # -- persistence ----------------------------------------------------
    def _load(self) -> None:
        """Rebuild queue state from the journal (crash recovery)."""
        for record in self._journal.load():
            rtype = record.get("type")
            if rtype == "submit":
                try:
                    spec = decode_jobspec(record["spec"])
                except (KeyError, ValueError):
                    continue  # unreadable legacy record: skip it
                job = Job(id=record["id"], seq=int(record["seq"]),
                          spec=spec)
                self._jobs[job.id] = job
                self._next_seq = max(self._next_seq, job.seq + 1)
            elif rtype == "state":
                job = self._jobs.get(record.get("id", ""))
                if job is None:
                    continue
                job.state = JobState(record["state"])
                job.exit_code = record.get("exit-code")
                job.error = record.get("error")
                job.replayed = bool(record.get("replayed", False))
        # A job RUNNING at the crash goes back to QUEUED: execution is
        # deterministic and store-cached, so re-dispatching is safe.
        for job in self._jobs.values():
            if job.state is JobState.RUNNING:
                job.state = JobState.QUEUED
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.state is JobState.QUEUED:
                heapq.heappush(self._heap, (-job.priority, job.seq, job.id))

    def _journal_state(self, job: Job) -> None:
        record = {"type": "state", "id": job.id, "state": job.state.value}
        if job.exit_code is not None:
            record["exit-code"] = job.exit_code
        if job.error is not None:
            record["error"] = job.error
        if job.replayed:
            record["replayed"] = True
        self._journal.append(record)

    # -- submission / inspection ---------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Enqueue one spec; returns the journaled Job."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            job = Job(id=f"job-{seq:06d}", seq=seq, spec=spec)
            self._jobs[job.id] = job
            self._journal.append({"type": "submit", "id": job.id,
                                  "seq": seq,
                                  "fingerprint": job.fingerprint,
                                  "spec": encode_jobspec(spec)})
            heapq.heappush(self._heap, (-job.priority, seq, job.id))
            self._ready.notify()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs, submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
            return counts

    def depth(self) -> int:
        """Number of jobs currently waiting."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state is JobState.QUEUED)

    def position(self, job_id: str) -> Optional[int]:
        """0-based dispatch position of a queued job, else None."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return None
            ahead = [j for j in self._jobs.values()
                     if j.state is JobState.QUEUED
                     and (-j.priority, j.seq) < (-job.priority, job.seq)]
            return len(ahead)

    # -- dispatch -------------------------------------------------------
    def claim_next(self, timeout_s: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job and mark it RUNNING.

        Blocks up to ``timeout_s`` for work; returns None on timeout.
        """
        with self._ready:
            job = self._pop_ready()
            if job is None and timeout_s:
                self._ready.wait(timeout_s)
                job = self._pop_ready()
            if job is None:
                return None
            job.state = JobState.RUNNING
            self._journal_state(job)
            return job

    def _pop_ready(self) -> Optional[Job]:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            # Cancelled-while-queued entries stay in the heap until
            # popped; skip anything no longer dispatchable.
            if job is not None and job.state is JobState.QUEUED:
                return job
        return None

    def finish(self, job_id: str, state: JobState,
               exit_code: Optional[int] = None,
               error: Optional[str] = None,
               replayed: bool = False) -> None:
        """Record a terminal state (journaled)."""
        if not state.terminal:
            raise ValueError(f"finish() needs a terminal state, got {state}")
        with self._lock:
            job = self._jobs[job_id]
            job.state = state
            job.exit_code = exit_code
            job.error = error
            job.replayed = replayed
            self._journal_state(job)

    def requeue(self, job_id: str) -> None:
        """Put a claimed job back (daemon shutting down mid-run)."""
        with self._lock:
            job = self._jobs[job_id]
            job.state = JobState.QUEUED
            self._journal_state(job)
            heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
            self._ready.notify()

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns what happened.

        ``"cancelled"``  — it was queued and is now terminally cancelled;
        ``"cancelling"`` — it is running, the executor has been signalled
        (the dispatcher records the terminal state once it stops);
        ``"finished"``   — already terminal, nothing to do.
        Raises KeyError for unknown ids.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                self._journal_state(job)
                return "cancelled"
            if job.state is JobState.RUNNING:
                job.cancel_event.set()
                return "cancelling"
            return "finished"
