"""Job execution: the one path every campaign front-end shares.

:func:`execute_jobspec` turns a :class:`~repro.service.jobspec.JobSpec`
into a finished :class:`JobOutcome` — report text, exit code, encoded
result document and flight-recorder dumps — with semantics identical
to the historical one-shot CLI commands. ``python -m repro suite``,
``repro.api.run_suite`` and a daemon-dispatched suite job all call this
function, which is what makes service results byte-identical to local
ones.

:func:`job_worker_main` is the module-level entry point the dispatcher
spawns as an isolated job process (picklable by reference, like
:mod:`repro.exec.tasks`): it opens the shared campaign store, enables
the telemetry/coverage sessions the spec asked for, executes, and
atomically persists ``result.json`` into the job directory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .jobspec import JobSpec, decode_jobspec

__all__ = ["JobOutcome", "execute_jobspec", "result_document",
           "write_result_document", "read_result_document",
           "job_worker_main", "RESULT_FILE"]

#: The result document's file name inside a job directory.
RESULT_FILE = "result.json"


@dataclass
class JobOutcome:
    """Everything one executed job produced.

    ``report`` is the deterministic text the one-shot CLI would have
    printed / written with ``--output``; ``value`` the rich in-process
    object (TestResult / Scorecard / FuzzReport / SweepExecution) for
    api-facade callers; ``data`` the JSON-encoded artefacts that go
    into the result document; ``notes`` stdout-only banner lines (never
    part of the document); ``stats`` small JSON-able execution counts.
    """

    kind: str
    report: str
    exit_code: int
    value: Any = None
    data: Dict = field(default_factory=dict)
    flight_records: List[Tuple[str, str, List[list]]] = \
        field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    stats: Dict = field(default_factory=dict)


def _scenario(name: Optional[str]):
    if not name:
        return None
    from ..faults import get_scenario

    return get_scenario(name)


def _execute_run(spec: JobSpec, store) -> JobOutcome:
    from ..core.config import TestConfig
    from ..core.orchestrator import run_test
    from ..core.report import render_report
    from ..store.serialize import encode_result

    config = TestConfig.from_dict(spec.payload["config"])
    scenario = _scenario(spec.payload.get("faults"))
    if scenario is not None:
        config = scenario.apply(config)
    result = run_test(config, store=store)
    flights: List[Tuple[str, str, List[list]]] = []
    if result.flight_record:
        trigger = ("integrity-retry" if result.integrity.ok
                   else "integrity-fail")
        flights.append((f"run-seed{config.seed}", trigger,
                        result.flight_record))
    return JobOutcome(kind="run", report=render_report(result),
                      exit_code=0 if result.ok else 1, value=result,
                      data={"result": encode_result(result)},
                      flight_records=flights)


def _execute_suite(spec: JobSpec, store) -> JobOutcome:
    from ..core.suite import run_conformance_suite
    from ..store.serialize import encode_check_result

    payload = spec.payload
    card = run_conformance_suite(payload["nic"], seed=payload.get("seed"),
                                 checks=payload.get("checks") or None,
                                 workers=spec.workers,
                                 faults=payload.get("faults") or None,
                                 store=store)
    flights = [
        (check.name, check.outcome.value if check.outcome else "FAIL",
         check.flight_record)
        for check in card.results if check.flight_record
    ]
    return JobOutcome(
        kind="suite", report=card.render(),
        exit_code=0 if card.all_passed else 1, value=card,
        data={"nic": card.nic,
              "results": [encode_check_result(c) for c in card.results]},
        flight_records=flights)


def _execute_fuzz(spec: JobSpec, store,
                  campaign_dir: Optional[str]) -> JobOutcome:
    from ..core.fuzz import LuminaFuzzer
    from ..core.report import render_fuzz_summary
    from ..store.serialize import encode_fuzz_report

    payload = spec.payload
    scenario = _scenario(payload.get("faults"))
    seed = payload.get("seed")
    notes: List[str] = []
    if payload.get("target"):
        from ..core.fuzz import make_fuzzer

        fuzzer, target = make_fuzzer(payload["target"], payload["nic"],
                                     seed=1 if seed is None else seed)
        if scenario is not None:
            # Fault scenarios touch only the measurement-plane fields,
            # never the traffic shape the preset pool was seeded from.
            fuzzer.base_config = scenario.apply(fuzzer.base_config)
        notes.append(f"target: {target.name} — {target.description} "
                     f"(nic={payload['nic']})")
    else:
        from ..core.config import TestConfig

        config = TestConfig.from_dict(payload["config"])
        if scenario is not None:
            config = scenario.apply(config)
        fuzzer = LuminaFuzzer(config,
                              seed=config.seed if seed is None else seed,
                              anomaly_threshold=payload["threshold"])
    report = fuzzer.run(iterations=payload["iterations"],
                        stop_on_first=payload["stop-on-first"],
                        workers=spec.workers, batch_size=payload["batch"],
                        store=store, campaign_dir=campaign_dir,
                        coverage_fitness=payload.get("coverage-fitness"))
    return JobOutcome(kind="fuzz", report=render_fuzz_summary(report),
                      exit_code=0 if report.found_anomaly else 2,
                      value=report,
                      data={"fuzz-report": encode_fuzz_report(report)},
                      notes=notes)


def _execute_sweep(spec: JobSpec, store) -> JobOutcome:
    from ..core.sweep import render_sweep_report, run_sweep

    execution = run_sweep(spec.payload, workers=spec.workers, store=store)
    report, failures = render_sweep_report(execution.cells,
                                           execution.outcomes)
    summaries = []
    for outcome in execution.outcomes:
        entry: Dict[str, Any] = {"ok": outcome.ok, "cached": outcome.cached}
        if outcome.ok:
            entry["summary"] = outcome.value
        else:
            entry["error"] = outcome.error
        summaries.append(entry)
    return JobOutcome(
        kind="sweep", report=report, exit_code=1 if failures else 0,
        value=execution,
        data={"cells": [[nic, seed] for nic, seed in execution.cells],
              "summaries": summaries},
        stats={"executed": execution.executed,
               "total": len(execution.cells),
               "crashes": execution.crashes})


def execute_jobspec(spec: JobSpec, store=None,
                    campaign_dir: Optional[str] = None) -> JobOutcome:
    """Execute one spec locally and return its full outcome.

    ``store`` replays cached units of work (runs, check verdicts, sweep
    cells, fuzz candidate scores) exactly as the one-shot CLI's
    ``--campaign`` flag does. ``campaign_dir`` (fuzz only) additionally
    journals per-generation state there, so a killed fuzz job resumes
    byte-identically — the daemon passes each fuzz job's own directory.
    """
    if spec.kind == "run":
        return _execute_run(spec, store)
    if spec.kind == "suite":
        return _execute_suite(spec, store)
    if spec.kind == "fuzz":
        return _execute_fuzz(spec, store, campaign_dir)
    if spec.kind == "sweep":
        return _execute_sweep(spec, store)
    raise ValueError(f"unknown job kind {spec.kind!r}")


# ---------------------------------------------------------------------------
# Result documents
# ---------------------------------------------------------------------------

def result_document(spec: JobSpec, outcome: JobOutcome) -> Dict:
    """The versioned, deterministic result document for one outcome.

    Contains no wall-clock content, so a replayed job serves the exact
    bytes the original execution produced.
    """
    from ..store.serialize import wrap_document

    return wrap_document("job-result", {
        "job-kind": spec.kind,
        "fingerprint": spec.fingerprint,
        "exit-code": outcome.exit_code,
        "report": outcome.report,
        "stats": outcome.stats,
        "data": outcome.data,
    })


def write_result_document(doc: Dict, job_dir: str) -> str:
    """Atomically persist a result document; returns its path."""
    os.makedirs(job_dir, exist_ok=True)
    path = os.path.join(job_dir, RESULT_FILE)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, sort_keys=True, separators=(",", ":"))
    os.replace(tmp, path)
    return path


def read_result_document(job_dir: str) -> Optional[Dict]:
    """The job's result document, or None when not (yet) produced."""
    try:
        with open(os.path.join(job_dir, RESULT_FILE), "r",
                  encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


# ---------------------------------------------------------------------------
# The spawned job process
# ---------------------------------------------------------------------------

def _write_job_flight_dumps(outcome: JobOutcome, coverage_dir: str) -> None:
    from ..coverage.report import flight_dump_name, render_flight_record

    os.makedirs(coverage_dir, exist_ok=True)
    for name, trigger, entries in outcome.flight_records:
        path = os.path.join(coverage_dir, flight_dump_name(name))
        with open(path, "w") as handle:
            handle.write(render_flight_record(entries, name, trigger))


def job_worker_main(spec_doc: Dict, job_dir: str,
                    store_root: Optional[str],
                    campaign_dir: Optional[str] = None) -> Dict:
    """Run one job to completion inside the current process.

    The dispatcher's process executor spawns this as the child's
    target; the inline executor calls it directly. Either way the
    result document lands atomically in ``job_dir/result.json`` (and is
    returned, for in-process callers). Telemetry and coverage sessions
    requested by the spec are scoped to this function and export into
    the job directory.

    ``campaign_dir`` hosts a fuzz job's generation journal. The
    dispatcher keys it by spec *fingerprint* (not job id), so a fuzz
    job that crashed or timed out resumes mid-campaign when the same
    spec is resubmitted as a brand-new job.
    """
    spec = decode_jobspec(spec_doc)
    if campaign_dir is None:
        campaign_dir = job_dir
    store = None
    if store_root:
        from ..store import CampaignStore

        store = CampaignStore(store_root)
    wants_coverage = bool(spec.payload.get("coverage"))
    wants_telemetry = bool(spec.payload.get("telemetry"))
    coverage_dir = os.path.join(job_dir, "coverage")
    if wants_telemetry:
        from ..telemetry import runtime as telemetry

        telemetry.enable(os.path.join(job_dir, "telemetry"))
    if wants_coverage:
        from ..coverage import runtime as coverage

        coverage.enable(coverage_dir)
    try:
        outcome = execute_jobspec(
            spec, store=store,
            campaign_dir=campaign_dir if spec.kind == "fuzz" else None)
        if wants_coverage:
            from ..coverage import runtime as coverage
            from ..coverage.report import export_coverage

            _write_job_flight_dumps(outcome, coverage_dir)
            session = coverage.active()
            if session is not None:
                export_coverage(session.total_snapshot(), coverage_dir)
        if wants_telemetry:
            from ..telemetry import runtime as telemetry

            session = telemetry.active()
            if session is not None:
                session.export()
    finally:
        if wants_coverage:
            from ..coverage import runtime as coverage

            coverage.disable()
        if wants_telemetry:
            from ..telemetry import runtime as telemetry

            telemetry.disable()
    doc = result_document(spec, outcome)
    write_result_document(doc, job_dir)
    return doc
