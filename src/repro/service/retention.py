"""Background store retention — the daemon's housekeeping thread.

Wraps the campaign store's existing ``prune`` (evict oldest entries
beyond a cap) and ``gc`` (rebuild the index from the objects tree)
into a periodic pass, the service-side counterpart of FlockLab2's
``flocklab_cleaner`` / ``flocklab_retention_cleaner`` cron jobs.

A pass never runs while a job is executing: the job process owns the
store during execution, and pruning under it could evict an entry the
job just wrote. The thread simply skips the tick and retries next
interval; counters record both outcomes for ``/api/v1/health``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

__all__ = ["RetentionDaemon"]


class RetentionDaemon:
    """Periodic ``gc`` + ``prune`` over the service store.

    ``store_factory`` opens a *fresh* store handle per pass (same
    staleness rationale as the dispatcher); ``busy`` reports whether a
    job is currently executing. ``retain_entries`` of None disables
    pruning — gc alone still heals crash-orphaned objects.
    """

    def __init__(self, store_factory: Callable,
                 busy: Callable[[], bool],
                 interval_s: float = 60.0,
                 retain_entries: Optional[int] = None):
        self.store_factory = store_factory
        self.busy = busy
        self.interval_s = interval_s
        self.retain_entries = retain_entries
        self.counters: Dict[str, int] = {
            "passes": 0, "skipped-busy": 0, "pruned": 0, "gc-entries": 0,
        }
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-retention",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    def run_pass(self) -> bool:
        """One retention pass now; False when skipped (job running)."""
        if self.busy():
            self.counters["skipped-busy"] += 1
            return False
        store = self.store_factory()
        if store is None:
            return False
        self.counters["gc-entries"] = store.gc()
        if self.retain_entries is not None:
            self.counters["pruned"] += store.prune(self.retain_entries)
        self.counters["passes"] += 1
        return True

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run_pass()
            except OSError:
                # A torn store tree heals on the next pass; the
                # housekeeping thread must outlive transient IO noise.
                continue
