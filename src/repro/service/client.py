"""Client — a tiny urllib front door to the campaign daemon.

Speaks the versioned-document protocol of :mod:`repro.service.http`:
submissions are encoded :class:`~repro.service.jobspec.JobSpec`
documents, every response is unwrapped through the shared envelope
helper, and :meth:`Client.results_bytes` fetches the result document
*verbatim* so a caller (or CI's ``cmp``) can compare it byte-for-byte
against a local execution.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from ..store.serialize import unwrap_document
from .jobspec import JobSpec, encode_jobspec

__all__ = ["Client", "ServiceError"]

#: Job states the daemon will never leave again.
_TERMINAL = {"done", "failed", "cancelled"}


class ServiceError(Exception):
    """The daemon refused or the transport failed.

    ``status`` is the HTTP status code, or None for transport errors.
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class Client:
    """Submit/inspect/cancel jobs against one daemon URL."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Tuple[int, bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as exc:
            raise ServiceError(self._error_message(exc),
                               status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach campaign service at {self.base_url}: "
                f"{exc.reason}") from None

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
            _, body = unwrap_document(doc)
            return body.get("error") or f"HTTP {exc.code}"
        except (ValueError, KeyError):
            return f"HTTP {exc.code}"

    def _json(self, method: str, path: str, body: Optional[Dict] = None,
              kind: Optional[str] = None) -> Dict:
        _, payload = self._request(method, path, body)
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ServiceError(f"{path}: response is not JSON") from None
        _, unwrapped = unwrap_document(doc, kind=kind)
        return unwrapped

    # -- API ------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Dict:
        """Enqueue a spec; returns the new job's status body."""
        return self._json("POST", "/api/v1/jobs", body=encode_jobspec(spec),
                          kind="job-status")

    def status(self, job_id: str) -> Dict:
        return self._json("GET", f"/api/v1/jobs/{job_id}",
                          kind="job-status")

    def jobs(self) -> List[Dict]:
        return self._json("GET", "/api/v1/jobs",
                          kind="job-list")["jobs"]

    def results(self, job_id: str) -> Dict:
        """The finished job's full result document (parsed)."""
        doc = json.loads(self.results_bytes(job_id).decode("utf-8"))
        _, body = unwrap_document(doc, kind="job-result")
        return body

    def results_bytes(self, job_id: str) -> bytes:
        """The result document exactly as the job process wrote it."""
        _, payload = self._request("GET",
                                   f"/api/v1/jobs/{job_id}/results")
        return payload

    def cancel(self, job_id: str) -> str:
        """Cancel; returns 'cancelled', 'cancelling' or 'finished'."""
        return self._json("POST", f"/api/v1/jobs/{job_id}/cancel",
                          kind="job-cancel")["cancel"]

    def progress(self, job_id: str) -> Dict:
        return self._json("GET", f"/api/v1/jobs/{job_id}/progress",
                          kind="job-progress")

    def health(self) -> Dict:
        return self._json("GET", "/api/v1/health", kind="service-health")

    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_interval_s: float = 0.2) -> Dict:
        """Block until the job reaches a terminal state.

        Returns the final status body; raises :class:`ServiceError`
        when ``timeout_s`` elapses first.
        """
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        while True:
            body = self.status(job_id)
            if body["state"] in _TERMINAL:
                return body
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {body['state']} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_interval_s)
