"""The dispatch loop: claims queued jobs and sees them to a terminal state.

Modeled on FlockLab2's ``flocklab_dispatcher``: one background thread
claims the highest-priority queued job, gives it a private job
directory, and executes it through a pluggable *executor*:

* :class:`ProcessJobExecutor` (production) spawns an isolated job
  process on :func:`~repro.service.jobs.job_worker_main` — ``spawn``
  start method, same rationale as :class:`~repro.exec.ParallelRunner` —
  and supervises it: a set cancel event or an elapsed per-job timeout
  terminates the process. Fuzz jobs journal per-generation state into
  their job directory, so a terminated fuzz job resubmitted later
  resumes mid-campaign.
* :class:`InlineJobExecutor` runs the job in the dispatcher thread —
  no isolation, but instant; used by tests and tiny deployments.

Before spawning anything the dispatcher probes the service store for
the spec's fingerprint: a finished spec resubmitted (even across daemon
restarts) replays its result document byte-for-byte with **zero**
worker processes. The store handle is opened fresh for every probe and
every put — the job process writes the same store, and a long-lived
parent handle would hold a stale index snapshot.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from .jobs import read_result_document, write_result_document
from .jobspec import encode_jobspec
from .queue import Job, JobQueue, JobState

__all__ = ["Dispatcher", "InlineJobExecutor", "ProcessJobExecutor",
           "JobCancelled", "JobFailed", "JobTimeout"]


class JobFailed(Exception):
    """The job process died or produced no result document."""


class JobCancelled(Exception):
    """The job was cancelled while running."""


class JobTimeout(Exception):
    """The job exceeded its spec's ``timeout_s``."""


class InlineJobExecutor:
    """Run jobs in the dispatcher thread (tests / tiny deployments)."""

    def execute(self, job: Job, job_dir: str, store_root: Optional[str],
                campaign_dir: Optional[str] = None) -> Dict:
        from .jobs import job_worker_main

        return job_worker_main(encode_jobspec(job.spec), job_dir,
                               store_root, campaign_dir)


class ProcessJobExecutor:
    """Run each job in a fresh spawned process, supervised.

    ``poll_interval_s`` bounds cancel/timeout reaction latency. The
    child is a plain :mod:`multiprocessing` Process on the module-level
    :func:`~repro.service.jobs.job_worker_main`, so everything it needs
    travels as picklable JSON + paths.
    """

    def __init__(self, poll_interval_s: float = 0.1):
        self.poll_interval_s = poll_interval_s

    def execute(self, job: Job, job_dir: str, store_root: Optional[str],
                campaign_dir: Optional[str] = None) -> Dict:
        import multiprocessing as mp

        from .jobs import job_worker_main

        ctx = mp.get_context("spawn")
        process = ctx.Process(
            target=job_worker_main,
            args=(encode_jobspec(job.spec), job_dir, store_root,
                  campaign_dir),
            daemon=True)
        deadline = (time.monotonic() + job.spec.timeout_s
                    if job.spec.timeout_s else None)
        process.start()
        try:
            while True:
                process.join(self.poll_interval_s)
                if not process.is_alive():
                    break
                if job.cancel_event.is_set():
                    raise JobCancelled(f"{job.id} cancelled while running")
                if deadline is not None and time.monotonic() > deadline:
                    raise JobTimeout(
                        f"{job.id} exceeded timeout of "
                        f"{job.spec.timeout_s:g}s")
        finally:
            if process.is_alive():
                process.terminate()
                process.join(5.0)
        if process.exitcode != 0:
            raise JobFailed(f"{job.id} job process exited with code "
                            f"{process.exitcode}")
        doc = read_result_document(job_dir)
        if doc is None:
            raise JobFailed(f"{job.id} job process wrote no result "
                            f"document")
        return doc


class Dispatcher:
    """Background thread turning queued jobs into result documents."""

    def __init__(self, queue: JobQueue, jobs_root: str,
                 store_root: Optional[str] = None, executor=None,
                 claim_timeout_s: float = 0.2,
                 campaigns_root: Optional[str] = None):
        self.queue = queue
        self.jobs_root = jobs_root
        self.store_root = store_root
        #: Fuzz generation journals live here, keyed by spec
        #: fingerprint, so an interrupted campaign resumes even though
        #: its resubmission is a different job id.
        self.campaigns_root = campaigns_root if campaigns_root is not None \
            else os.path.join(os.path.dirname(jobs_root.rstrip(os.sep))
                              or ".", "campaigns")
        self.executor = executor if executor is not None \
            else ProcessJobExecutor()
        self.claim_timeout_s = claim_timeout_s
        #: Small operational counters, surfaced by /api/v1/health.
        self.counters: Dict[str, int] = {
            "dispatched": 0, "replayed": 0, "done": 0,
            "failed": 0, "cancelled": 0, "timeouts": 0,
        }
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-dispatcher",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    @property
    def busy(self) -> bool:
        """True while a job is executing (retention passes wait)."""
        return not self._idle.is_set()

    def wait_idle(self, timeout_s: float = 30.0) -> bool:
        """Block until the queue is drained and no job is running."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.queue.depth() == 0 and not self.busy:
                return True
            time.sleep(0.02)
        return False

    # -- the loop -------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim_next(timeout_s=self.claim_timeout_s)
            if job is None:
                continue
            if self._stop.is_set():
                # Shutting down: hand the claim back for the next boot.
                self.queue.requeue(job.id)
                break
            self._idle.clear()
            try:
                self._run_job(job)
            finally:
                self._idle.set()

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_root, job_id)

    def _store(self):
        if self.store_root is None:
            return None
        from ..store import CampaignStore

        return CampaignStore(self.store_root)

    def _run_job(self, job: Job) -> None:
        self.counters["dispatched"] += 1
        job_dir = self.job_dir(job.id)
        os.makedirs(job_dir, exist_ok=True)
        self._write_spec(job, job_dir)

        store = self._store()
        if store is not None:
            cached = store.get(job.fingerprint)
            if cached is not None:
                # Store replay: the exact document a previous execution
                # produced, with zero worker processes spawned.
                write_result_document(cached, job_dir)
                self.counters["replayed"] += 1
                self.counters["done"] += 1
                self.queue.finish(
                    job.id, JobState.DONE,
                    exit_code=cached.get("body", {}).get("exit-code"),
                    replayed=True)
                return

        campaign_dir = None
        if job.spec.kind == "fuzz":
            campaign_dir = os.path.join(self.campaigns_root,
                                        job.fingerprint[:32])
        try:
            doc = self.executor.execute(job, job_dir, self.store_root,
                                        campaign_dir)
        except JobCancelled:
            self.counters["cancelled"] += 1
            self.queue.finish(job.id, JobState.CANCELLED,
                              error="cancelled while running")
            return
        except JobTimeout as exc:
            self.counters["timeouts"] += 1
            self.counters["failed"] += 1
            self.queue.finish(job.id, JobState.FAILED, error=str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — a job must never
            # take the dispatch loop down with it.
            self.counters["failed"] += 1
            self.queue.finish(job.id, JobState.FAILED,
                              error=f"{type(exc).__name__}: {exc}")
            return

        store = self._store()  # reopened: the job process updated it
        if store is not None:
            store.put(job.fingerprint, "job-result", doc)
        self.counters["done"] += 1
        self.queue.finish(job.id, JobState.DONE,
                          exit_code=doc.get("body", {}).get("exit-code"))

    def _write_spec(self, job: Job, job_dir: str) -> None:
        import json

        path = os.path.join(job_dir, "spec.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(encode_jobspec(job.spec), handle, sort_keys=True,
                      indent=1)
        os.replace(tmp, path)
