"""repro — a simulation-based reproduction of Lumina (SIGCOMM 2023).

Lumina tests the correctness and performance of hardware-offloaded
network stacks (RoCEv2 RNICs) by injecting deterministic events from a
programmable switch and mirroring every packet to dumper servers for
offline analysis. This package rebuilds the complete system on a
discrete-event simulator, with behavioural RNIC models that encode the
measured micro-behaviours and vendor-confirmed bugs of the four NICs
the paper studies (NVIDIA CX4 Lx / CX5 / CX6 Dx, Intel E810).

Quick start::

    from repro import quick_config, run_test

    config = quick_config(nic="cx5", verb="write", drop_psn=5)
    result = run_test(config)
    print(result.summary())

The stable programmatic surface lives in :mod:`repro.api` (also
re-exported here): ``run_test``, ``run_suite``, ``run_fuzz_campaign``,
``save_result``/``load_result`` and the analyzer registry.
"""

from .api import (
    load_result,
    run_fuzz_campaign,
    run_suite,
    save_result,
)
from .core.config import (
    DataPacketEvent,
    HostConfig,
    RoceParameters,
    TestConfig,
    TrafficConfig,
)
from .core.orchestrator import Orchestrator, run_test
from .core.results import TestResult

__version__ = "1.0.0"

__all__ = [
    "DataPacketEvent",
    "HostConfig",
    "RoceParameters",
    "TestConfig",
    "TrafficConfig",
    "Orchestrator",
    "run_test",
    "run_suite",
    "run_fuzz_campaign",
    "save_result",
    "load_result",
    "TestResult",
    "quick_config",
    "JobSpec",
    "Client",
    "__version__",
]


def __getattr__(name: str):
    # Campaign-service names resolve lazily: most importers (spawn
    # workers, the CLI fast path) never touch the service layer.
    if name in ("JobSpec", "Client"):
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def quick_config(nic: str = "cx5", verb: str = "write",
                 num_connections: int = 1, num_msgs: int = 10,
                 message_size: int = 10240, mtu: int = 1024,
                 drop_psn: int = 0, seed: int = 1,
                 nic_responder: str = "", **traffic_kwargs) -> TestConfig:
    """Build a ready-to-run config for the standard two-host testbed.

    ``drop_psn`` > 0 injects a single drop on that packet of the first
    connection; richer event lists go through :class:`TrafficConfig`.
    """
    events = []
    if drop_psn:
        events.append(DataPacketEvent(qpn=1, psn=drop_psn, type="drop"))
    traffic = TrafficConfig(
        num_connections=num_connections,
        rdma_verb=verb,
        num_msgs_per_qp=num_msgs,
        message_size=message_size,
        mtu=mtu,
        data_pkt_events=tuple(events),
        **traffic_kwargs,
    )
    return TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic_responder or nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic,
        seed=seed,
    )
