"""Injected-event definitions for the event injector (§3.3).

Two kinds of rules exist in the data plane:

* :class:`EventEntry` — an exact match on the low-level 5-tuple
  ``(src_ip, dst_ip, dst_qpn, psn, iter)`` computed by the control
  plane's intent translation (Fig. 2), with a drop / ECN / corrupt
  action. These target *data* packets only (the paper's footnote: no
  events on ACK/NACK control packets).
* :class:`RewriteRule` — a wildcard rule that rewrites a header field on
  every matching packet; the MigReq fix-up used to confirm the
  CX5/E810 interoperability bug (§6.2.3) is the canonical example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.packet import EventType, Packet

__all__ = ["EventAction", "EventEntry", "RewriteRule"]


class EventAction:
    """Data-plane actions an event entry can carry.

    ``delay`` and ``reorder`` are the §7 extension events: delay holds
    the packet in the traffic manager for a configured time; reorder
    holds it until the connection's next packet has passed, swapping
    their wire order without any loss.
    """

    DROP = "drop"
    ECN = "ecn"
    CORRUPT = "corrupt"
    DELAY = "delay"
    REORDER = "reorder"

    ALL = (DROP, ECN, CORRUPT, DELAY, REORDER)

    #: EventType code embedded in the mirrored copy for each action.
    CODES = {
        DROP: EventType.DROP,
        ECN: EventType.ECN,
        CORRUPT: EventType.CORRUPT,
        DELAY: EventType.DELAY,
        REORDER: EventType.REORDER,
    }


#: Iteration value meaning "match any (re)transmission round". An
#: extension over the paper's exact (PSN, ITER) matching: combined with
#: ``max_hits=1`` it expresses "the first time PSN N passes, whichever
#: round that is" — the right primitive for loss-rate emulation, where
#: earlier losses shift later packets into higher rounds.
ANY_ITERATION = 0


@dataclass
class EventEntry:
    """One populated match-action entry (the low-level form of Fig. 2)."""

    src_ip: int
    dst_ip: int
    dst_qpn: int
    psn: int
    iteration: int
    action: str
    #: Hold time for ``delay`` actions (ns).
    delay_ns: int = 0
    #: Stop matching after this many hits (0 = unlimited).
    max_hits: int = 0
    hits: int = 0

    def __post_init__(self) -> None:
        if self.action not in EventAction.ALL:
            raise ValueError(f"unknown event action {self.action!r}")
        if self.iteration < ANY_ITERATION:
            raise ValueError("iteration numbers start at 1 (Fig. 3); "
                             "0 is the any-round wildcard")
        if self.action == EventAction.DELAY and self.delay_ns <= 0:
            raise ValueError("delay actions need a positive delay_ns")
        if self.action != EventAction.DELAY and self.delay_ns:
            raise ValueError("delay_ns only applies to delay actions")
        if self.max_hits < 0:
            raise ValueError("max_hits cannot be negative")

    @property
    def exhausted(self) -> bool:
        return bool(self.max_hits) and self.hits >= self.max_hits

    @property
    def key(self) -> tuple:
        return (self.src_ip, self.dst_ip, self.dst_qpn, self.psn, self.iteration)

    #: Tofino-style exact-match entry cost in bytes of on-chip memory
    #: (key + action + counters), used for the §5 memory estimate.
    ENTRY_BYTES = 10


@dataclass
class RewriteRule:
    """Blanket field rewrite applied at ingress to matching RoCE packets."""

    field_name: str                      # currently: "migreq"
    value: int
    src_ip: Optional[int] = None         # None matches any source
    hits: int = 0

    _SUPPORTED = ("migreq",)

    def __post_init__(self) -> None:
        if self.field_name not in self._SUPPORTED:
            raise ValueError(f"unsupported rewrite field {self.field_name!r}")

    def matches(self, packet: Packet) -> bool:
        if not packet.is_roce or packet.ip is None:
            return False
        return self.src_ip is None or packet.ip.src_ip == self.src_ip

    def apply(self, packet: Packet) -> None:
        if self.field_name == "migreq":
            packet.bth.migreq = bool(self.value)
            packet.invalidate_wire_cache()
        self.hits += 1
