"""Match-action table for event injection.

An exact-match table keyed by ``(src IP, dst IP, dst QPN, PSN, ITER)``,
as populated by the control plane after intent translation (Fig. 2).
Lookups are O(1) dict hits — the software analogue of a Tofino SRAM
exact-match stage — and the table tracks its on-chip memory footprint
so the §5 resource claims can be benchmarked.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..coverage import runtime as coverage
from .events import ANY_ITERATION, EventEntry

__all__ = ["MatchActionTable"]


class MatchActionTable:
    """Exact-match event table with capacity accounting.

    Entries with ``iteration == ANY_ITERATION`` live in a second,
    iteration-agnostic table consulted when no exact entry matches —
    the Tofino equivalent is a second match stage with the ITER field
    masked out.
    """

    def __init__(self, capacity: int = 140_000):
        if capacity <= 0:
            raise ValueError("table capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[Tuple[int, int, int, int, int], EventEntry] = {}
        self._wildcards: Dict[Tuple[int, int, int, int], EventEntry] = {}
        self._cov = coverage.current().domain("switch.table")

    def __contains_key(self, entry: EventEntry) -> bool:
        if entry.iteration == ANY_ITERATION:
            return entry.key[:4] in self._wildcards
        return entry.key in self._entries

    def install(self, entry: EventEntry) -> None:
        if len(self) >= self.capacity and not self.__contains_key(entry):
            raise RuntimeError(
                f"event table full ({self.capacity} entries): "
                "reduce injected events or raise switch table capacity"
            )
        if self.__contains_key(entry):
            raise ValueError(f"duplicate event entry for key {entry.key}")
        if entry.iteration == ANY_ITERATION:
            self._wildcards[entry.key[:4]] = entry
        else:
            self._entries[entry.key] = entry

    def install_all(self, entries: Iterable[EventEntry]) -> None:
        for entry in entries:
            self.install(entry)

    def lookup(self, src_ip: int, dst_ip: int, dst_qpn: int,
               psn: int, iteration: int,
               now_ns: int = 0) -> Optional[EventEntry]:
        entry = self._entries.get((src_ip, dst_ip, dst_qpn, psn, iteration))
        stage = "exact-hit"
        if entry is None:
            entry = self._wildcards.get((src_ip, dst_ip, dst_qpn, psn))
            stage = "wildcard-hit"
        if entry is None:
            self._cov.hit("miss", now_ns)
            return None
        if entry.exhausted:
            self._cov.hit("exhausted", now_ns)
            return None
        self._cov.hit(stage, now_ns)
        entry.hits += 1
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._wildcards.clear()

    @property
    def entries(self) -> List[EventEntry]:
        return list(self._entries.values()) + list(self._wildcards.values())

    def __len__(self) -> int:
        return len(self._entries) + len(self._wildcards)

    @property
    def memory_bytes(self) -> int:
        """Approximate on-chip memory consumed by installed entries."""
        return len(self._entries) * EventEntry.ENTRY_BYTES
