"""ITER tracking — distinguishing retransmissions in the data plane.

Implements the Fig. 3 algorithm exactly: per connection the switch
keeps ``Last_PSN`` and ``ITER``; for every arriving RoCE packet, if its
PSN is **not larger** than ``Last_PSN`` the packet starts a new round of
(re)transmissions and ``ITER`` is incremented; either way ``Last_PSN``
becomes the current PSN. ``(PSN, ITER)`` then uniquely identifies every
packet of a connection.

PSN comparison uses the 24-bit serial-number arithmetic of the IB spec
so wraparound is handled; a connection is the directed flow
``(src IP, dst IP, dst QPN)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..coverage import runtime as coverage

__all__ = ["IterTracker", "ConnState"]

_PSN_MASK = 0xFFFFFF
_HALF = 1 << 23


def _psn_later(a: int, b: int) -> bool:
    """True if PSN ``a`` is strictly later than ``b`` modulo 2^24."""
    return a != b and ((a - b) & _PSN_MASK) < _HALF


@dataclass(slots=True)
class ConnState:
    """Per-connection registers (one Tofino register pair each)."""

    last_psn: Optional[int] = None
    iteration: int = 1


class IterTracker:
    """Tracks ITER for every directed connection seen by the switch."""

    def __init__(self, max_connections: int = 10_000):
        self.max_connections = max_connections
        self._conns: Dict[Tuple[int, int, int], ConnState] = {}
        self._cov = coverage.current().domain("switch.iter")

    def update(self, src_ip: int, dst_ip: int, dst_qpn: int, psn: int,
               now_ns: int = 0) -> int:
        """Process one packet; returns the ITER it belongs to."""
        state = self._conns.get((src_ip, dst_ip, dst_qpn))
        if state is None:
            if len(self._conns) >= self.max_connections:
                raise RuntimeError(
                    f"ITER tracker full ({self.max_connections} connections)"
                )
            state = ConnState()
            self._conns[(src_ip, dst_ip, dst_qpn)] = state
            self._cov.hit("new-connection", now_ns)
        last = state.last_psn
        # _psn_later inlined: this runs once per captured packet, both
        # in the switch and again during trace reconstruction.
        if last is None or (psn != last and ((psn - last) & _PSN_MASK) < _HALF):
            self._cov.hit("in-order-advance", now_ns)
        else:
            state.iteration += 1
            self._cov.hit("retransmit-round", now_ns)
        state.last_psn = psn & _PSN_MASK
        return state.iteration

    def peek(self, src_ip: int, dst_ip: int, dst_qpn: int) -> ConnState:
        """Current registers for a connection (fresh state if unseen)."""
        return self._conns.get((src_ip, dst_ip, dst_qpn), ConnState())

    def reset(self) -> None:
        self._conns.clear()

    def __len__(self) -> int:
        return len(self._conns)

    @property
    def memory_bytes(self) -> int:
        """Register memory: last PSN (3 B) + ITER (2 B) per connection."""
        return len(self._conns) * 5
