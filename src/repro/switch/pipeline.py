"""The programmable switch data plane (Fig. 6).

Pipeline layout, matching the paper's P4 program:

    ingress:  RoCE parse → event injection (match-action) → ITER update
              → ingress counters → ingress mirror → L2/L3 forward
    egress:   rewrite mirrored-packet fields → egress counters

The pipeline adds a fixed sub-microsecond latency (§5 measured
<0.4 µs). Because Fig. 7 compares Lumina against stripped-down variants
(no mirroring / no event injection / plain L2 forwarding), the latency
is derived from which stages are enabled, so those variants are built by
toggling the corresponding feature flags.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..coverage import runtime as coverage
from ..net.headers import ECN_CE
from ..net.link import Node, Port
from ..net.packet import EventType, Packet
from ..sim.engine import Simulator
from ..sim.rng import SimRandom
from ..telemetry import runtime as telemetry
from .events import EventAction, EventEntry, RewriteRule
from .itertrack import IterTracker
from .mirror import MirrorBlock
from .tables import MatchActionTable

__all__ = ["TofinoSwitch", "PIPELINE_STAGES"]

#: Stages the prototype occupies (§5: "four stages of the switch's
#: processing pipeline").
PIPELINE_STAGES = 4

#: Per-feature contribution to pipeline latency (ns). The full pipeline
#: stays under the 0.4 µs measured in §5.
_BASE_LATENCY_NS = 250
_EVENT_STAGE_NS = 80
_MIRROR_STAGE_NS = 40


class TofinoSwitch(Node):
    """Event injector: a programmable switch with mirroring."""

    def __init__(self, sim: Simulator, name: str, rng: SimRandom,
                 event_injection: bool = True, mirroring: bool = True,
                 event_table_capacity: int = 140_000,
                 randomize_mirror_udp_port: bool = True,
                 ecn_threshold_bytes: Optional[int] = None,
                 mirror_faults=None):
        super().__init__(sim, name)
        self.event_injection = event_injection
        self.mirroring = mirroring
        #: RED-style marking: data packets leaving through a port whose
        #: egress queue exceeds this depth get CE-marked (organic
        #: congestion, as opposed to injected ECN events). None = off.
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.ecn_marked_by_queue = 0
        self.event_table = MatchActionTable(capacity=event_table_capacity)
        self.rewrite_rules: List[RewriteRule] = []
        self.iter_tracker = IterTracker()
        #: Optional measurement-plane fault injector (mirror-path loss
        #: and delay); None keeps the capture path pristine.
        self.mirror_faults = mirror_faults
        self.mirror = MirrorBlock(rng, randomize_udp_port=randomize_mirror_udp_port,
                                  faults=mirror_faults)
        self._forwarding: Dict[int, Port] = {}
        # Counters for the §3.5 integrity check.
        self.roce_rx_packets = 0
        self.roce_tx_packets = 0
        self.dropped_by_event = 0
        self.ecn_marked_by_event = 0
        self.corrupted_by_event = 0
        self.delayed_by_event = 0
        self.reordered_by_event = 0
        # Packets held by a reorder action, keyed by connection; each
        # entry is (packet, safety-release Event).
        self._reorder_held: Dict[tuple, tuple] = {}
        #: How long a reorder action waits for a successor before the
        #: held packet is released anyway.
        self.reorder_release_timeout_ns = 100_000

        # Telemetry handles (no-op twins when telemetry is disabled).
        tel = telemetry.current()
        self._tel = telemetry.active()
        self._m_rx = tel.counter("switch_roce_rx_packets", switch=name)
        self._m_tx = tel.counter("switch_roce_tx_packets", switch=name)
        self._m_lookups = tel.counter("switch_event_table_lookups",
                                      switch=name)
        self._m_matches = {
            action: tel.counter("switch_events_injected", switch=name,
                                action=action)
            for action in EventAction.ALL
        }
        cov = coverage.current()
        self._cov = cov.domain("switch.pipeline")
        self._rec = cov.recorder(f"switch:{name}")
        # Feature flags are fixed after construction, so the per-packet
        # ingress delay is a constant; cache it off the hot path.
        self._latency_ns = self.pipeline_latency_ns

    # ------------------------------------------------------------------
    # Topology / control plane
    # ------------------------------------------------------------------
    @property
    def pipeline_latency_ns(self) -> int:
        latency = _BASE_LATENCY_NS
        if self.event_injection:
            latency += _EVENT_STAGE_NS
        if self.mirroring:
            latency += _MIRROR_STAGE_NS
        return latency

    def add_host_port(self, bandwidth_bps: int, name: Optional[str] = None) -> Port:
        return self.add_port(bandwidth_bps, name=name)

    def add_dumper_port(self, bandwidth_bps: int, weight: int = 1,
                        name: Optional[str] = None) -> Port:
        port = self.add_port(bandwidth_bps, name=name)
        self.mirror.add_target(port, weight=weight)
        return port

    def set_forwarding(self, dst_ip: int, port: Port) -> None:
        """Install an L3 forwarding entry (host IP → switch port)."""
        if port.node is not self:
            raise ValueError("forwarding target must be a port of this switch")
        self._forwarding[dst_ip] = port

    def install_event(self, entry: EventEntry) -> None:
        self.event_table.install(entry)

    def install_rewrite(self, rule: RewriteRule) -> None:
        self.rewrite_rules.append(rule)

    def clear_events(self) -> None:
        self.event_table.clear()
        self.rewrite_rules.clear()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def handle_packet(self, port: Port, packet: Packet) -> None:
        self.sim.schedule(self._latency_ns, self._process, packet)

    def _process(self, packet: Packet) -> None:
        event_code = EventType.NONE
        entry: Optional[EventEntry] = None
        bth = packet.bth
        ip = packet.ip
        if bth is not None and ip is not None:
            now = self.sim.now
            self.roce_rx_packets += 1
            self._m_rx.inc()
            for rule in self.rewrite_rules:
                if rule.matches(packet):
                    rule.apply(packet)
                    self._cov.hit("rewrite-applied", now)
            # ITER update runs for every RoCE packet (Fig. 3); the event
            # match additionally requires a data opcode (footnote 2).
            iteration = self.iter_tracker.update(
                ip.src_ip, ip.dst_ip, bth.dest_qp, bth.psn, now_ns=now,
            )
            if self.event_injection and bth.opcode.is_data:
                self._m_lookups.inc()
                entry = self.event_table.lookup(
                    ip.src_ip, ip.dst_ip, bth.dest_qp,
                    bth.psn, iteration, now_ns=now,
                )
                if entry is not None:
                    event_code = EventAction.CODES[entry.action]
                    self._m_matches[entry.action].inc()
                    self._cov.hit(f"event-{entry.action}", now)
                    self._rec.note(
                        now, f"inject-{entry.action}",
                        f"qpn={bth.dest_qp} psn={bth.psn} "
                        f"iter={iteration}")
                    if self._tel is not None:
                        self._tel.instant(
                            f"switch.event.{entry.action}", pid="switch",
                            tid="ingress", category="inject",
                            qpn=bth.dest_qp, psn=bth.psn,
                            iter=iteration)
            # Mirror at ingress, before the drop takes effect (§3.4).
            if self.mirroring:
                self.mirror.mirror(packet, now, event_code)
        if entry is not None:
            if entry.action == EventAction.DROP:
                self.dropped_by_event += 1
                return
            if entry.action == EventAction.ECN:
                self.ecn_marked_by_event += 1
                packet.ip.ecn = ECN_CE
                packet.invalidate_wire_cache()
            elif entry.action == EventAction.CORRUPT:
                self.corrupted_by_event += 1
                packet.icrc_ok = False
            elif entry.action == EventAction.DELAY:
                # §7 extension: hold the packet in the traffic manager.
                self.delayed_by_event += 1
                self.sim.schedule(entry.delay_ns, self._forward, packet)
                return
            elif entry.action == EventAction.REORDER:
                # §7 extension: hold until the connection's next packet
                # has been forwarded, swapping their order.
                self.reordered_by_event += 1
                conn = (packet.ip.src_ip, packet.ip.dst_ip, packet.bth.dest_qp)
                self._release_held(conn)  # at most one held per connection
                safety = self.sim.schedule(self.reorder_release_timeout_ns,
                                           self._release_held, conn)
                self._reorder_held[conn] = (packet, safety)
                return
        self._forward(packet)
        if bth is not None and ip is not None:
            self._release_held((ip.src_ip, ip.dst_ip, bth.dest_qp))

    def _release_held(self, conn: tuple) -> None:
        held = self._reorder_held.pop(conn, None)
        if held is None:
            return
        packet, safety = held
        safety.cancel()
        self._cov.hit("reorder-release", self.sim.now)
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        ip = packet.ip
        if ip is None:
            return
        out_port = self._forwarding.get(ip.dst_ip)
        if out_port is None:
            return
        if packet.bth is not None:
            self.roce_tx_packets += 1
            self._m_tx.inc()
            if (self.ecn_threshold_bytes is not None
                    and packet.bth.opcode.is_data
                    and ip.ecn != ECN_CE
                    and out_port.queued_bytes > self.ecn_threshold_bytes):
                ip.ecn = ECN_CE
                packet.invalidate_wire_cache()
                self.ecn_marked_by_queue += 1
                self._cov.hit("queue-ecn-mark", self.sim.now)
        out_port.send(packet)

    # ------------------------------------------------------------------
    # Result collection (Table 1: switch counters)
    # ------------------------------------------------------------------
    def dump_counters(self) -> Dict[str, object]:
        """Per-port and aggregate counters, as the control plane reports."""
        counters: Dict[str, object] = {
            "roce_rx_packets": self.roce_rx_packets,
            "roce_tx_packets": self.roce_tx_packets,
            "mirrored_packets": self.mirror.mirrored_packets,
            "dropped_by_event": self.dropped_by_event,
            "ecn_marked_by_event": self.ecn_marked_by_event,
            "corrupted_by_event": self.corrupted_by_event,
            "delayed_by_event": self.delayed_by_event,
            "reordered_by_event": self.reordered_by_event,
            "ecn_marked_by_queue": self.ecn_marked_by_queue,
            "event_table_entries": len(self.event_table),
            "event_table_memory_bytes": self.event_table.memory_bytes,
            "iter_tracker_memory_bytes": self.iter_tracker.memory_bytes,
            "pipeline_stages": PIPELINE_STAGES,
            "ports": {
                port.name: {
                    "tx_packets": port.tx_packets,
                    "rx_packets": port.rx_packets,
                    "tx_bytes": port.tx_bytes,
                    "rx_bytes": port.rx_bytes,
                    "tx_drops": port.tx_drops,
                }
                for port in self.ports
            },
        }
        if self.mirror_faults is not None:
            counters.update(self.mirror_faults.counters())
        return counters
