"""Ingress mirroring with metadata embedding and per-packet load balancing.

Every RoCE packet is cloned at the ingress pipeline — *before* any drop
takes effect — and the clone is sent to a traffic-dumper port. Three
pieces of metadata are embedded by rewriting header fields the analysis
does not otherwise need (§3.4):

* IPv4 TTL            ← event type code
* Ethernet source MAC ← global mirror sequence number (48-bit)
* Ethernet dest MAC   ← ingress hardware timestamp, ns (48-bit)

To spread load across dumper CPU cores the UDP destination port (4791)
is rewritten to a pseudo-random value, creating the illusion of many
flows for RSS; dumpers restore it when writing records to disk. Dumper
ports are chosen by smooth weighted round-robin so a pool of unequal
servers is loaded proportionally to capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..coverage import runtime as coverage
from ..net.link import Port
from ..net.packet import Packet
from ..sim.rng import SimRandom
from ..telemetry import runtime as telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.injector import MeasurementFaultInjector

__all__ = ["MirrorBlock", "MirrorTarget", "MirrorConfigError"]


class MirrorConfigError(RuntimeError):
    """The mirror block is in a state it cannot mirror from.

    Raised instead of ``assert`` so the checks survive ``python -O``:
    a silently mis-mirrored run would corrupt the very trace the
    integrity scheme is supposed to protect.
    """

_MASK48 = 0xFFFFFFFFFFFF


@dataclass
class MirrorTarget:
    """One dumper-facing switch port with a WRR weight."""

    port: Port
    weight: int = 1
    current: int = 0  # smooth-WRR running credit
    packets: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("mirror target weight must be positive")


class MirrorBlock:
    """The switch's mirroring stage."""

    def __init__(self, rng: SimRandom, randomize_udp_port: bool = True,
                 faults: Optional["MeasurementFaultInjector"] = None):
        self._rng = rng.child("mirror")
        self.randomize_udp_port = randomize_udp_port
        self._targets: List[MirrorTarget] = []
        self._faults = faults
        self.mirror_seq = 0          # next sequence number to assign
        self.mirrored_packets = 0
        tel = telemetry.current()
        self._m_mirrored = tel.counter("switch_mirrored_packets")
        self._m_queue = tel.gauge("switch_mirror_queue_bytes")
        self._cov = coverage.current().domain("switch.mirror")

    def add_target(self, port: Port, weight: int = 1) -> None:
        self._targets.append(MirrorTarget(port=port, weight=weight))

    @property
    def targets(self) -> List[MirrorTarget]:
        return list(self._targets)

    def _pick_target(self) -> MirrorTarget:
        """Smooth weighted round-robin (nginx-style)."""
        if not self._targets:
            raise MirrorConfigError("mirror block has no dumper targets")
        total = 0
        best: Optional[MirrorTarget] = None
        for target in self._targets:
            target.current += target.weight
            total += target.weight
            if best is None or target.current > best.current:
                best = target
        if best is None:
            raise MirrorConfigError("weighted round-robin selected no target")
        best.current -= total
        return best

    def mirror(self, packet: Packet, now_ns: int, event_code: int) -> Optional[Packet]:
        """Clone, stamp and transmit the mirrored copy.

        Returns the clone (for tests), or None when no dumper ports are
        configured (mirroring disabled).
        """
        if not self._targets:
            return None
        clone = packet.copy()
        clone.is_mirror = True
        # A dropped or corrupted original must still be dumped intact.
        clone.icrc_ok = True
        clone.ip.ttl = event_code & 0xFF
        eth = clone.eth
        eth.src_mac = self.mirror_seq & _MASK48
        eth.dst_mac = now_ns & _MASK48
        if self.randomize_udp_port and clone.udp is not None:
            clone.udp.dst_port = self._rng.ephemeral_port()
        # No invalidate_wire_cache(): copy() starts with cold caches and
        # nothing above can have warmed them.
        self.mirror_seq += 1
        self.mirrored_packets += 1
        target = self._pick_target()
        target.packets += 1
        self._m_mirrored.inc()
        # The fault injector models loss/delay *after* the switch has
        # stamped the clone — the seq is consumed either way, exactly
        # like a real mirror drop between switch and dumper.
        if self._faults is not None and self._faults.on_mirror(target.port, clone):
            self._cov.hit("fault-intercepted", now_ns)
            return clone
        self._cov.hit("mirrored", now_ns)
        target.port.send(clone)
        self._m_queue.set(target.port.queued_bytes)
        return clone

    def reset(self) -> None:
        self.mirror_seq = 0
        self.mirrored_packets = 0
        for target in self._targets:
            target.current = 0
            target.packets = 0
