"""Switch control plane: the RPC surface the orchestrator talks to.

The real prototype runs a Python control plane on the switch CPU that
translates orchestrator RPCs into table writes and dumps port counters
after the experiment (§5). This wrapper provides the same narrow
interface so the orchestrator never touches data-plane objects directly
— which also documents exactly which operations a real deployment
needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .events import EventEntry, RewriteRule
from .pipeline import TofinoSwitch

__all__ = ["SwitchController"]


class SwitchController:
    """Control-plane handle for one event injector."""

    def __init__(self, switch: TofinoSwitch):
        self._switch = switch
        self.rpc_log: List[str] = []

    def install_events(self, entries: Iterable[EventEntry]) -> int:
        """Populate the event match-action table; returns entries added."""
        count = 0
        for entry in entries:
            self._switch.install_event(entry)
            count += 1
        self.rpc_log.append(f"install_events({count})")
        return count

    def install_rewrite(self, rule: RewriteRule) -> None:
        self._switch.install_rewrite(rule)
        self.rpc_log.append(f"install_rewrite({rule.field_name}={rule.value})")

    def clear_events(self) -> None:
        self._switch.clear_events()
        self.rpc_log.append("clear_events()")

    def dump_counters(self) -> Dict[str, object]:
        self.rpc_log.append("dump_counters()")
        return self._switch.dump_counters()

    @property
    def event_table_occupancy(self) -> int:
        return len(self._switch.event_table)

    @property
    def mirrored_packets(self) -> int:
        return self._switch.mirror.mirrored_packets
