"""Programmable-switch model: the event injector and mirror (§3.3–§3.4)."""

from .controlplane import SwitchController
from .events import EventAction, EventEntry, RewriteRule
from .itertrack import ConnState, IterTracker
from .mirror import MirrorBlock, MirrorTarget
from .pipeline import PIPELINE_STAGES, TofinoSwitch
from .tables import MatchActionTable

__all__ = [
    "SwitchController",
    "EventAction",
    "EventEntry",
    "RewriteRule",
    "ConnState",
    "IterTracker",
    "MirrorBlock",
    "MirrorTarget",
    "PIPELINE_STAGES",
    "TofinoSwitch",
    "MatchActionTable",
]
