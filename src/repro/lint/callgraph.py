"""Whole-program model: an alias-resolving cross-module call graph.

The per-module rules (DET001…PERF001) see one file at a time, which is
exactly the blind spot a determinism bug loves: a wall-clock read two
calls below an engine callback, in a helper module outside the scanned
directories, sails through unseen. :class:`Program` closes that gap —
it parses every module under the lint root into the existing
:class:`~repro.lint.context.ModuleContext`, indexes every function,
method and class under its fully-qualified dotted name, and resolves
every call site to graph edges:

* plain names resolve through the module's import aliases and
  module-level defs (``from ..core.orchestrator import run_test`` makes
  a bare ``run_test()`` an edge to ``repro.core.orchestrator.run_test``),
* ``self.m()`` resolves inside the enclosing class, then its resolvable
  bases,
* ``obj.m()`` resolves through a small receiver-type inference pass —
  constructor assignments (``rng = SimRandom(seed)``), parameter
  annotations, and ``self.attr = Class(...)`` attribute types collected
  per class — and falls back to method-name matching when at most
  :data:`_MAX_NAME_FALLBACK` classes define ``m`` (an over-approximation
  is fine for hazard reachability; an explosion of false edges is not),
* unresolvable callees are kept as *external* edges (``time.time``,
  ``random.Random``) — the taint analyses' sources.

Everything is stdlib ``ast``; building the graph plus all four
dataflow analyses over ``src/repro`` stays well under the 10-second CI
budget (see ``tests/test_lint_dataflow.py``).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .context import ModuleContext, dotted_name

__all__ = ["Program", "FunctionInfo", "ClassInfo", "CallEdge",
           "module_name_for_path"]

#: An ``obj.m()`` with an unknown receiver type links to every class
#: defining ``m`` — but only when at most this many do, so ubiquitous
#: names (``run``, ``get``) don't glue the whole graph together.
_MAX_NAME_FALLBACK = 4


def module_name_for_path(path: str) -> str:
    """``repro/sim/engine.py`` → ``repro.sim.engine`` (posix paths)."""
    parts = path.split("/")
    parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method, addressable by its dotted qname."""

    qname: str                 #: e.g. ``repro.sim.rng.SimRandom.child``
    module: str                #: dotted module, e.g. ``repro.sim.rng``
    path: str                  #: module path relative to the lint root
    name: str                  #: bare name
    node: ast.AST              #: the FunctionDef / AsyncFunctionDef
    lineno: int = 0
    class_qname: Optional[str] = None  #: owning class, or None
    params: List[str] = field(default_factory=list)  #: w/o self/cls


@dataclass
class ClassInfo:
    """One class: its methods, bases, and inferred attribute types."""

    qname: str
    module: str
    path: str
    name: str
    methods: Dict[str, str] = field(default_factory=dict)  #: name → fn qname
    bases: List[str] = field(default_factory=list)         #: resolved qnames
    attr_types: Dict[str, str] = field(default_factory=dict)  #: self.x → class
    node: Optional[ast.AST] = None                         #: the ClassDef


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    caller: str        #: qname of the enclosing function (or ``<module>``)
    callee: str        #: resolved qname, or external dotted name
    path: str          #: caller's module path
    lineno: int
    col: int
    external: bool     #: callee is not defined inside the program

    def to_dict(self) -> Dict[str, object]:
        return {"caller": self.caller, "callee": self.callee,
                "path": self.path, "line": self.lineno,
                "external": self.external}


class Program:
    """All modules under one lint root, plus their call graph."""

    def __init__(self, contexts: Dict[str, ModuleContext]):
        #: path → ModuleContext, as produced by the CLI's tree walk
        self.contexts = contexts
        #: dotted module name → ModuleContext
        self.modules: Dict[str, ModuleContext] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method name → sorted class qnames defining it
        self._methods_by_name: Dict[str, List[str]] = {}
        self._edges_out: Dict[str, List[CallEdge]] = {}
        self._edges_in: Dict[str, List[CallEdge]] = {}
        #: caller qname → [(ast.Call, [(callee, external)])] — the raw
        #: call sites with their resolution candidates, for analyses
        #: that need the AST node (taint sources, argument checks).
        self.calls_by_fn: Dict[str, List[Tuple[ast.Call,
                                               List[Tuple[str, bool]]]]] = {}
        for path in sorted(contexts):
            self.modules[module_name_for_path(path)] = contexts[path]
        self._collect_definitions()
        self._infer_attr_types()
        self._build_edges()

    @classmethod
    def from_sources(cls, files: Dict[str, str]) -> "Program":
        """Build a program from ``{path: source}`` (tests, scratch trees)."""
        contexts = {}
        for path in sorted(files):
            pkg = module_name_for_path(path)
            pkg = pkg.rsplit(".", 1)[0] if "." in pkg else ""
            if path.endswith("__init__.py"):
                pkg = module_name_for_path(path)
            contexts[path] = ModuleContext(path, files[path],
                                           module_package=pkg)
        return cls(contexts)

    # ------------------------------------------------------------------
    # Definition collection
    # ------------------------------------------------------------------
    @staticmethod
    def _params_of(node) -> List[str]:
        args = node.args
        names = [a.arg for a in (list(args.posonlyargs) + list(args.args))]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        return names + [a.arg for a in args.kwonlyargs]

    def _collect_definitions(self) -> None:
        for mod_name in sorted(self.modules):
            ctx = self.modules[mod_name]
            self._collect_in_scope(ctx, mod_name, ctx.tree, mod_name, None)

    def _collect_in_scope(self, ctx: ModuleContext, mod_name: str,
                          scope: ast.AST, prefix: str,
                          class_qname: Optional[str]) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{node.name}"
                if qname not in self.functions:
                    self.functions[qname] = FunctionInfo(
                        qname=qname, module=mod_name, path=ctx.path,
                        name=node.name, node=node, lineno=node.lineno,
                        class_qname=class_qname,
                        params=self._params_of(node))
                if class_qname is not None:
                    cls_info = self.classes[class_qname]
                    cls_info.methods.setdefault(node.name, qname)
                # Nested defs: collected under the outer function so
                # their bodies contribute edges; containment edges are
                # added during the edge pass.
                self._collect_in_scope(ctx, mod_name, node, qname, None)
            elif isinstance(node, ast.ClassDef):
                qname = f"{prefix}.{node.name}"
                if qname not in self.classes:
                    bases = []
                    for base in node.bases:
                        resolved = ctx.resolve(base)
                        if resolved is not None:
                            bases.append(resolved)
                    self.classes[qname] = ClassInfo(
                        qname=qname, module=mod_name, path=ctx.path,
                        name=node.name, bases=bases, node=node)
                self._collect_in_scope(ctx, mod_name, node, qname, qname)

        if scope is ctx.tree:
            return

    def _index_methods(self) -> None:
        self._methods_by_name.clear()
        for cls_qname in sorted(self.classes):
            for method in self.classes[cls_qname].methods:
                self._methods_by_name.setdefault(method, []).append(cls_qname)

    # ------------------------------------------------------------------
    # Receiver-type inference
    # ------------------------------------------------------------------
    def _class_for_name(self, ctx: ModuleContext,
                        dotted: Optional[str]) -> Optional[str]:
        """Resolve a dotted constructor/annotation name to a class qname."""
        if dotted is None:
            return None
        if dotted in self.classes:
            return dotted
        # ``SimRandom`` inside its own module: qualify with the module.
        mod = module_name_for_path(ctx.path)
        if f"{mod}.{dotted}" in self.classes:
            return f"{mod}.{dotted}"
        # Re-exports: ``repro.exec.ParallelRunner`` names the class
        # defined in ``repro.exec.runner`` — match on the trailing
        # class name when unique.
        leaf = dotted.rsplit(".", 1)[-1]
        matches = [q for q in self._methods_owner_candidates(leaf)]
        if len(matches) == 1:
            return matches[0]
        return None

    def _methods_owner_candidates(self, class_name: str) -> List[str]:
        return sorted(q for q in self.classes
                      if q.rsplit(".", 1)[-1] == class_name)

    def _annotation_class(self, ctx: ModuleContext,
                          annotation: Optional[ast.AST]) -> Optional[str]:
        if annotation is None:
            return None
        node = annotation
        if isinstance(node, ast.Subscript):  # Optional[X] / List[X]
            head = dotted_name(node.value) or ""
            if head.rsplit(".", 1)[-1] == "Optional":
                node = node.slice
            else:
                return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        return self._class_for_name(ctx, ctx.resolve(node))

    def _infer_attr_types(self) -> None:
        """Attribute types per class, from three sources.

        Class-body annotated fields (dataclass style: ``sim: Simulator``),
        ``self.x = Class(...)`` constructor assignments anywhere in a
        method, and ``self.x = fn(...)`` where ``fn`` carries a class
        return annotation. Together these let a chained receiver like
        ``self.testbed.sim.run()`` resolve precisely instead of falling
        back to method-name matching.
        """
        self._index_methods()
        self._return_types: Dict[str, str] = {}
        for fn_qname in sorted(self.functions):
            fn = self.functions[fn_qname]
            returns = getattr(fn.node, "returns", None)
            typed = self._annotation_class(self.contexts[fn.path], returns)
            if typed is not None:
                self._return_types[fn_qname] = typed
        for cls_qname in sorted(self.classes):
            info = self.classes[cls_qname]
            ctx = self.contexts[info.path]
            if info.node is not None:
                for node in ast.iter_child_nodes(info.node):
                    if isinstance(node, ast.AnnAssign) and \
                            isinstance(node.target, ast.Name):
                        typed = self._annotation_class(ctx, node.annotation)
                        if typed is not None:
                            info.attr_types.setdefault(node.target.id, typed)
            for method_qname in sorted(info.methods.values()):
                fn = self.functions.get(method_qname)
                if fn is None:
                    continue
                for node in ast.walk(fn.node):
                    if not (isinstance(node, (ast.Assign, ast.AnnAssign))):
                        continue
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    value = node.value
                    if not isinstance(value, ast.Call):
                        continue
                    typed = self._call_result_class(ctx, value)
                    if typed is None:
                        continue
                    for t in targets:
                        if isinstance(t, ast.Attribute) and \
                                isinstance(t.value, ast.Name) and \
                                t.value.id == "self":
                            info.attr_types.setdefault(t.attr, typed)

    def _call_result_class(self, ctx: ModuleContext,
                           call: ast.Call) -> Optional[str]:
        """Class qname a call evaluates to: constructor or annotated fn."""
        dotted = ctx.resolve(call.func)
        typed = self._class_for_name(ctx, dotted)
        if typed is not None:
            return typed
        if dotted is None or "()" in dotted:
            return None
        if dotted in self._return_types:
            return self._return_types[dotted]
        mod = module_name_for_path(ctx.path)
        return self._return_types.get(f"{mod}.{dotted}")

    def _infer_expr_type(self, ctx: ModuleContext, expr: ast.AST,
                         local_types: Dict[str, str]) -> Optional[str]:
        """Class qname an expression evaluates to, following attribute
        chains through inferred per-class attribute types."""
        if isinstance(expr, ast.Name):
            return local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._infer_expr_type(ctx, expr.value, local_types)
            if base is not None and base in self.classes:
                attr_type = self.classes[base].attr_types.get(expr.attr)
                if attr_type is not None:
                    return attr_type
                prop = self._method_in_class(base, expr.attr)
                if prop is not None:
                    return self._return_types.get(prop)
            return None
        if isinstance(expr, ast.Call):
            return self._call_result_class(ctx, expr)
        return None

    def _local_types(self, ctx: ModuleContext, fn_node: ast.AST,
                     class_qname: Optional[str]) -> Dict[str, str]:
        """name → class qname for one function body (or module scope)."""
        types: Dict[str, str] = {}
        if class_qname is not None:
            types["self"] = class_qname
        if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = fn_node.args
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                typed = self._annotation_class(ctx, arg.annotation)
                if typed is not None:
                    types[arg.arg] = typed
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign):
                typed = self._infer_expr_type(ctx, node.value, types)
                if typed is None:
                    continue
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        types.setdefault(t.id, typed)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                typed = self._annotation_class(ctx, node.annotation)
                if typed is not None:
                    types.setdefault(node.target.id, typed)
        return types

    # ------------------------------------------------------------------
    # Edge construction
    # ------------------------------------------------------------------
    def _method_in_class(self, cls_qname: str, method: str,
                         _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Resolve a method in a class or its resolvable bases (MRO-ish)."""
        seen = _seen or set()
        if cls_qname in seen or cls_qname not in self.classes:
            return None
        seen.add(cls_qname)
        info = self.classes[cls_qname]
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            base_cls = base if base in self.classes else \
                self._class_for_name(self.contexts[info.path], base)
            if base_cls is None:
                continue
            found = self._method_in_class(base_cls, method, seen)
            if found is not None:
                return found
        return None

    def _resolve_callee(self, ctx: ModuleContext, mod_name: str,
                        call: ast.Call,
                        local_types: Dict[str, str]
                        ) -> List[Tuple[str, bool]]:
        """(qname, external) candidates for one call's callee."""
        func = call.func
        # Bare name: local def, aliased import, or builtin/external.
        if isinstance(func, ast.Name):
            name = func.id
            if f"{mod_name}.{name}" in self.functions:
                return [(f"{mod_name}.{name}", False)]
            if f"{mod_name}.{name}" in self.classes:
                init = self._method_in_class(f"{mod_name}.{name}", "__init__")
                return [(init, False)] if init else \
                    [(f"{mod_name}.{name}", False)]
            target = ctx.aliases.get(name)
            if target is not None:
                if target in self.functions:
                    return [(target, False)]
                cls = self._class_for_name(ctx, target)
                if cls is not None:
                    init = self._method_in_class(cls, "__init__")
                    return [(init or cls, False)]
                return [(target, True)]
            return [(name, True)]
        if not isinstance(func, ast.Attribute):
            return []
        method = func.attr
        receiver = func.value
        # Receiver with a known (inferred) class type — follows chained
        # attributes (``self.testbed.sim``) and annotated-return calls.
        recv_type = self._infer_expr_type(ctx, receiver, local_types)
        if recv_type is not None:
            found = self._method_in_class(recv_type, method)
            if found is not None:
                return [(found, False)]
        # Fully-dotted resolution through imports: module.func,
        # package.module.Class.method, ...
        resolved = ctx.resolve(func)
        if resolved is not None and "()" not in resolved:
            if resolved in self.functions:
                return [(resolved, False)]
            cls = self._class_for_name(ctx, resolved)
            if cls is not None:
                init = self._method_in_class(cls, "__init__")
                return [(init or cls, False)]
            head = resolved.rsplit(".", 1)[0]
            if head in self.modules and \
                    f"{resolved}" not in self.functions:
                # repro.x.y.name where name isn't defined: external-ish
                return [(resolved, True)]
            if receiver is not None and isinstance(receiver, ast.Name) \
                    and receiver.id in ctx.aliases:
                return [(resolved, True)]
        # Name-based fallback: every class defining this method.
        owners = self._methods_by_name.get(method, [])
        if 0 < len(owners) <= _MAX_NAME_FALLBACK:
            return [(self.classes[o].methods[method], False)
                    for o in owners]
        if resolved is not None and "()" not in resolved:
            return [(resolved, True)]
        return []

    def _reference_candidates(self, ctx: ModuleContext, mod_name: str,
                              expr: ast.AST,
                              local_types: Dict[str, str]) -> List[str]:
        """Internal functions an argument expression *refers to*.

        A function handed around by reference — an engine callback into
        ``sim.schedule``, a task fn into ``ParallelRunner`` — will be
        called later through a path the static graph can't see (the
        event queue, the process pool). Treating the reference itself as
        an edge keeps hazard reachability sound across those hops.
        """
        if isinstance(expr, ast.Name):
            qname = f"{mod_name}.{expr.id}"
            if qname in self.functions:
                return [qname]
            target = ctx.aliases.get(expr.id)
            if target is not None and target in self.functions:
                return [target]
            return []
        if isinstance(expr, ast.Attribute):
            recv_type = self._infer_expr_type(ctx, expr.value, local_types)
            if recv_type is not None:
                found = self._method_in_class(recv_type, expr.attr)
                if found is not None:
                    return [found]
            resolved = ctx.resolve(expr)
            if resolved is not None and "()" not in resolved and \
                    resolved in self.functions:
                return [resolved]
        return []

    def _build_edges(self) -> None:
        edges: List[CallEdge] = []
        for mod_name in sorted(self.modules):
            ctx = self.modules[mod_name]
            # Module top-level code acts as a pseudo-function.
            scopes: List[Tuple[str, ast.AST, Optional[str]]] = [
                (f"{mod_name}.<module>", ctx.tree, None)]
            for qname in sorted(self.functions):
                fn = self.functions[qname]
                if fn.module == mod_name:
                    scopes.append((qname, fn.node, fn.class_qname))
            for caller, scope_node, class_qname in scopes:
                local_types = self._local_types(ctx, scope_node, class_qname)
                recorded = self.calls_by_fn.setdefault(caller, [])
                for node in self._iter_own_statements(scope_node):
                    if isinstance(node, ast.Call):
                        candidates = self._resolve_callee(
                            ctx, mod_name, node, local_types)
                        recorded.append((node, candidates))
                        for callee, external in candidates:
                            edges.append(CallEdge(
                                caller=caller, callee=callee,
                                path=ctx.path, lineno=node.lineno,
                                col=node.col_offset, external=external))
                        # Callback references passed as arguments.
                        for arg in list(node.args) + \
                                [kw.value for kw in node.keywords]:
                            for ref in self._reference_candidates(
                                    ctx, mod_name, arg, local_types):
                                edges.append(CallEdge(
                                    caller=caller, callee=ref,
                                    path=ctx.path, lineno=node.lineno,
                                    col=node.col_offset, external=False))
                    elif isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)) and \
                            caller in self.functions:
                        # Containment: defining a nested function makes
                        # it reachable from the outer one.
                        nested = f"{caller}.{node.name}"
                        if nested in self.functions:
                            edges.append(CallEdge(
                                caller=caller, callee=nested,
                                path=ctx.path, lineno=node.lineno,
                                col=node.col_offset, external=False))
        for edge in edges:
            self._edges_out.setdefault(edge.caller, []).append(edge)
            self._edges_in.setdefault(edge.callee, []).append(edge)

    @staticmethod
    def _iter_own_statements(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested def/class bodies
        (they are separate graph nodes), but *do* yield the nested def
        node itself so containment edges can be added."""
        body = getattr(scope, "body", [])
        stack = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, ast.Lambda):
                # Lambda bodies execute in the enclosing scope's graph
                # node; keep walking.
                pass
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def out_edges(self, qname: str) -> List[CallEdge]:
        return self._edges_out.get(qname, [])

    def in_edges(self, qname: str) -> List[CallEdge]:
        return self._edges_in.get(qname, [])

    def iter_edges(self) -> Iterator[CallEdge]:
        for caller in sorted(self._edges_out):
            yield from self._edges_out[caller]

    def reachable_from(self, roots: Iterable[str],
                       include_roots: bool = True) -> Set[str]:
        """Every function qname reachable over internal edges."""
        seen: Set[str] = set()
        stack = [r for r in sorted(set(roots))]
        roots_set = set(stack)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._edges_out.get(current, []):
                if not edge.external and edge.callee not in seen:
                    stack.append(edge.callee)
        return seen if include_roots else seen - roots_set

    def functions_reaching(self, targets: Iterable[str]) -> Set[str]:
        """Every function from which some target is reachable."""
        seen: Set[str] = set()
        stack = [t for t in sorted(set(targets))]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._edges_in.get(current, []):
                if edge.caller not in seen:
                    stack.append(edge.caller)
        return seen

    def call_chain(self, src: str, dst: str) -> List[str]:
        """A shortest src → … → dst qname chain, or [] if unreachable."""
        if src == dst:
            return [src]
        prev: Dict[str, str] = {}
        queue = [src]
        seen = {src}
        while queue:
            nxt: List[str] = []
            for current in queue:
                for edge in sorted(self._edges_out.get(current, []),
                                   key=lambda e: e.callee):
                    target = edge.callee
                    if target in seen:
                        continue
                    seen.add(target)
                    prev[target] = current
                    if target == dst:
                        chain = [dst]
                        while chain[-1] != src:
                            chain.append(prev[chain[-1]])
                        return list(reversed(chain))
                    if not edge.external:
                        nxt.append(target)
            queue = nxt
        return []

    # ------------------------------------------------------------------
    # Rendering (``lint --graph``)
    # ------------------------------------------------------------------
    def to_dict(self, include_external: bool = True) -> Dict[str, object]:
        nodes = sorted(self.functions)
        edges = [e.to_dict() for e in self.iter_edges()
                 if include_external or not e.external]
        return {
            "modules": sorted(self.modules),
            "functions": nodes,
            "classes": {q: {"methods": dict(sorted(
                self.classes[q].methods.items())),
                "bases": list(self.classes[q].bases)}
                for q in sorted(self.classes)},
            "edges": edges,
            "summary": {
                "modules": len(self.modules),
                "functions": len(self.functions),
                "classes": len(self.classes),
                "edges": len(edges),
                "external_edges": sum(1 for e in self.iter_edges()
                                      if e.external),
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines: List[str] = []
        for qname in sorted(self.functions):
            edges = self._edges_out.get(qname, [])
            internal = sorted({e.callee for e in edges if not e.external})
            external = sorted({e.callee for e in edges if e.external})
            if not internal and not external:
                continue
            lines.append(qname)
            for callee in internal:
                lines.append(f"  -> {callee}")
            for callee in external:
                lines.append(f"  ~> {callee}  [external]")
        summary = self.to_dict()["summary"]
        lines.append(f"callgraph: {summary['functions']} functions, "
                     f"{summary['classes']} classes, "
                     f"{summary['edges']} edges "
                     f"({summary['external_edges']} external) across "
                     f"{summary['modules']} modules")
        return "\n".join(lines)
