"""Finding reporters: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .findings import FileStats, Finding, Severity

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(findings: List[Finding], stats: FileStats,
                show_masked: int = 0) -> str:
    """GCC-style one-line-per-finding text, with a summary footer."""
    lines: List[str] = []
    for finding in sorted(findings, key=Finding.sort_key):
        lines.append(f"{finding.location()}: {finding.code} "
                     f"[{finding.severity.value}] {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    by_code = ", ".join(f"{code}×{count}"
                        for code, count in sorted(stats.by_code.items()))
    summary = (f"{len(findings)} finding"
               f"{'' if len(findings) == 1 else 's'}"
               + (f" ({by_code})" if by_code else ""))
    tail = []
    if stats.baselined:
        tail.append(f"{stats.baselined} baselined")
    if stats.suppressed:
        tail.append(f"{stats.suppressed} suppressed")
    if show_masked:
        tail.append(f"{show_masked} masked")
    tail.append(f"{stats.files_checked} files checked")
    if stats.parse_errors:
        tail.append(f"{stats.parse_errors} parse errors")
    lines.append(f"repro-lint: {summary}; " + ", ".join(tail))
    return "\n".join(lines)


def render_json(findings: List[Finding], stats: FileStats) -> str:
    payload: Dict[str, object] = {
        "findings": [f.to_dict() for f in sorted(findings,
                                                 key=Finding.sort_key)],
        "summary": {
            "total": len(findings),
            "by_code": dict(sorted(stats.by_code.items())),
            "files_checked": stats.files_checked,
            "files_skipped": stats.files_skipped,
            "parse_errors": stats.parse_errors,
            "suppressed": stats.suppressed,
            "baselined": stats.baselined,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_sarif(findings: List[Finding],
                 uri_prefix: str = "",
                 rules: Optional[List] = None) -> str:
    """SARIF 2.1.0 — the schema GitHub code scanning ingests.

    ``uri_prefix`` maps lint-root-relative paths back to repository
    paths (findings report ``repro/sim/engine.py``; the repo holds it
    at ``src/repro/sim/engine.py``). ``rules`` is the rule catalogue to
    embed as ``tool.driver.rules`` metadata (default: all registered).
    """
    if rules is None:
        from .rules import all_rules
        rules = all_rules()
    rule_ids = sorted({r.code for r in rules})
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    by_code = {r.code: r for r in rules}

    def _uri(path: str) -> str:
        return f"{uri_prefix}{path}" if uri_prefix else path

    results = []
    for finding in sorted(findings, key=Finding.sort_key):
        result: Dict[str, object] = {
            "ruleId": finding.code,
            "level": _SARIF_LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _uri(finding.path),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        if finding.snippet:
            region = result["locations"][0]["physicalLocation"]["region"]  # type: ignore[index]
            region["snippet"] = {"text": finding.snippet}
        results.append(result)

    driver_rules = []
    for code in rule_ids:
        rule = by_code[code]
        driver_rules.append({
            "id": code,
            "name": rule.name or code,
            "shortDescription": {"text": rule.description or rule.name},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule.severity, "warning"),
            },
        })

    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": driver_rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
