"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from .findings import FileStats, Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: List[Finding], stats: FileStats,
                show_masked: int = 0) -> str:
    """GCC-style one-line-per-finding text, with a summary footer."""
    lines: List[str] = []
    for finding in sorted(findings, key=Finding.sort_key):
        lines.append(f"{finding.location()}: {finding.code} "
                     f"[{finding.severity.value}] {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    by_code = ", ".join(f"{code}×{count}"
                        for code, count in sorted(stats.by_code.items()))
    summary = (f"{len(findings)} finding"
               f"{'' if len(findings) == 1 else 's'}"
               + (f" ({by_code})" if by_code else ""))
    tail = []
    if stats.baselined:
        tail.append(f"{stats.baselined} baselined")
    if stats.suppressed:
        tail.append(f"{stats.suppressed} suppressed")
    if show_masked:
        tail.append(f"{show_masked} masked")
    tail.append(f"{stats.files_checked} files checked")
    if stats.parse_errors:
        tail.append(f"{stats.parse_errors} parse errors")
    lines.append(f"repro-lint: {summary}; " + ", ".join(tail))
    return "\n".join(lines)


def render_json(findings: List[Finding], stats: FileStats) -> str:
    payload: Dict[str, object] = {
        "findings": [f.to_dict() for f in sorted(findings,
                                                 key=Finding.sort_key)],
        "summary": {
            "total": len(findings),
            "by_code": dict(sorted(stats.by_code.items())),
            "files_checked": stats.files_checked,
            "files_skipped": stats.files_skipped,
            "parse_errors": stats.parse_errors,
            "suppressed": stats.suppressed,
            "baselined": stats.baselined,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
