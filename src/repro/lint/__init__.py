"""``repro.lint`` — determinism & spawn-safety static analysis.

Lumina's methodology rests on the testbed being *bit-reproducible*:
identical configs must produce field-for-field identical reports for
any worker count, and telemetry must stay byte-invisible when
disabled. Those invariants are easy to break with one innocuous line —
a ``time.time()`` in a model, an unordered ``set`` iteration feeding a
report, a lambda handed to the spawn-based process pool — and runtime
equality tests only catch the breakage after a campaign has already
burned pool hours.

This package checks the *code* instead. It is a small AST-based
framework (stdlib :mod:`ast` only):

* :mod:`repro.lint.findings` — the :class:`Finding` record and severities,
* :mod:`repro.lint.context`  — per-module parse context: import-alias
  resolution, inline suppressions, light type inference,
* :mod:`repro.lint.rules`    — the rule registry and the per-module
  rules (DET001–DET004, EXEC001, TEL001, API001, PERF001),
* :mod:`repro.lint.callgraph` — the whole-program model: an
  alias-resolving cross-module call graph with receiver-type inference,
* :mod:`repro.lint.dataflow` — transitive analyses on that graph
  (FLOW001 wall-clock taint, FLOW002 RNG provenance, RACE001
  spawn-safety races, UNIT001 unit consistency),
* :mod:`repro.lint.baseline` — fingerprinting + the committed baseline
  that masks pre-existing findings (every entry carries a reason),
* :mod:`repro.lint.reporters` — text, JSON and SARIF output,
* :mod:`repro.lint.cli`      — the ``python -m repro.lint`` /
  ``python -m repro lint`` entry point.

Suppress a single finding inline with ``# repro-lint: ignore[CODE]``
(or a bare ``ignore`` for every rule on that line); opt a whole file
out with ``# repro-lint: skip-file``.
"""

from __future__ import annotations

from .baseline import Baseline, fingerprint_findings
from .callgraph import Program
from .context import ModuleContext
from .dataflow import run_program_rules, worker_root_qnames
from .findings import Finding, Severity
from .rules import RULES, all_rules, get_rule, run_rules

__all__ = [
    "Finding", "Severity", "ModuleContext", "Baseline",
    "fingerprint_findings", "RULES", "all_rules", "get_rule", "run_rules",
    "Program", "run_program_rules", "worker_root_qnames",
]
