"""The ``python -m repro.lint`` / ``python -m repro lint`` front end.

Walks every ``*.py`` under the target root (default: the installed
``repro`` package itself), builds a :class:`ModuleContext` per file,
runs the registered rules, subtracts inline suppressions and the
committed baseline, and renders text or JSON.

Exit codes: ``0`` clean, ``1`` unbaselined findings, ``2`` usage or
parse failure.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Set, Tuple

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .context import ModuleContext
from .findings import FileStats, Finding, Severity
from .reporters import render_json, render_text
from .rules import all_rules, run_rules

__all__ = ["main", "lint_tree", "default_root", "default_baseline_path"]


def default_root() -> str:
    """The ``repro`` package directory this module is installed in."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_baseline_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        DEFAULT_BASELINE_NAME)


def _iter_py_files(root: str) -> List[str]:
    out: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d not in ("__pycache__",)
                             and not d.startswith("."))
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.append(os.path.join(dirpath, name))
    return out


def _module_package(relpath: str) -> str:
    """Dotted package for a file path like ``repro/exec/runner.py``."""
    parts = relpath.split("/")
    parts[-1] = parts[-1][:-3]  # strip .py
    if parts[-1] == "__init__":
        parts.pop()
    else:
        parts.pop()  # package = containing directory
    return ".".join(parts)


def lint_tree(root: str, select: Optional[Set[str]] = None,
              stats: Optional[FileStats] = None,
              rel_prefix: Optional[str] = None
              ) -> Tuple[List[Finding], FileStats]:
    """Lint every python file under ``root``.

    ``rel_prefix`` overrides how paths are reported/relativised: by
    default paths are relative to ``root``'s parent, so linting
    ``.../src/repro`` reports ``repro/sim/engine.py`` and the rules'
    directory scoping works for scratch trees too.
    """
    stats = stats or FileStats()
    base = rel_prefix if rel_prefix is not None else os.path.dirname(
        os.path.abspath(root))
    findings: List[Finding] = []
    for path in _iter_py_files(root):
        rel = os.path.relpath(path, base).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            stats.files_skipped += 1
            continue
        try:
            ctx = ModuleContext(rel, source,
                                module_package=_module_package(rel))
        except SyntaxError as exc:
            stats.parse_errors += 1
            findings.append(Finding(
                code="PARSE", severity=Severity.ERROR,
                path=rel, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}"))
            continue
        stats.files_checked += 1
        if ctx.skip_file:
            stats.files_skipped += 1
            continue
        findings.extend(run_rules(ctx, select=select, stats=stats))
    return findings, stats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Determinism & spawn-safety static analysis for the "
                    "Lumina testbed sources.")
    parser.add_argument("root", nargs="?", default=None,
                        help="directory tree to lint "
                             "(default: the repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: the committed "
                             "src/repro/lint/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--show-masked", action="store_true",
                        help="also print baseline-masked findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> str:
    lines = [f"{'code':<9s}{'severity':<10s}name / description",
             "-" * 72]
    for rule in all_rules():
        lines.append(f"{rule.code:<9s}{rule.severity.value:<10s}"
                     f"{rule.name}")
        lines.append(f"{'':<19s}{rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    root = args.root or default_root()
    if not os.path.isdir(root):
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2
    select: Optional[Set[str]] = None
    if args.select:
        select = {c.strip().upper() for c in args.select.split(",")
                  if c.strip()}
        unknown = select - {r.code for r in all_rules()}
        if unknown:
            print(f"error: unknown rule codes: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    findings, stats = lint_tree(root, select=select)
    if stats.parse_errors:
        for finding in findings:
            if finding.code == "PARSE":
                print(f"{finding.location()}: {finding.message}",
                      file=sys.stderr)
        return 2

    baseline_path = args.baseline or default_baseline_path()
    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"baseline written: {baseline_path} "
              f"({len(findings)} findings masked)")
        return 0

    baseline = Baseline.empty() if args.no_baseline \
        else Baseline.load(baseline_path)
    new, masked = baseline.split(findings)
    stats.baselined = len(masked)
    for finding in new:
        stats.count(finding)

    reported = new + (masked if args.show_masked else [])
    if args.format == "json":
        print(render_json(reported, stats))
    else:
        print(render_text(reported, stats,
                          show_masked=len(masked) if args.show_masked
                          else 0))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
