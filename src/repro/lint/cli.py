"""The ``python -m repro.lint`` / ``python -m repro lint`` front end.

Walks every ``*.py`` under the target root (default: the installed
``repro`` package itself), builds a :class:`ModuleContext` per file,
runs the registered per-module rules plus the whole-program analyses
(call-graph taint, RNG provenance, spawn races, unit checking),
subtracts inline suppressions and the committed baseline, and renders
text, JSON or SARIF.

Extras beyond a plain run:

* ``--graph`` dumps the cross-module call graph (text or ``--format
  json``) for debugging the dataflow rules,
* ``--changed [REF]`` lints only files changed vs a git ref (default
  ``HEAD``) — the fast CI pre-gate; whole-program rules need the whole
  tree and are skipped in this mode,
* ``--sarif PATH`` writes a SARIF 2.1.0 report of the unbaselined
  findings for GitHub code scanning,
* ``--prune-baseline`` drops baseline entries whose fingerprint no
  longer matches any finding; a full default run *fails* while stale
  entries exist, so the committed baseline can't rot.

Exit codes: ``0`` clean, ``1`` unbaselined findings or a stale
baseline, ``2`` usage or parse failure.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .callgraph import Program
from .context import ModuleContext
from .dataflow import run_program_rules
from .findings import FileStats, Finding, Severity
from .reporters import render_json, render_sarif, render_text
from .rules import ProgramRule, all_rules, run_rules

__all__ = ["main", "lint_tree", "default_root", "default_baseline_path"]


def default_root() -> str:
    """The ``repro`` package directory this module is installed in."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_baseline_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        DEFAULT_BASELINE_NAME)


def _iter_py_files(root: str) -> List[str]:
    out: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d not in ("__pycache__",)
                             and not d.startswith("."))
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.append(os.path.join(dirpath, name))
    return out


def _module_package(relpath: str) -> str:
    """Dotted package for a file path like ``repro/exec/runner.py``."""
    parts = relpath.split("/")
    parts[-1] = parts[-1][:-3]  # strip .py
    if parts[-1] == "__init__":
        parts.pop()
    else:
        parts.pop()  # package = containing directory
    return ".".join(parts)


def _rel_base(root: str, rel_prefix: Optional[str]) -> str:
    return rel_prefix if rel_prefix is not None else os.path.dirname(
        os.path.abspath(root))


def load_contexts(root: str, stats: FileStats,
                  rel_prefix: Optional[str] = None,
                  files: Optional[Sequence[str]] = None
                  ) -> Tuple[Dict[str, ModuleContext], List[Finding]]:
    """Parse every file under ``root`` (or just ``files``).

    Returns ``(contexts, parse_error_findings)``; paths in both are
    relative to ``root``'s parent (``repro/sim/engine.py``-style), so
    the rules' directory scoping works for scratch trees too.
    """
    base = _rel_base(root, rel_prefix)
    contexts: Dict[str, ModuleContext] = {}
    parse_errors: List[Finding] = []
    for path in (files if files is not None else _iter_py_files(root)):
        rel = os.path.relpath(path, base).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            stats.files_skipped += 1
            continue
        try:
            contexts[rel] = ModuleContext(
                rel, source, module_package=_module_package(rel))
        except SyntaxError as exc:
            stats.parse_errors += 1
            parse_errors.append(Finding(
                code="PARSE", severity=Severity.ERROR,
                path=rel, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}"))
    return contexts, parse_errors


def _program_codes() -> Set[str]:
    return {rule.code for rule in all_rules()
            if isinstance(rule, ProgramRule)}


def lint_tree(root: str, select: Optional[Set[str]] = None,
              stats: Optional[FileStats] = None,
              rel_prefix: Optional[str] = None,
              files: Optional[Sequence[str]] = None,
              program: bool = True
              ) -> Tuple[List[Finding], FileStats]:
    """Lint a tree: per-module rules plus the whole-program analyses.

    ``files`` restricts the scan to an explicit file list (the
    ``--changed`` path); whole-program rules are skipped then — taint
    chains need every module, not a diff. ``program=False`` also skips
    them explicitly.
    """
    stats = stats or FileStats()
    contexts, parse_errors = load_contexts(root, stats,
                                           rel_prefix=rel_prefix,
                                           files=files)
    findings: List[Finding] = list(parse_errors)
    for rel in sorted(contexts):
        ctx = contexts[rel]
        stats.files_checked += 1
        if ctx.skip_file:
            stats.files_skipped += 1
            continue
        findings.extend(run_rules(ctx, select=select, stats=stats))
    run_program = (program and files is None
                   and (select is None or bool(select & _program_codes())))
    if run_program and not parse_errors:
        findings.extend(run_program_rules(Program(contexts),
                                          select=select, stats=stats))
    return sorted(findings, key=Finding.sort_key), stats


def changed_files(root: str, ref: str) -> Optional[List[str]]:
    """Absolute paths of ``*.py`` files under ``root`` changed vs ``ref``.

    Changed = ``git diff --name-only REF`` plus untracked files; returns
    None when git fails (not a repository, unknown ref).
    """
    root_abs = os.path.abspath(root)
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
            cwd=root_abs).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, check=True,
            cwd=top).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
            cwd=top).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    out: List[str] = []
    for name in sorted(set(diff.splitlines()) | set(untracked.splitlines())):
        if not name.endswith(".py"):
            continue
        path = os.path.join(top, name)
        if not os.path.isfile(path):
            continue  # deleted in the working tree
        if os.path.commonpath([root_abs, os.path.abspath(path)]) == root_abs:
            out.append(path)
    return out


def _sarif_uri_prefix(root: str) -> str:
    """Map lint-relative paths back to repo paths for code scanning.

    Linting ``src/repro`` from the repo root reports
    ``repro/sim/engine.py``; the artifact URI must say
    ``src/repro/sim/engine.py``.
    """
    base = os.path.dirname(os.path.abspath(root))
    rel = os.path.relpath(base, os.getcwd())
    if rel == ".":
        return ""
    if rel.startswith(".."):
        return ""  # outside the working tree: keep lint-relative paths
    return rel.replace(os.sep, "/") + "/"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Determinism & spawn-safety static analysis for the "
                    "Lumina testbed sources.")
    parser.add_argument("root", nargs="?", default=None,
                        help="directory tree to lint "
                             "(default: the repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: the committed "
                             "src/repro/lint/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "(reasons of persisting entries survive) "
                             "and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries that match no current "
                             "finding and exit 0")
    parser.add_argument("--show-masked", action="store_true",
                        help="also print baseline-masked findings")
    parser.add_argument("--changed", metavar="REF", nargs="?",
                        const="HEAD", default=None,
                        help="lint only files changed vs a git ref "
                             "(default REF: HEAD); whole-program rules "
                             "are skipped in this mode")
    parser.add_argument("--graph", action="store_true",
                        help="dump the cross-module call graph "
                             "(honours --format) and exit")
    parser.add_argument("--sarif", metavar="PATH", default=None,
                        help="also write a SARIF 2.1.0 report of the "
                             "unbaselined findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> str:
    lines = [f"{'code':<9s}{'severity':<10s}name / description",
             "-" * 72]
    for rule in all_rules():
        lines.append(f"{rule.code:<9s}{rule.severity.value:<10s}"
                     f"{rule.name}")
        lines.append(f"{'':<19s}{rule.description}")
    return "\n".join(lines)


def _cmd_graph(root: str, fmt: str) -> int:
    stats = FileStats()
    contexts, parse_errors = load_contexts(root, stats)
    if parse_errors:
        for finding in parse_errors:
            print(f"{finding.location()}: {finding.message}",
                  file=sys.stderr)
        return 2
    program = Program(contexts)
    print(program.render_json() if fmt == "json"
          else program.render_text())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    root = args.root or default_root()
    if not os.path.isdir(root):
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2
    if args.graph:
        return _cmd_graph(root, args.format)
    select: Optional[Set[str]] = None
    if args.select:
        select = {c.strip().upper() for c in args.select.split(",")
                  if c.strip()}
        unknown = select - {r.code for r in all_rules()}
        if unknown:
            print(f"error: unknown rule codes: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    files: Optional[List[str]] = None
    if args.changed is not None:
        files = changed_files(root, args.changed)
        if files is None:
            print(f"error: git diff against {args.changed!r} failed "
                  f"(not a repository, or unknown ref)", file=sys.stderr)
            return 2
        if not files:
            print(f"repro-lint: no python files changed vs "
                  f"{args.changed}")
            return 0

    findings, stats = lint_tree(root, select=select, files=files)
    if stats.parse_errors:
        for finding in findings:
            if finding.code == "PARSE":
                print(f"{finding.location()}: {finding.message}",
                      file=sys.stderr)
        return 2

    baseline_path = args.baseline or default_baseline_path()
    if args.update_baseline:
        previous = Baseline.load(baseline_path)
        updated = Baseline.from_findings(findings, previous=previous)
        updated.save(baseline_path)
        print(f"baseline written: {baseline_path} "
              f"({len(findings)} findings masked)")
        reasonless = updated.reasonless_fingerprints()
        if reasonless:
            print(f"warning: {len(reasonless)} baseline entr"
                  f"{'y' if len(reasonless) == 1 else 'ies'} carry a "
                  f"TODO reason — edit {baseline_path} and justify: "
                  + ", ".join(reasonless), file=sys.stderr)
        return 0
    if args.prune_baseline:
        baseline = Baseline.load(baseline_path)
        dropped = baseline.prune(findings)
        baseline.save(baseline_path)
        print(f"baseline pruned: {baseline_path} "
              f"({len(dropped)} stale entr"
              f"{'y' if len(dropped) == 1 else 'ies'} dropped, "
              f"{len(baseline)} kept)")
        return 0

    baseline = Baseline.empty() if args.no_baseline \
        else Baseline.load(baseline_path)
    new, masked = baseline.split(findings)
    stats.baselined = len(masked)
    for finding in new:
        stats.count(finding)

    # A full run sees every finding, so every unmatched baseline entry
    # is genuinely stale; incremental/selective runs can't tell.
    stale: List[str] = []
    if not args.no_baseline and select is None and files is None:
        stale = baseline.stale_fingerprints(findings)

    if args.sarif:
        with open(args.sarif, "w") as handle:
            handle.write(render_sarif(new,
                                      uri_prefix=_sarif_uri_prefix(root)))
            handle.write("\n")

    reported = new + (masked if args.show_masked else [])
    if args.format == "json":
        print(render_json(reported, stats))
    else:
        print(render_text(reported, stats,
                          show_masked=len(masked) if args.show_masked
                          else 0))
    if stale:
        print(f"repro-lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fingerprint matches "
              f"no current finding) — run lint --prune-baseline: "
              + ", ".join(stale), file=sys.stderr)
        return 1
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
