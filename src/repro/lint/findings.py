"""The finding record shared by every rule and reporter."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class Severity(enum.Enum):
    """How bad a finding is; drives exit-code and report grouping.

    * ``ERROR``   — breaks a determinism/spawn-safety invariant outright.
    * ``WARNING`` — likely hazard; needs a fix or an explicit suppression.
    * ``ADVICE``  — style-level: correct today but fragile under change.
    """

    ERROR = "error"
    WARNING = "warning"
    ADVICE = "advice"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "advice": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str          #: rule code, e.g. ``DET001``
    severity: Severity
    path: str          #: path relative to the scanned root, posix-style
    line: int          #: 1-based line of the offending node
    col: int           #: 0-based column of the offending node
    message: str       #: human explanation, incl. what to do instead
    snippet: str = ""  #: the stripped offending source line

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)


@dataclass
class FileStats:
    """Per-run accounting, reported in the summary footer."""

    files_checked: int = 0
    files_skipped: int = 0
    parse_errors: int = 0
    suppressed: int = 0
    baselined: int = 0
    by_code: Dict[str, int] = field(default_factory=dict)

    def count(self, finding: Finding) -> None:
        self.by_code[finding.code] = self.by_code.get(finding.code, 0) + 1
