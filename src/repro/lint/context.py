"""Per-module parse context: aliases, suppressions, light inference.

One :class:`ModuleContext` is built per analysed file and handed to
every rule. It centralises the boring-but-subtle parts of AST linting:

* **Alias resolution** — ``from time import perf_counter as pc`` must
  make ``pc()`` resolve to ``time.perf_counter``. The context walks all
  ``import`` statements (including relative ones, resolved against the
  module's package path) and exposes :meth:`resolve` /
  :meth:`resolve_call` to turn expressions back into dotted names.
* **Suppressions** — ``# repro-lint: ignore[DET001]`` on the finding's
  line, or ``# repro-lint: skip-file`` anywhere in the file.
* **Set-typed inference** — a deliberately small lattice ("definitely a
  set" / "unknown") fed by literals, ``set()``/``frozenset()`` calls,
  set operators and ``Set``/``FrozenSet`` annotations, used by DET003.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["ModuleContext", "dotted_name", "SUPPRESS_RE"]

SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")
SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file\b")

#: Annotation heads that mean "this value is a set".
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                    "MutableSet"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` / ``a`` as a dotted string; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, path: str, source: str,
                 module_package: str = ""):
        #: posix path relative to the scanned root, e.g. ``repro/sim/engine.py``
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        #: dotted package the module lives in (for relative imports),
        #: e.g. ``repro.exec`` for ``repro/exec/runner.py``.
        self.module_package = module_package
        self.tree = ast.parse(source, filename=path)
        #: local name -> fully qualified dotted path
        self.aliases: Dict[str, str] = {}
        #: names of functions/classes defined at module top level
        self.module_defs: Set[str] = set()
        #: line -> suppressed rule codes (empty set == all rules)
        self.suppressions: Dict[int, Set[str]] = {}
        self.skip_file = False
        self._collect_imports()
        self._collect_defs()
        self._collect_suppressions()
        self._spread_suppressions()

    # ------------------------------------------------------------------
    # Imports / aliases
    # ------------------------------------------------------------------
    def _resolve_relative(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # ``from ..x import y`` in package a.b.c -> a.x (level counts
        # dots; one dot = current package).
        parts = self.module_package.split(".") if self.module_package else []
        base = parts[:len(parts) - (node.level - 1)]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_relative(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = (f"{base}.{alias.name}"
                                           if base else alias.name)

    def _collect_defs(self) -> None:
        for node in ast.iter_child_nodes(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self.module_defs.add(node.name)

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _iter_comments(self) -> Iterator[Tuple[int, str]]:
        """(line, text) for every real comment token.

        Tokenising (rather than regex-scanning raw lines) keeps
        directives inside string literals and docstrings — e.g. this
        package's own documentation — from being misread as live
        suppressions.
        """
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError,
                SyntaxError):  # pragma: no cover - ast.parse ran already
            for lineno, text in enumerate(self.lines, start=1):
                if "#" in text:
                    yield lineno, text[text.index("#"):]

    def _collect_suppressions(self) -> None:
        for lineno, text in self._iter_comments():
            if SKIP_FILE_RE.search(text):
                self.skip_file = True
            match = SUPPRESS_RE.search(text)
            if match:
                codes = match.group("codes")
                parsed = {c.strip().upper() for c in (codes or "").split(",")
                          if c.strip()}
                existing = self.suppressions.get(lineno)
                if not parsed or existing == set():
                    self.suppressions[lineno] = set()  # bare: all rules
                elif existing is None:
                    self.suppressions[lineno] = parsed
                else:
                    existing |= parsed

    def _statement_spans(self) -> Iterator[Tuple[int, int]]:
        """(first, last) line of every multi-line statement.

        For simple statements the span is the full node extent — a
        parenthesised call can put the suppression comment on any of
        its lines. For compound statements (``if``/``for``/``def``/…)
        only the *header* spans: decorators through the line before the
        first body statement, so a comment inside the body never blankets
        the whole block.
        """
        for node in ast.walk(self.tree):
            lineno = getattr(node, "lineno", None)
            end = getattr(node, "end_lineno", None)
            if lineno is None or end is None:
                continue
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and \
                    hasattr(body[0], "lineno"):
                first = lineno
                decorators = getattr(node, "decorator_list", [])
                if decorators:
                    first = min(first, min(d.lineno for d in decorators))
                end = body[0].lineno - 1
                if end > first:
                    yield first, end
            elif end > lineno:
                yield lineno, end

    def _spread_suppressions(self) -> None:
        """Apply each suppression comment to its whole statement span.

        A directive on *any* line of a multi-line statement (the closing
        paren of a wrapped expression, a decorator line, the middle of a
        parenthesised condition) suppresses findings anchored on every
        line of that statement.
        """
        if not self.suppressions:
            return
        for first, last in self._statement_spans():
            hits = [self.suppressions[line]
                    for line in range(first, last + 1)
                    if line in self.suppressions]
            if not hits:
                continue
            merged: Optional[Set[str]] = set()
            for codes in hits:
                if not codes:
                    merged = set()  # bare ignore: all rules
                    break
                assert merged is not None
                merged |= codes
            for line in range(first, last + 1):
                existing = self.suppressions.get(line)
                if existing == set():
                    continue  # bare ignore already dominates
                if not merged:
                    self.suppressions[line] = set()
                elif existing is None:
                    self.suppressions[line] = set(merged)
                else:
                    existing |= merged

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return not codes or code.upper() in codes

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name for an expression, or None.

        Handles alias substitution at the head of the chain and keeps a
        ``()`` marker for intermediate calls, so
        ``telemetry.current().counter`` (with ``telemetry`` imported
        from ``repro.telemetry.runtime``) resolves to
        ``repro.telemetry.runtime.current().counter``.
        """
        parts: List[str] = []
        while True:
            if isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Call):
                inner = self.resolve(node.func)
                if inner is None:
                    return None
                parts.append(inner + "()")
                return ".".join(reversed(parts))
            elif isinstance(node, ast.Name):
                head = self.aliases.get(node.id, node.id)
                parts.append(head)
                return ".".join(reversed(parts))
            else:
                return None

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """Dotted name of a call's callee (alias-resolved)."""
        return self.resolve(node.func)

    def head_is_imported_module(self, node: ast.AST) -> bool:
        """True when an attribute chain is rooted at an imported name.

        ``worker_mod.invoke`` with ``from . import worker as worker_mod``
        is a module-level reference (picklable by reference);
        ``self.task_fn`` is not.
        """
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id in self.aliases

    # ------------------------------------------------------------------
    # Set-typed inference (used by DET003)
    # ------------------------------------------------------------------
    @staticmethod
    def annotation_is_set(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        name = dotted_name(node)
        if name is None:
            return False
        return name.split(".")[-1] in _SET_ANNOTATIONS

    def expr_is_set(self, node: ast.AST,
                    set_names: Optional[Set[str]] = None) -> bool:
        """True when ``node`` definitely evaluates to a set.

        ``set_names`` is the caller's scope-local collection of names
        known to hold sets (built by the DET003 scope walker).
        """
        set_names = set_names or set()
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            callee = self.resolve_call(node)
            if callee in ("set", "frozenset"):
                return True
            # ``a.union(b)`` / ``a.difference(b)`` on a known set.
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "union", "difference", "intersection",
                    "symmetric_difference", "copy"):
                return self.expr_is_set(node.func.value, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
            return (self.expr_is_set(node.left, set_names)
                    or self.expr_is_set(node.right, set_names))
        if isinstance(node, ast.Name):
            return node.id in set_names
        return False

    # ------------------------------------------------------------------
    # Convenience walkers
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def calls(self) -> Iterator[ast.Call]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    def scopes(self) -> Iterator[Tuple[ast.AST, ast.AST]]:
        """(scope_node, parent) for module + every function/lambda body."""
        yield self.tree, self.tree
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, self.tree
