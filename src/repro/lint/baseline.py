"""Committed-baseline support: pre-existing findings don't fail CI.

A baseline entry identifies a finding by a *content fingerprint* —
``sha1(code ‖ path ‖ stripped-source-line ‖ occurrence-index)`` — not
by line number, so unrelated edits above a baselined finding don't
invalidate it. The occurrence index disambiguates identical lines in
the same file (the Nth identical (code, line-text) pair keeps masking
the Nth occurrence).

Workflow:

* ``python -m repro.lint`` — findings not in the baseline fail (exit 1),
* ``python -m repro.lint --update-baseline`` — rewrite the baseline to
  the current finding set (review the diff!),
* CI commits the baseline file, so only *new* findings break a build.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Finding

__all__ = ["Baseline", "fingerprint_findings", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "baseline.json"
_FORMAT_VERSION = 1


def _fingerprint(code: str, path: str, snippet: str, occurrence: int) -> str:
    payload = f"{code}\x00{path}\x00{snippet}\x00{occurrence}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:20]


def fingerprint_findings(findings: Iterable[Finding]) -> List[Tuple[str, Finding]]:
    """Stable (fingerprint, finding) pairs, occurrence-indexed."""
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[str, Finding]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = (finding.code, finding.path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append((_fingerprint(*key, occurrence), finding))
    return out


class Baseline:
    """The committed set of masked fingerprints."""

    def __init__(self, entries: Dict[str, Dict[str, object]]):
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls.empty()
        with open(path) as handle:
            data = json.load(handle)
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}")
        return cls(dict(data.get("findings", {})))

    def save(self, path: str) -> None:
        data = {
            "version": _FORMAT_VERSION,
            "findings": {fp: self.entries[fp] for fp in sorted(self.entries)},
        }
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      previous: Optional["Baseline"] = None) -> "Baseline":
        """Build from current findings; ``previous`` carries reasons over.

        Every entry has a ``reason`` field documenting *why* the finding
        is tolerated. On ``--update-baseline`` the reasons of persisting
        fingerprints survive from the committed file; genuinely new
        entries get a ``TODO`` placeholder the CLI warns about.
        """
        entries: Dict[str, Dict[str, object]] = {}
        for fingerprint, finding in fingerprint_findings(findings):
            reason = "TODO: justify or fix"
            if previous is not None and fingerprint in previous.entries:
                reason = str(previous.entries[fingerprint].get(
                    "reason", reason))
            entries[fingerprint] = {
                "code": finding.code,
                "path": finding.path,
                "snippet": finding.snippet,
                "message": finding.message,
                "reason": reason,
            }
        return cls(entries)

    def split(self, findings: Iterable[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """(new, masked) — masked findings matched a baseline entry."""
        new: List[Finding] = []
        masked: List[Finding] = []
        for fingerprint, finding in fingerprint_findings(findings):
            (masked if fingerprint in self.entries else new).append(finding)
        return new, masked

    def stale_fingerprints(self, findings: Iterable[Finding]) -> List[str]:
        """Entries whose fingerprint matches no current finding.

        A stale entry is dead weight that would silently re-mask a
        future regression landing on the same line text; CI fails while
        any exist (fix: ``lint --prune-baseline``).
        """
        live = {fp for fp, _ in fingerprint_findings(findings)}
        return sorted(fp for fp in self.entries if fp not in live)

    def prune(self, findings: Iterable[Finding]) -> List[str]:
        """Drop stale entries in place; returns the dropped fingerprints."""
        stale = self.stale_fingerprints(findings)
        for fp in stale:
            del self.entries[fp]
        return stale

    def reasonless_fingerprints(self) -> List[str]:
        """Entries lacking a real reason (missing or TODO placeholder)."""
        out: List[str] = []
        for fp in sorted(self.entries):
            reason = str(self.entries[fp].get("reason", "")).strip()
            if not reason or reason.upper().startswith("TODO"):
                out.append(fp)
        return out
