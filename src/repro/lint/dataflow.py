"""Transitive dataflow analyses on top of the cross-module call graph.

Four rule families run over the whole :class:`~repro.lint.callgraph.\
Program` rather than one module at a time:

=========  ===========================================================
FLOW001    Wall-clock taint. DET001 catches a ``time.time()`` *inside*
           the scanned simulation directories; FLOW001 follows call
           chains out of them — a sim-scope function calling a helper
           (in any module) that transitively reaches a wall-clock read
           is flagged at the scope-exit call site, with the chain in
           the message. It also tracks wall-clock *values*: an
           expression derived from a wall-clock read (directly or via
           a function whose return value is tainted) assigned to a
           sim-time field (``*_ns``/``*_us``/``*_ms``) or passed into
           fingerprint/coverage sinks is flagged wherever it lands.
FLOW002    RNG provenance. Every stream must descend from the seeded
           root: constructing ``random.Random``/``SystemRandom``
           outside ``sim/rng.py`` is an orphan stream; ``.seed()``/
           ``.setstate()`` on an RNG inside a worker-reachable path
           reseeds mid-campaign; a ``SimRandom`` built from a literal
           (or no) seed forks a stream that ignores the run config.
RACE001    Spawn-safety races. Module-level mutable state written on
           any call path reachable from a ``ParallelRunner`` task
           function diverges between pool workers and the in-process
           fallback; coverage/telemetry ``merge*()`` calls outside the
           declared single merge points break the "merge once, in
           deterministic order" contract that keeps campaign maps
           byte-identical across worker counts.
UNIT001    Dimension checking from the naming convention. ``*_ns``,
           ``*_us``, ``*_bytes``, ``*_gbps``, ``*_pps`` names carry
           their unit; adding/comparing/assigning across different
           units (``delay_ns + gap_us``) or passing a ``*_us`` value
           to a ``*_ns`` parameter across a module boundary is flagged.
           Multiplication/division launder units (conversions look
           like ``x_us * 1000``), so only additive/comparative mixes
           and direct assignments are checked.
=========  ===========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import Program
from .context import ModuleContext, dotted_name
from .findings import FileStats, Finding, Severity
from .rules import (_WALL_CLOCK, ProgramRule, Rule, all_rules,
                    in_det001_scope, register)

__all__ = ["run_program_rules", "worker_root_qnames"]


def run_program_rules(program: Program,
                      select: Optional[Set[str]] = None,
                      stats: Optional[FileStats] = None) -> List[Finding]:
    """Run every registered whole-program rule; suppressions applied."""
    findings: List[Finding] = []
    for rule in all_rules():
        if not isinstance(rule, ProgramRule):
            continue
        if select and rule.code not in select:
            continue
        for finding in rule.check_program(program):
            ctx = program.contexts.get(finding.path)
            if ctx is not None and ctx.skip_file:
                continue
            if ctx is not None and ctx.is_suppressed(finding.code,
                                                     finding.line):
                if stats is not None:
                    stats.suppressed += 1
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


# ======================================================================
# Shared helpers
# ======================================================================
def _is_telemetry_path(path: str) -> bool:
    return "telemetry" in path.split("/")[:-1]


def _leaf(qname: str) -> str:
    return qname.rsplit(".", 1)[-1]


def worker_root_qnames(program: Program) -> Set[str]:
    """Functions that execute inside pool workers.

    * every callable handed to a ``ParallelRunner`` as its task
      function, resolved through the call graph,
    * every module-level function of an ``exec.tasks`` module (the
      canonical task catalogue), and
    * the worker-side shim itself (``exec.worker``'s ``invoke`` /
      ``init_worker``).
    """
    roots: Set[str] = set()
    for mod_name in sorted(program.modules):
        if mod_name.endswith(".exec.tasks") or \
                mod_name.endswith(".exec.worker"):
            for qname in sorted(program.functions):
                info = program.functions[qname]
                if info.module == mod_name and info.class_qname is None \
                        and "." not in qname[len(mod_name) + 1:]:
                    roots.add(qname)
    for caller in sorted(program.calls_by_fn):
        for call, candidates in program.calls_by_fn[caller]:
            is_runner_ctor = any(
                (".ParallelRunner." in c and _leaf(c) == "__init__")
                or _leaf(c) == "ParallelRunner"
                for c, _ext in candidates)
            if not is_runner_ctor:
                continue
            task_expr: Optional[ast.AST] = call.args[0] if call.args else None
            for kw in call.keywords:
                if kw.arg == "task_fn":
                    task_expr = kw.value
            if task_expr is None:
                continue
            resolved = _resolve_function_ref(program, call, caller, task_expr)
            if resolved is not None:
                roots.add(resolved)
    return roots


def _resolve_function_ref(program: Program, call: ast.Call, caller: str,
                          expr: ast.AST) -> Optional[str]:
    """Resolve a function *reference* (not a call) to a program qname."""
    info = program.functions.get(caller)
    ctx: Optional[ModuleContext] = None
    if info is not None:
        ctx = program.contexts.get(info.path)
    else:
        # module pseudo-scope: caller is "<mod>.<module>"
        ctx = program.modules.get(caller.rsplit(".", 1)[0])
    if ctx is None:
        return None
    dotted = ctx.resolve(expr)
    if dotted is None:
        return None
    if dotted in program.functions:
        return dotted
    mod = caller.split(".<module>")[0] if caller.endswith(".<module>") else \
        (info.module if info is not None else None)
    if mod is not None and f"{mod}.{dotted}" in program.functions:
        return f"{mod}.{dotted}"
    return None


# ======================================================================
# FLOW001 — transitive wall-clock taint
# ======================================================================
@register
class WallClockFlowRule(ProgramRule):
    code = "FLOW001"
    name = "wall-clock-taint"
    severity = Severity.ERROR
    description = ("call chain from simulation code reaches a wall-clock "
                   "read outside the scanned dirs, or a wall-clock-derived "
                   "value lands in a sim-time field / fingerprint / "
                   "coverage sink")

    #: internal callees whose arguments must never be wall-derived
    _SINK_CALL_MARKERS = ("fingerprint", "canonical_json")
    _TIME_SUFFIXES = ("_ns", "_us", "_ms")

    def check_program(self, program: Program) -> Iterator[Finding]:
        wall_callers = self._wall_callers(program)
        tainted_fns = program.functions_reaching(wall_callers)
        yield from self._check_scope_exits(program, wall_callers,
                                           tainted_fns)
        returns_wall = self._returns_wall(program)
        yield from self._check_value_sinks(program, returns_wall)

    # -- direct sources ------------------------------------------------
    def _sanctioned_source(self, path: str, callee: str) -> bool:
        if _is_telemetry_path(path):
            return True  # wall deltas annotate, never schedule
        if path.endswith("sim/engine.py") and \
                callee == "time.perf_counter_ns":
            return True  # the probe's sanctioned timing site
        return False

    def _wall_callers(self, program: Program) -> Set[str]:
        callers: Set[str] = set()
        for qname in sorted(program.calls_by_fn):
            info = program.functions.get(qname)
            path = info.path if info else qname  # pseudo-scopes skipped below
            if info is None:
                continue
            for _call, candidates in program.calls_by_fn[qname]:
                for callee, external in candidates:
                    if external and callee in _WALL_CLOCK and \
                            not self._sanctioned_source(path, callee):
                        callers.add(qname)
        return callers

    def _check_scope_exits(self, program: Program, wall_callers: Set[str],
                           tainted_fns: Set[str]) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, str]] = set()
        for edge in program.iter_edges():
            if edge.external:
                continue
            caller_info = program.functions.get(edge.caller)
            callee_info = program.functions.get(edge.callee)
            if caller_info is None or callee_info is None:
                continue
            if not in_det001_scope(caller_info.path):
                continue
            if in_det001_scope(callee_info.path):
                continue  # DET001 flags the eventual read at its own site
            if _is_telemetry_path(callee_info.path):
                continue  # sanctioned annotation-only wall usage
            if edge.callee not in tainted_fns:
                continue
            key = (edge.path, edge.lineno, edge.callee)
            if key in seen:
                continue
            seen.add(key)
            chain = self._chain_to_source(program, edge.callee, wall_callers)
            ctx = program.contexts[edge.path]
            yield Finding(
                code=self.code, severity=self.severity, path=edge.path,
                line=edge.lineno, col=edge.col,
                message=(f"call into {edge.callee}() transitively reaches "
                         f"a wall-clock read outside the DET001-scanned "
                         f"dirs ({' -> '.join(chain)}); sim behaviour must "
                         f"not depend on host speed — plumb sim time "
                         f"(Simulator.now) through instead"),
                snippet=ctx.line_text(edge.lineno))

    @staticmethod
    def _chain_to_source(program: Program, start: str,
                         wall_callers: Set[str]) -> List[str]:
        for target in sorted(wall_callers):
            chain = program.call_chain(start, target)
            if chain:
                return chain + ["<wall-clock>"]
        return [start, "<wall-clock>"]

    # -- value taint ---------------------------------------------------
    def _returns_wall(self, program: Program) -> Set[str]:
        """Functions whose return value derives from a wall-clock read."""
        tainted: Set[str] = set()
        resolutions = self._call_resolution_index(program)
        changed = True
        while changed:
            changed = False
            for qname in sorted(program.calls_by_fn):
                if qname in tainted:
                    continue
                info = program.functions.get(qname)
                if info is None or _is_telemetry_path(info.path):
                    continue
                for node in Program._iter_own_statements(info.node):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    if self._expr_tainted(node.value, resolutions, tainted):
                        tainted.add(qname)
                        changed = True
                        break
        return tainted

    @staticmethod
    def _call_resolution_index(program: Program
                               ) -> Dict[int, List[Tuple[str, bool]]]:
        index: Dict[int, List[Tuple[str, bool]]] = {}
        for qname in program.calls_by_fn:
            for call, candidates in program.calls_by_fn[qname]:
                index[id(call)] = candidates
        return index

    def _expr_tainted(self, expr: ast.AST,
                      resolutions: Dict[int, List[Tuple[str, bool]]],
                      returns_wall: Set[str]) -> bool:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            for callee, external in resolutions.get(id(node), []):
                if external and callee in _WALL_CLOCK:
                    return True
                if not external and callee in returns_wall:
                    return True
        return False

    def _check_value_sinks(self, program: Program,
                           returns_wall: Set[str]) -> Iterator[Finding]:
        resolutions = self._call_resolution_index(program)
        for qname in sorted(program.calls_by_fn):
            info = program.functions.get(qname)
            if qname.endswith(".<module>"):
                mod = qname[:-len(".<module>")]
                ctx = program.modules.get(mod)
                scope: Optional[ast.AST] = ctx.tree if ctx else None
                path = ctx.path if ctx else None
            elif info is not None:
                ctx = program.contexts.get(info.path)
                scope, path = info.node, info.path
            else:
                continue
            if ctx is None or scope is None or _is_telemetry_path(path):
                continue
            for node in Program._iter_own_statements(scope):
                yield from self._check_stmt_sink(ctx, node, resolutions,
                                                 returns_wall)
                if isinstance(node, ast.Call):
                    yield from self._check_call_sink(ctx, node, resolutions,
                                                     returns_wall)

    def _time_named(self, target: ast.AST) -> Optional[str]:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return None
        if name.lstrip("_").startswith("wall"):
            return None  # honestly-labelled wall-clock annotations
        if any(name.endswith(s) for s in self._TIME_SUFFIXES):
            return name
        return None

    def _check_stmt_sink(self, ctx: ModuleContext, node: ast.AST,
                         resolutions, returns_wall) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else \
                [node.target]
            value = node.value
            if value is None:
                return
            for target in targets:
                name = self._time_named(target)
                if name is None:
                    continue
                if self._expr_tainted(value, resolutions, returns_wall):
                    yield Finding(
                        code=self.code, severity=self.severity,
                        path=ctx.path, line=node.lineno,
                        col=node.col_offset,
                        message=(f"sim-time field {name!r} assigned a "
                                 f"wall-clock-derived value; sim timestamps "
                                 f"come from the engine clock, never the "
                                 f"host's"),
                        snippet=ctx.line_text(node.lineno))

    def _check_call_sink(self, ctx: ModuleContext, call: ast.Call,
                         resolutions, returns_wall) -> Iterator[Finding]:
        sink = None
        for callee, external in resolutions.get(id(call), []):
            if external:
                continue
            leaf = _leaf(callee)
            if any(marker in leaf for marker in self._SINK_CALL_MARKERS):
                sink = callee
        if sink is None:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if self._expr_tainted(arg, resolutions, returns_wall):
                yield Finding(
                    code=self.code, severity=self.severity,
                    path=ctx.path, line=call.lineno, col=call.col_offset,
                    message=(f"wall-clock-derived value flows into "
                             f"{sink}(); fingerprints and canonical "
                             f"documents must be byte-identical across "
                             f"runs"),
                    snippet=ctx.line_text(call.lineno))
                return


# ======================================================================
# FLOW002 — RNG provenance
# ======================================================================
@register
class RngProvenanceRule(ProgramRule):
    code = "FLOW002"
    name = "rng-provenance"
    severity = Severity.ERROR
    description = ("RNG stream not derived from the seeded root: orphan "
                   "random.Random construction, reseeding in a "
                   "worker-reachable path, or a literal-seeded SimRandom "
                   "fork")

    _ORPHAN_CLASSES = {"random.Random", "random.SystemRandom",
                       "numpy.random.RandomState"}
    _RESEEDERS = {"seed", "setstate"}

    def check_program(self, program: Program) -> Iterator[Finding]:
        worker_reach = program.reachable_from(worker_root_qnames(program))
        for qname in sorted(program.calls_by_fn):
            info = program.functions.get(qname)
            path = self._scope_path(program, qname)
            if path is None:
                continue
            ctx = program.contexts[path]
            for call, candidates in program.calls_by_fn[qname]:
                yield from self._check_orphan(ctx, path, call, candidates)
                yield from self._check_simrandom_fork(ctx, path, call,
                                                      candidates)
                if qname in worker_reach and info is not None:
                    yield from self._check_reseed(program, ctx, info, call)

    @staticmethod
    def _scope_path(program: Program, qname: str) -> Optional[str]:
        info = program.functions.get(qname)
        if info is not None:
            return info.path
        if qname.endswith(".<module>"):
            mod = program.modules.get(qname[:-len(".<module>")])
            return mod.path if mod is not None else None
        return None

    def _check_orphan(self, ctx: ModuleContext, path: str, call: ast.Call,
                      candidates) -> Iterator[Finding]:
        if path.endswith("sim/rng.py"):
            return
        for callee, external in candidates:
            if external and callee in self._ORPHAN_CLASSES:
                yield Finding(
                    code=self.code, severity=self.severity, path=path,
                    line=call.lineno, col=call.col_offset,
                    message=(f"{callee}() constructs an RNG stream with no "
                             f"provenance from the run seed; derive one "
                             f"from the seeded root via "
                             f"repro.sim.rng.SimRandom.child() instead"),
                    snippet=ctx.line_text(call.lineno))
                return

    def _check_simrandom_fork(self, ctx: ModuleContext, path: str,
                              call: ast.Call, candidates
                              ) -> Iterator[Finding]:
        if path.endswith("sim/rng.py"):
            return
        is_simrandom = any(
            not external and (".SimRandom.__init__" in callee
                              or callee.endswith(".SimRandom"))
            for callee, external in candidates)
        if not is_simrandom:
            return
        seed_expr: Optional[ast.AST] = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "seed":
                seed_expr = kw.value
        if seed_expr is None:
            yield Finding(
                code=self.code, severity=self.severity, path=path,
                line=call.lineno, col=call.col_offset,
                message=("SimRandom constructed without a seed; every "
                         "stream must descend from the run config's seed"),
                snippet=ctx.line_text(call.lineno))
        elif isinstance(seed_expr, ast.Constant):
            yield Finding(
                code=self.code, severity=self.severity, path=path,
                line=call.lineno, col=call.col_offset,
                message=(f"SimRandom seeded with the literal "
                         f"{seed_expr.value!r} forks a stream that ignores "
                         f"the run seed; pass the config seed through, or "
                         f"derive a child stream via .child(namespace)"),
                snippet=ctx.line_text(call.lineno))

    def _check_reseed(self, program: Program, ctx: ModuleContext,
                      info, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in self._RESEEDERS):
            return
        receiver = func.value
        rname = (dotted_name(receiver) or "").lower()
        looks_rng = "rng" in rname or "random" in rname
        if not looks_rng:
            # Inferred receiver type: any program class named *Random*.
            for callee, external in self._candidates_for(program, info,
                                                         call):
                if not external and "random" in callee.lower():
                    looks_rng = True
        if not looks_rng:
            return
        yield Finding(
            code=self.code, severity=self.severity, path=info.path,
            line=call.lineno, col=call.col_offset,
            message=(f".{func.attr}() reseeds an RNG stream on a "
                     f"worker-reachable path; mid-campaign reseeding makes "
                     f"results depend on task scheduling — streams are "
                     f"seeded once at the root and advanced only by "
                     f"drawing"),
            snippet=ctx.line_text(call.lineno))

    @staticmethod
    def _candidates_for(program: Program, info, call: ast.Call):
        for node, candidates in program.calls_by_fn.get(info.qname, []):
            if node is call:
                return candidates
        return []


# ======================================================================
# RACE001 — spawn-safety race detection
# ======================================================================
@register
class SpawnRaceRule(ProgramRule):
    code = "RACE001"
    name = "worker-path-race"
    severity = Severity.ERROR
    description = ("module-level mutable state written on a path "
                   "reachable from a ParallelRunner task fn, or a "
                   "coverage/telemetry merge outside the declared merge "
                   "points")

    _MUTATORS = {"append", "add", "update", "setdefault", "pop", "clear",
                 "extend", "remove", "insert", "discard", "popitem",
                 "appendleft"}
    _MERGE_METHODS = {"merge", "merge_snapshot", "merge_map"}
    #: The declared single merge points (qname suffixes): the runner's
    #: task-order registry fold, the orchestrator/suite/fuzzer coverage
    #: folds. Everything else merging observability state is a second
    #: merge path waiting to double-count.
    _MERGE_POINTS = (
        "exec.runner.ParallelRunner.map",
        "core.orchestrator.run_test",
        "core.orchestrator.run_tests",
        "core.suite.run_conformance_suite",
        "core.fuzz.fuzzer.LuminaFuzzer._score_batch",
        "core.fuzz.fuzzer.LuminaFuzzer.run",
        "core.sweep.run_sweep",
    )
    _MERGE_RECEIVER_HINTS = ("coverage", "telemetry", "registry")
    _MERGE_RECEIVER_NAMES = {"cov", "session", "registry", "total", "tel"}

    def check_program(self, program: Program) -> Iterator[Finding]:
        reach = program.reachable_from(worker_root_qnames(program))
        globals_by_module = self._module_globals(program)
        for qname in sorted(program.functions):
            info = program.functions[qname]
            ctx = program.contexts[info.path]
            if qname in reach:
                mutables, bindings = globals_by_module.get(
                    info.module, (set(), set()))
                yield from self._check_global_writes(ctx, info, mutables,
                                                     bindings)
            yield from self._check_merge_discipline(program, ctx, info)

    # -- module-global writes ------------------------------------------
    @staticmethod
    def _module_globals(program: Program
                        ) -> Dict[str, Tuple[Set[str], Set[str]]]:
        out: Dict[str, Tuple[Set[str], Set[str]]] = {}
        for mod_name in sorted(program.modules):
            ctx = program.modules[mod_name]
            mutables: Set[str] = set()
            bindings: Set[str] = set()
            for node in ast.iter_child_nodes(ctx.tree):
                targets: List[ast.AST] = []
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__all__":
                        continue
                    bindings.add(target.id)
                    if value is not None and _is_mutable_ctor(value):
                        mutables.add(target.id)
            out[mod_name] = (mutables, bindings)
        return out

    def _check_global_writes(self, ctx: ModuleContext, info,
                             mutables: Set[str],
                             bindings: Set[str]) -> Iterator[Finding]:
        # Pass 1: names that are locals of this function (params, plain
        # assignments, loop/with targets) shadow module globals; a
        # ``global`` declaration un-shadows.
        declared_global: Set[str] = set()
        local_names: Set[str] = set(info.params)
        body_nodes = list(Program._iter_own_statements(info.node))
        for node in body_nodes:
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name) and \
                                isinstance(leaf.ctx, ast.Store):
                            local_names.add(leaf.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(node.target):
                    if isinstance(leaf, ast.Name):
                        local_names.add(leaf.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        local_names.add(item.optional_vars.id)
        local_names -= declared_global
        # Pass 2: judge the writes.
        for node in body_nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id in declared_global and \
                            target.id in bindings:
                        yield self._global_finding(ctx, node, target.id,
                                                   "rebound")
                    elif isinstance(target, ast.Subscript):
                        yield from self._subscript_write(
                            ctx, node, target, mutables, local_names)
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and \
                        target.id in declared_global and target.id in bindings:
                    yield self._global_finding(ctx, node, target.id,
                                               "rebound")
                elif isinstance(target, ast.Subscript):
                    yield from self._subscript_write(ctx, node, target,
                                                     mutables, local_names)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._MUTATORS and \
                    isinstance(node.func.value, ast.Name):
                name = node.func.value.id
                if name in mutables and name not in local_names:
                    yield self._global_finding(ctx, node, name, "mutated")

    def _subscript_write(self, ctx: ModuleContext, node: ast.AST,
                         target: ast.Subscript, mutables: Set[str],
                         local_names: Set[str]) -> Iterator[Finding]:
        base = target.value
        if isinstance(base, ast.Name) and base.id in mutables and \
                base.id not in local_names:
            yield self._global_finding(ctx, node, base.id, "mutated")

    def _global_finding(self, ctx: ModuleContext, node: ast.AST,
                        name: str, verb: str) -> Finding:
        return Finding(
            code=self.code, severity=self.severity, path=ctx.path,
            line=node.lineno, col=node.col_offset,
            message=(f"module-level state {name!r} {verb} on a "
                     f"worker-reachable path; each spawn worker gets its "
                     f"own copy, so results diverge between pool and "
                     f"in-process execution — pass state through the task "
                     f"payload or return value instead"),
            snippet=ctx.line_text(node.lineno))

    # -- merge discipline ----------------------------------------------
    def _check_merge_discipline(self, program: Program, ctx: ModuleContext,
                                info) -> Iterator[Finding]:
        parts = info.path.split("/")[:-1]
        if "coverage" in parts or "telemetry" in parts:
            return  # the merge implementations themselves
        if any(info.qname.endswith(point) for point in self._MERGE_POINTS):
            return
        for node in Program._iter_own_statements(info.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._MERGE_METHODS):
                continue
            if not self._receiver_is_observability(ctx, node.func.value):
                continue
            yield Finding(
                code=self.code, severity=self.severity, path=ctx.path,
                line=node.lineno, col=node.col_offset,
                message=(f".{node.func.attr}() outside the declared merge "
                         f"points ({', '.join(self._MERGE_POINTS)}); a "
                         f"second merge path double-counts or reorders "
                         f"observability state and breaks workers-parity"),
                snippet=ctx.line_text(node.lineno))

    def _receiver_is_observability(self, ctx: ModuleContext,
                                   receiver: ast.AST) -> bool:
        resolved = (ctx.resolve(receiver) or "").lower()
        if any(h in resolved for h in self._MERGE_RECEIVER_HINTS):
            return True
        if isinstance(receiver, ast.Name) and \
                receiver.id in self._MERGE_RECEIVER_NAMES:
            return True
        if isinstance(receiver, ast.Attribute):
            leaf = receiver.attr.lstrip("_").lower()
            return leaf in self._MERGE_RECEIVER_NAMES or \
                any(h in leaf for h in self._MERGE_RECEIVER_HINTS)
        return False


def _is_mutable_ctor(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in {"dict", "list", "set", "defaultdict",
                                 "deque", "OrderedDict", "Counter"}
    return False


# ======================================================================
# UNIT001 — dimension checking from the naming convention
# ======================================================================
#: suffix token → (dimension, scale relative to the dimension's base)
_UNITS: Dict[str, Tuple[str, int]] = {
    "ns": ("time", 1), "us": ("time", 10**3), "ms": ("time", 10**6),
    "s": ("time", 10**9),
    "bytes": ("size", 1), "kb": ("size", 2**10), "mb": ("size", 2**20),
    "gb": ("size", 2**30),
    "bps": ("bitrate", 1), "kbps": ("bitrate", 10**3),
    "mbps": ("bitrate", 10**6), "gbps": ("bitrate", 10**9),
    "pps": ("pktrate", 1),
}

_UNIT_PASSTHROUGH = {"min", "max", "abs", "sum", "round", "int", "float",
                     "sorted"}


def _unit_of_name(name: Optional[str]) -> Optional[str]:
    """``delay_ns`` → ``ns``; None when the name carries no unit."""
    if not name or "_" not in name:
        return None
    token = name.rsplit("_", 1)[-1].lower()
    return token if token in _UNITS else None


@register
class UnitConsistencyRule(ProgramRule):
    code = "UNIT001"
    name = "mixed-units"
    severity = Severity.WARNING
    description = ("arithmetic/comparison/assignment or call argument "
                   "mixing differently-united names (*_ns vs *_us, "
                   "*_bytes vs *_gbps); convert explicitly first")

    def check_program(self, program: Program) -> Iterator[Finding]:
        resolutions = {}
        for qname in program.calls_by_fn:
            for call, candidates in program.calls_by_fn[qname]:
                resolutions[id(call)] = candidates
        for path in sorted(program.contexts):
            ctx = program.contexts[path]
            yield from self._check_module(program, ctx, resolutions)

    # -- unit inference ------------------------------------------------
    def _expr_unit(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return _unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return _unit_of_name(node.attr)
        if isinstance(node, ast.Subscript):
            return self._expr_unit(node.value)
        if isinstance(node, ast.UnaryOp):
            return self._expr_unit(node.operand)
        if isinstance(node, ast.IfExp):
            a, b = self._expr_unit(node.body), self._expr_unit(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.BoolOp):
            units = {self._expr_unit(v) for v in node.values
                     if not isinstance(v, ast.Constant)}
            units.discard(None)
            return units.pop() if len(units) == 1 else None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                a = self._expr_unit(node.left)
                b = self._expr_unit(node.right)
                return a if a == b else None
            return None  # * and / convert between units
        if isinstance(node, ast.Call):
            func = node.func
            fname = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if fname in _UNIT_PASSTHROUGH:
                units = {self._expr_unit(a) for a in node.args
                         if not isinstance(a, ast.Constant)}
                units.discard(None)
                return units.pop() if len(units) == 1 else None
            return _unit_of_name(fname)
        return None

    @staticmethod
    def _describe(a: str, b: str) -> str:
        dim_a, dim_b = _UNITS[a][0], _UNITS[b][0]
        if dim_a != dim_b:
            return f"different dimensions ({dim_a} vs {dim_b})"
        return f"different scales ({a} vs {b})"

    def _mismatch(self, a: Optional[str], b: Optional[str]) -> bool:
        return a is not None and b is not None and a != b

    def _finding(self, ctx: ModuleContext, node: ast.AST, what: str,
                 a: str, b: str) -> Finding:
        return Finding(
            code=self.code, severity=self.severity, path=ctx.path,
            line=node.lineno, col=node.col_offset,
            message=(f"{what} mixes *_{a} with *_{b} — "
                     f"{self._describe(a, b)}; convert explicitly "
                     f"(e.g. x_{b} * <factor>) before combining"),
            snippet=ctx.line_text(node.lineno))

    # -- the checks ----------------------------------------------------
    def _check_module(self, program: Program, ctx: ModuleContext,
                      resolutions) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and \
                    isinstance(node.op, (ast.Add, ast.Sub)):
                a = self._expr_unit(node.left)
                b = self._expr_unit(node.right)
                if self._mismatch(a, b):
                    yield self._finding(ctx, node, "arithmetic", a, b)
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                ops = node.ops
                for i, op in enumerate(ops):
                    if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt,
                                           ast.GtE, ast.Eq, ast.NotEq)):
                        continue
                    a = self._expr_unit(operands[i])
                    b = self._expr_unit(operands[i + 1])
                    if self._mismatch(a, b):
                        yield self._finding(ctx, node, "comparison", a, b)
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, (ast.Add, ast.Sub)):
                a = self._expr_unit(node.target)
                b = self._expr_unit(node.value)
                if self._mismatch(a, b):
                    yield self._finding(ctx, node, "arithmetic", a, b)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                b = self._expr_unit(value)
                if b is None:
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    a = self._expr_unit(target) if not isinstance(
                        target, ast.Subscript) else None
                    if self._mismatch(a, b):
                        yield self._finding(ctx, node, "assignment", a, b)
            elif isinstance(node, ast.Call):
                yield from self._check_call_args(program, ctx, node,
                                                 resolutions)

    def _check_call_args(self, program: Program, ctx: ModuleContext,
                         call: ast.Call, resolutions) -> Iterator[Finding]:
        info = None
        for callee, external in resolutions.get(id(call), []):
            if not external and callee in program.functions:
                info = program.functions[callee]
                break
        if info is None:
            return
        for index, arg in enumerate(call.args):
            if index >= len(info.params):
                break
            param_unit = _unit_of_name(info.params[index])
            arg_unit = self._expr_unit(arg)
            if self._mismatch(param_unit, arg_unit):
                yield self._finding(
                    ctx, call,
                    f"argument {index + 1} of {info.qname}() "
                    f"(parameter {info.params[index]!r})",
                    param_unit, arg_unit)
        for kw in call.keywords:
            if kw.arg is None or kw.arg not in info.params:
                continue
            param_unit = _unit_of_name(kw.arg)
            arg_unit = self._expr_unit(kw.value)
            if self._mismatch(param_unit, arg_unit):
                yield self._finding(
                    ctx, call,
                    f"keyword {kw.arg!r} of {info.qname}()",
                    param_unit, arg_unit)
