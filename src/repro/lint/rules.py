"""The rule registry and the shipped determinism/spawn-safety rules.

Each rule maps one *invariant* of the testbed onto a syntactic hazard:

========  ==========================================================
DET001    No wall-clock reads inside simulation code. Sim time is the
          engine's integer nanosecond clock; a ``time.time()`` in
          ``sim/``, ``switch/``, ``rdma/`` or ``core/`` makes behaviour
          depend on host speed. (Telemetry's wall-clock *deltas* are
          sanctioned via a scoped allowlist — they only ever annotate,
          never schedule.)
DET002    No global-RNG use outside ``sim/rng.py``. Every stochastic
          element must draw from a seed-derived :class:`SimRandom`
          stream, or two runs of the same config diverge.
DET003    No ordering-sensitive iteration over sets. With string hash
          randomisation, ``for x in some_set`` enumerates in a
          different order every interpreter run — fatal when the loop
          feeds event scheduling or report assembly. Wrap in
          ``sorted(...)`` or prove order-insensitivity (a set
          comprehension target is exempt).
DET004    No ordering by object identity: ``sorted(..., key=id)`` (or
          ``hash``) changes between runs because addresses do.
EXEC001   Only module-level callables cross the process-pool boundary.
          Spawned workers pickle functions *by reference*; lambdas,
          closures and bound methods either fail to pickle or drag
          unpicklable state along.
TEL001    Telemetry handles are constructed once (module scope or
          ``__init__``), not per loop iteration — registry lookups in a
          hot loop are exactly the overhead the no-op-twin design
          exists to avoid.
API001    Engine-owned state (``Simulator._now``, ``_queue``, ...) is
          mutated only by the engine itself; outside code goes through
          ``schedule``/``cancel``/``reset`` or a registered process
          callback, or event accounting breaks silently.
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .context import ModuleContext, dotted_name
from .findings import Finding, Severity

__all__ = ["Rule", "ProgramRule", "RULES", "register", "all_rules",
           "get_rule", "run_rules", "in_det001_scope"]


class Rule:
    """Base class: subclass, set the class attrs, implement ``check``."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # Helper: build a finding at a node, already severity/code-stamped.
    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(code=self.code, severity=self.severity,
                       path=ctx.path, line=line, col=col,
                       message=message, snippet=ctx.line_text(line))


class ProgramRule(Rule):
    """A whole-program rule: runs once over the cross-module call graph.

    Program rules live in the same registry (same codes, baseline,
    suppressions, ``--select``) but are skipped by the per-module
    :func:`run_rules` pass; :func:`repro.lint.dataflow.run_program_rules`
    drives them with a :class:`~repro.lint.callgraph.Program` instead.
    """

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program) -> Iterator[Finding]:
        raise NotImplementedError


RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and add to the registry."""
    rule = cls()
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    return [RULES[code] for code in sorted(RULES)]


def get_rule(code: str) -> Rule:
    return RULES[code.upper()]


def run_rules(ctx: ModuleContext,
              select: Optional[Set[str]] = None,
              stats=None) -> List[Finding]:
    """Run every (selected) rule over one module; suppressions applied.

    ``stats`` (a :class:`~repro.lint.findings.FileStats`) receives the
    count of findings removed by inline ``# repro-lint: ignore``
    comments.
    """
    findings: List[Finding] = []
    if ctx.skip_file:
        return findings
    for rule in all_rules():
        if select and rule.code not in select:
            continue
        if isinstance(rule, ProgramRule):
            continue  # driven by dataflow.run_program_rules instead
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.code, finding.line):
                if stats is not None:
                    stats.suppressed += 1
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def _in_dir(path: str, *dirs: str) -> bool:
    parts = path.split("/")
    return any(d in parts[:-1] for d in dirs)


def _path_endswith(path: str, suffix: str) -> bool:
    return path == suffix or path.endswith("/" + suffix)


# ======================================================================
# DET001 — wall-clock reads inside simulation code
# ======================================================================
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Sanctioned wall-clock sites: telemetry measures real execution cost
#: (wall deltas annotate the trace, they never feed back into the sim).
#: Keyed by path suffix; value is the set of allowed callees there.
_DET001_SCOPED_ALLOW = {
    "sim/engine.py": {"time.perf_counter_ns"},  # probe callback timing
}

#: Directories whose code runs (or feeds) the deterministic simulation.
_DET_SCOPE_DIRS = ("sim", "switch", "rdma", "core", "faults", "dumper",
                   "store", "coverage", "exec")
#: Single files in scope that live outside those directories.
_DET_SCOPE_FILES = ("api.py",)


def in_det001_scope(path: str) -> bool:
    """True if *path* is inside the determinism-checked part of the tree.

    Shared by the per-module DET001/DET002 pass and the transitive
    FLOW001 analysis so "simulation code" means the same thing in both.
    """
    if _in_dir(path, *_DET_SCOPE_DIRS):
        return True
    return any(_path_endswith(path, f) for f in _DET_SCOPE_FILES)


@register
class WallClockRule(Rule):
    code = "DET001"
    name = "wall-clock-in-sim"
    severity = Severity.ERROR
    description = ("wall-clock call inside simulation code "
                   "(sim/, switch/, rdma/, core/, faults/, dumper/, "
                   "store/, coverage/, exec/, api.py)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_det001_scope(ctx.path):
            return
        allowed: Set[str] = set()
        for suffix, callees in _DET001_SCOPED_ALLOW.items():
            if _path_endswith(ctx.path, suffix):
                allowed |= callees
        for call in ctx.calls():
            callee = ctx.resolve_call(call)
            if callee in _WALL_CLOCK and callee not in allowed:
                yield self.finding(
                    ctx, call,
                    f"wall-clock call {callee}() in simulation code; "
                    f"use the engine clock (Simulator.now) — behaviour "
                    f"must not depend on host speed")


# ======================================================================
# DET002 — unseeded global RNG
# ======================================================================
#: ``random.Random`` / ``SystemRandom`` construct *instances* (the
#: former is how SimRandom seeds itself) — everything else on the
#: module mutates or reads the hidden global stream.
_RANDOM_CLASSES = {"Random", "SystemRandom"}


@register
class GlobalRngRule(Rule):
    code = "DET002"
    name = "unseeded-global-rng"
    severity = Severity.ERROR
    description = ("global random.* / numpy.random.* use outside "
                   "sim/rng.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _path_endswith(ctx.path, "sim/rng.py"):
            return
        for call in ctx.calls():
            callee = ctx.resolve_call(call)
            if callee is None:
                continue
            hazard = None
            if callee.startswith("random."):
                attr = callee.split(".", 1)[1]
                if "." not in attr and attr not in _RANDOM_CLASSES:
                    hazard = callee
            elif callee.startswith("numpy.random."):
                attr = callee.rsplit(".", 1)[-1]
                # default_rng(seed) is the sanctioned construction; the
                # zero-arg form seeds from the OS and is flagged too.
                if attr != "default_rng" or not (call.args or call.keywords):
                    hazard = callee
            if hazard is None:
                continue
            yield self.finding(
                ctx, call,
                f"{hazard}() draws from the process-global RNG; derive a "
                f"stream from repro.sim.rng.SimRandom (seeded per run) "
                f"instead")


# ======================================================================
# DET003 — ordering-sensitive iteration over sets
# ======================================================================
class _SetScopeWalker(ast.NodeVisitor):
    """Collects set-typed names within one function/module scope.

    Does *not* descend into nested function scopes (they get their own
    walker) so a nested def's locals never leak outward.
    """

    def __init__(self, ctx: ModuleContext, scope: ast.AST):
        self.ctx = ctx
        self.scope = scope
        self.set_names: Set[str] = set()
        # Two passes: first learn names, then judge iterations — a set
        # assigned after the loop in source order is still a set.
        for node in self._iter_scope(scope):
            self._learn(node)

    def _iter_scope(self, scope: ast.AST) -> Iterator[ast.AST]:
        body = scope.body if hasattr(scope, "body") else []
        stack = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue  # new scope
            stack.extend(ast.iter_child_nodes(node))

    def _learn(self, node: ast.AST) -> None:
        ctx = self.ctx
        if isinstance(node, ast.Assign):
            if ctx.expr_is_set(node.value, self.set_names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.set_names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and (
                    ctx.annotation_is_set(node.annotation)
                    or (node.value is not None
                        and ctx.expr_is_set(node.value, self.set_names))):
                self.set_names.add(node.target.id)

    def learn_params(self) -> None:
        scope = self.scope
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        args = scope.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if self.ctx.annotation_is_set(arg.annotation):
                self.set_names.add(arg.arg)


@register
class SetIterationRule(Rule):
    code = "DET003"
    name = "unordered-set-iteration"
    severity = Severity.ERROR
    description = ("iteration over a set in an ordering-sensitive "
                   "position without sorted()")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope, _parent in ctx.scopes():
            walker = _SetScopeWalker(ctx, scope)
            walker.learn_params()
            for node in walker._iter_scope(scope):
                yield from self._check_node(ctx, node, walker.set_names)

    def _check_node(self, ctx: ModuleContext, node: ast.AST,
                    set_names: Set[str]) -> Iterator[Finding]:
        sites: List[ast.AST] = []
        if isinstance(node, ast.For):
            sites.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.DictComp,
                               ast.GeneratorExp)):
            # SetComp targets are order-free by construction.
            for gen in node.generators:
                sites.append(gen.iter)
        elif isinstance(node, ast.Call):
            callee = ctx.resolve_call(node)
            if callee in ("list", "tuple", "enumerate", "reversed") \
                    and node.args:
                sites.append(node.args[0])
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" and node.args:
                sites.append(node.args[0])
        for site in sites:
            target = site
            if not ctx.expr_is_set(target, set_names):
                continue
            yield self.finding(
                ctx, target,
                "iterating a set here is ordering-sensitive and set "
                "order varies across interpreter runs (hash "
                "randomisation); wrap the iterable in sorted(...)")


# ======================================================================
# DET004 — ordering by object identity
# ======================================================================
@register
class IdentityOrderRule(Rule):
    code = "DET004"
    name = "identity-ordering"
    severity = Severity.ERROR
    description = "sorted()/sort() keyed on id() or hash()"

    _SORTERS = {"sorted", "min", "max"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            callee = ctx.resolve_call(call)
            is_sorter = callee in self._SORTERS or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "sort")
            if not is_sorter:
                continue
            for kw in call.keywords:
                if kw.arg != "key":
                    continue
                if self._key_uses_identity(kw.value):
                    yield self.finding(
                        ctx, call,
                        "ordering by id()/hash() depends on object "
                        "addresses, which differ every run; key on a "
                        "stable field (name, seq, PSN) instead")
                    break

    @staticmethod
    def _key_uses_identity(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return True
        for node in ast.walk(key):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("id", "hash"):
                return True
        return False


# ======================================================================
# EXEC001 — spawn-unsafe callables crossing the pool boundary
# ======================================================================
@register
class SpawnSafetyRule(Rule):
    code = "EXEC001"
    name = "spawn-unsafe-callable"
    severity = Severity.ERROR
    description = ("lambda/closure/bound method handed to "
                   "ParallelRunner or a process pool")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested_defs = self._nested_function_names(ctx)
        for call in ctx.calls():
            candidate = self._pool_callable_arg(ctx, call)
            if candidate is None:
                continue
            problem = self._classify(ctx, candidate, nested_defs)
            if problem is None:
                continue
            # Anchor at the call: that's where the suppression comment
            # naturally lives and where the pool boundary is crossed.
            yield self.finding(
                ctx, call,
                f"{problem} cannot be pickled by reference into a "
                f"spawn-ed worker; pass a module-level function (see "
                f"repro.exec.tasks)")

    @staticmethod
    def _nested_function_names(ctx: ModuleContext) -> Set[str]:
        nested: Set[str] = set()
        for outer in ast.walk(ctx.tree):
            if not isinstance(outer, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    nested.add(inner.name)
        return nested

    def _pool_callable_arg(self, ctx: ModuleContext,
                           call: ast.Call) -> Optional[ast.AST]:
        """The expression being shipped to a pool, if this call ships one."""
        callee = ctx.resolve_call(call)
        if callee is not None and (
                callee.endswith("ParallelRunner")
                or callee.endswith("ProcessPoolExecutor")):
            if callee.endswith("ParallelRunner"):
                for kw in call.keywords:
                    if kw.arg == "task_fn":
                        return kw.value
                return call.args[0] if call.args else None
            return None  # executor construction itself ships nothing
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in ("submit", "map") and call.args:
            receiver = call.func.value
            rname = (dotted_name(receiver) or "").rsplit(".", 1)[-1]
            if rname.lower() in ("pool", "executor", "runner", "ppe") or \
                    "pool" in rname.lower() or "executor" in rname.lower():
                return call.args[0]
        return None

    def _classify(self, ctx: ModuleContext, node: ast.AST,
                  nested_defs: Set[str]) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name):
            if node.id in nested_defs:
                return f"nested function {node.id!r} (a closure)"
            return None  # module-level def or imported name
        if isinstance(node, ast.Attribute):
            if ctx.head_is_imported_module(node):
                return None  # module.function — pickles by reference
            return f"bound method {dotted_name(node) or node.attr!r}"
        if isinstance(node, ast.Call):
            callee = ctx.resolve_call(node)
            if callee is not None and callee.endswith("partial"):
                # functools.partial pickles iff its inner fn does;
                # check the first argument.
                if node.args:
                    return self._classify(ctx, node.args[0], nested_defs)
            return None
        return None


# ======================================================================
# TEL001 — telemetry/coverage handle construction in loop bodies
# ======================================================================
_SESSION_NAME_HINTS = {"tel", "telemetry", "session", "sess", "registry",
                       "cov", "coverage"}
_HANDLE_FACTORIES = {"counter", "gauge", "histogram", "domain", "recorder"}


@register
class TelemetryHandleRule(Rule):
    code = "TEL001"
    name = "telemetry-handle-in-loop"
    severity = Severity.WARNING
    description = ("telemetry counter()/gauge()/histogram() or coverage "
                   "domain()/recorder() lookup inside a loop body")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        session_locals = self._session_locals(ctx)
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if node is loop:
                    continue
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _HANDLE_FACTORIES):
                    continue
                if not self._receiver_is_session(ctx, node.func.value,
                                                 session_locals):
                    continue
                yield self.finding(
                    ctx, node,
                    f"telemetry handle .{node.func.attr}(...) constructed "
                    f"inside a loop; registry lookups cost a dict probe "
                    f"per iteration — create the handle once at "
                    f"module/__init__ scope and reuse it")

    @staticmethod
    def _session_locals(ctx: ModuleContext) -> Set[str]:
        """Names assigned from telemetry/coverage current()/active()/
        enable()."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign) or \
                    not isinstance(node.value, ast.Call):
                continue
            callee = ctx.resolve_call(node.value)
            if callee is None:
                continue
            if callee.endswith((".current", ".active", ".enable")) and \
                    ("telemetry" in callee or "coverage" in callee):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _receiver_is_session(ctx: ModuleContext, receiver: ast.AST,
                             session_locals: Set[str]) -> bool:
        resolved = ctx.resolve(receiver)
        if resolved is not None and ("telemetry" in resolved
                                     or "coverage" in resolved):
            return True
        if isinstance(receiver, ast.Name):
            return (receiver.id in session_locals
                    or receiver.id in _SESSION_NAME_HINTS)
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in _SESSION_NAME_HINTS
        return False


# ======================================================================
# API001 — engine-owned state mutated from outside sim/
# ======================================================================
#: Simulator internals: event-count accounting and the clock. ``probe``
#: is deliberately absent — it is the sanctioned extension point.
_ENGINE_PRIVATE = {"_now", "_queue", "_seq", "_live", "_cancelled",
                   "_processed", "_running", "_size", "_times", "_buckets",
                   "_active", "_active_pos", "_active_time"}
_ENGINE_PRIVATE_METHODS = {"_note_cancel", "_compact"}
_ENGINE_NAME_HINTS = {"sim", "_sim", "simulator", "engine"}


@register
class EngineStateRule(Rule):
    code = "API001"
    name = "engine-state-mutation"
    severity = Severity.ERROR
    description = ("mutation of Simulator-owned state from outside "
                   "repro/sim/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _in_dir(ctx.path, "sim"):
            return
        for node in ast.walk(ctx.tree):
            target: Optional[ast.Attribute] = None
            verb = "written"
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for t in targets:
                    if isinstance(t, ast.Attribute) and \
                            t.attr in _ENGINE_PRIVATE:
                        target = t
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in _ENGINE_PRIVATE_METHODS and \
                        self._receiver_is_engine(node.func.value):
                    yield self.finding(
                        ctx, node,
                        f"calling Simulator.{attr}() from outside the "
                        f"engine corrupts its event accounting; use the "
                        f"public schedule/cancel/reset API")
                    continue
                # e.g. sim._queue.append(...)
                recv = node.func.value
                if isinstance(recv, ast.Attribute) and \
                        recv.attr in _ENGINE_PRIVATE and \
                        self._receiver_is_engine(recv.value):
                    target = recv
                    verb = "mutated"
            if target is None:
                continue
            if not self._receiver_is_engine(target.value):
                continue
            yield self.finding(
                ctx, target,
                f"engine-owned attribute {target.attr!r} {verb} from "
                f"outside repro/sim; only the engine (or a registered "
                f"process callback via the public API) may touch it")

    @staticmethod
    def _receiver_is_engine(node: ast.AST) -> bool:
        name = dotted_name(node)
        if name is None:
            return False
        leaf = name.rsplit(".", 1)[-1]
        return leaf in _ENGINE_NAME_HINTS


# ======================================================================
# PERF001 — interpreted struct format strings on the packet hot path
# ======================================================================
#: struct-module functions that re-parse their format string per call.
_STRUCT_FMT_FUNCS = {"struct.pack", "struct.unpack", "struct.pack_into",
                     "struct.unpack_from", "struct.iter_unpack",
                     "struct.calcsize"}


@register
class StructLiteralRule(Rule):
    code = "PERF001"
    name = "literal-struct-format"
    severity = Severity.WARNING
    description = ("literal-format struct.pack/unpack in packet-path "
                   "code (net/, switch/, rdma/, dumper/); precompile a "
                   "module-level struct.Struct")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_dir(ctx.path, "net", "switch", "rdma", "dumper"):
            return
        for call in ctx.calls():
            callee = ctx.resolve_call(call)
            if callee not in _STRUCT_FMT_FUNCS:
                continue
            if not call.args:
                continue
            fmt = call.args[0]
            if not (isinstance(fmt, ast.Constant)
                    and isinstance(fmt.value, str)):
                # A precompiled Struct's bound method or a dynamic
                # format built elsewhere — not the per-call parse
                # this rule is about.
                continue
            short = callee.rsplit(".", 1)[-1]
            yield self.finding(
                ctx, call,
                f"struct.{short}({fmt.value!r}, ...) re-parses its "
                f"format string on every call; packet-path code packs "
                f"millions of headers per campaign — compile a "
                f"module-level struct.Struct({fmt.value!r}) once and "
                f"call its bound {short}()")
