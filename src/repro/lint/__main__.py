"""``python -m repro.lint`` — standalone entry point."""

import sys

from .cli import main

sys.exit(main())
