"""Micro-behavior coverage maps and the anomaly flight recorder.

Lumina's value proposition is *observing* micro-behaviors of offloaded
stacks; aggregate metrics (``repro.telemetry``) say how often things
happened but not *which* protocol states and pipeline paths a run
actually exercised. This package closes that gap with two deterministic
observability primitives layered on the telemetry conventions:

* :class:`~repro.coverage.map.CoverageMap` — hit counts plus first-hit
  sim-time for named instrumentation points, grouped into domains that
  mirror the paper's micro-behaviors (switch match-action tables, the
  ITER tracker of Fig. 3, GBN/RNR state-machine edges of §6, DCQCN
  rate-state transitions). Maps merge commutatively, so suite, sweep
  and fuzz campaigns aggregate byte-identically for any worker count.
* :class:`~repro.coverage.recorder.FlightRecorder` — a bounded ring of
  the last N protocol events per component, dumped alongside the report
  when a check FAILs, goes INCONCLUSIVE or an integrity retry fires —
  turning "test 83 failed" into an inspectable micro-behavior timeline.

The runtime contract copies telemetry's: at most one session is active
(:func:`~repro.coverage.runtime.enable` / ``disable``), components
fetch handles once at construction through
:func:`~repro.coverage.runtime.current` (never None — no-op twins when
disabled), and nothing here ever feeds information back into the
simulation, so runs with coverage on or off produce byte-identical
traces and verdicts.
"""

from .domains import DOMAINS, known_point_count
from .map import CoverageMap
from .recorder import NULL_RECORDER, FlightRecorder
from .runtime import (
    NULL_COVERAGE,
    CoverageSession,
    active,
    current,
    disable,
    enable,
    session,
)

__all__ = [
    "CoverageMap", "CoverageSession", "FlightRecorder",
    "DOMAINS", "known_point_count",
    "NULL_COVERAGE", "NULL_RECORDER",
    "enable", "disable", "current", "active", "session",
]
