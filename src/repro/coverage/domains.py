"""The registry of known coverage domains and instrumentation points.

Every point a component can :meth:`~repro.coverage.runtime.DomainHandle.
hit` is declared here, so ``coverage-report`` can answer the negative
question — "which GBN edges has this campaign *never* reached?" — not
just the positive one. The declaration is advisory: the hot path never
validates against it (a hit on an undeclared point is reported as
"undeclared", not rejected), so adding instrumentation is a two-line
change and a stale registry cannot crash a run.

Domains mirror the paper's micro-behaviors (see DESIGN.md for the full
mapping): ``switch.*`` covers the Tofino-modelled match-action tables,
per-event rewrite/injection branches, the mirror block and the ITER
tracker of Fig. 3; ``rdma.gbn`` covers the Go-back-N / RNR / adaptive
retransmission state-machine edges of §4 and §6; ``rdma.nic`` covers
NIC-level micro-behaviors (CNP generation and suppression scopes,
MigReq slow path, noisy-neighbor stalls); ``rdma.dcqcn`` covers the
DCQCN reaction-point rate states.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["DOMAINS", "known_point_count", "missing_points"]

#: domain -> declared instrumentation points (sorted tuples).
DOMAINS: Dict[str, Tuple[str, ...]] = {
    "switch.table": (
        "exact-hit",      # exact (src, dst, qpn, psn, iter) entry matched
        "wildcard-hit",   # any-iteration wildcard entry matched
        "miss",           # no entry for the packet's flow/psn
        "exhausted",      # entry matched but its event budget is spent
    ),
    "switch.iter": (
        "new-connection",    # first packet of a (src, dst, qpn) flow
        "in-order-advance",  # PSN strictly later: same iteration
        "retransmit-round",  # PSN not later: ITER++ (Fig. 3)
    ),
    "switch.pipeline": (
        "rewrite-applied",   # header rewrite rule matched and applied
        "event-drop",        # injected drop consumed a table entry
        "event-ecn",         # injected ECN mark
        "event-corrupt",     # injected payload corruption (iCRC test)
        "event-delay",       # injected per-packet delay
        "event-reorder",     # packet held for reordering
        "reorder-release",   # held packet released back into the stream
        "queue-ecn-mark",    # egress-queue depth crossed the ECN threshold
    ),
    "switch.mirror": (
        "mirrored",           # clone stamped and sent to a dumper
        "fault-intercepted",  # measurement-fault plan swallowed the clone
    ),
    "rdma.gbn": (
        # Responder edges (§4 Go-back-N, Fig. 11 RNR):
        "in-order-accept",       # psn == ePSN: payload accepted
        "rnr-nak-sent",          # in-order but no receive WQE: RNR NAK
        "gap-nak",               # psn > ePSN: one NAK per gap
        "duplicate-request",     # psn < ePSN: ghost ACK, payload dropped
        "read-in-order",         # read request at ePSN served
        "read-gap-nak",          # read request beyond ePSN: NAK
        "read-duplicate-retransmit",  # duplicate read re-served
        # Requester edges:
        "ack-advance",           # ACK advanced the unacked window
        "rnr-nak-received",      # RNR NAK accepted for a pending WQE
        "rnr-backoff",           # RNR timer armed, resend scheduled
        "rnr-retry-exceeded",    # RNR retry budget exhausted: QP -> ERROR
        "nak-rewind",            # PSN_SEQ_ERR NAK: Go-back-N rewind
        "read-response-in-order",  # read response advanced the window
        "read-implied-nak",      # OOO read response: implied NAK
        "timeout-retransmit",    # retransmission timeout fired for real
        "timeout-rearm",         # timer fired early: re-armed remainder
        "timeout-deferred",      # timeout superseded by in-flight recovery
        "retry-exceeded",        # transport retry budget exhausted
    ),
    "rdma.nic": (
        "stall-discard",        # rx discarded during a pipeline stall
        "icrc-discard",         # corrupted packet dropped at rx (iCRC)
        "migreq-slow-path",     # MigReq=0 packet took the firmware path
        "migreq-context-full-discard",  # slow-path context table full
        "cnp-sent",             # CE-marked data packet produced a CNP
        "cnp-suppressed",       # CNP limiter scope suppressed generation
        "cnp-handled",          # CNP delivered to the reaction point
        "ecn-marked-rx",        # CE-marked data packet arrived
        "noisy-neighbor-stall", # read-loss threshold tripped a stall
    ),
    "rdma.dcqcn": (
        "cnp-rate-cut",       # RP cut current rate, alpha refreshed
        "alpha-decay",        # alpha decayed one step (no CNP seen)
        "timer-round",        # rate-increase timer round completed
        "byte-round",         # byte-counter round completed
        "fast-recovery",      # increase stage: halve toward target rate
        "additive-increase",  # increase stage: target += Rai
        "hyper-increase",     # increase stage: target += Rhai
    ),
}


def known_point_count() -> int:
    """Total number of declared instrumentation points."""
    return sum(len(points) for points in DOMAINS.values())


def missing_points(domain: str, hit_points) -> List[str]:
    """Declared points of ``domain`` absent from ``hit_points``."""
    hit = set(hit_points)
    return [p for p in DOMAINS.get(domain, ()) if p not in hit]
