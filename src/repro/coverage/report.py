"""Coverage reporting: export, aggregation, diffs, flight-record text.

Backs two CLI surfaces:

* ``--coverage DIR`` on campaign commands — :func:`export_coverage`
  writes the session total as a canonical ``coverage.json`` (and the
  CLI drops ``flight-*.txt`` dumps next to it when a trigger fired);
* ``python -m repro coverage-report <path> [--diff OTHER]`` — renders
  a hit/known table per domain, lists never-reached points ("which GBN
  edges has this campaign never reached?"), and diffs two campaigns.

A ``<path>`` may be a ``coverage.json`` file, a directory holding one,
or a ``--campaign`` directory / content-addressed store: store objects
carry their coverage snapshots under a ``"coverage"`` key regardless
of kind (result, check, score, summary), so aggregation just merges
every object's snapshot — commutative, hence order-independent.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .domains import DOMAINS
from .map import COVERAGE_FORMAT, CoverageMap, canonical_coverage_json

__all__ = [
    "COVERAGE_FILE", "export_coverage", "load_points", "aggregate_store",
    "summarize_points", "render_coverage", "render_coverage_json",
    "diff_points", "render_diff", "render_flight_record",
    "flight_dump_name",
]

#: File name written into a ``--coverage`` directory.
COVERAGE_FILE = "coverage.json"


# ----------------------------------------------------------------------
# Export / load
# ----------------------------------------------------------------------
def export_coverage(points: Sequence[Sequence], out_dir: str) -> str:
    """Write a canonical coverage.json into ``out_dir``; return path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, COVERAGE_FILE)
    with open(path, "w") as handle:
        handle.write(canonical_coverage_json(points))
    return path


def _load_file(path: str) -> List[List]:
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("format") != COVERAGE_FORMAT:
        raise ValueError(f"{path}: not a {COVERAGE_FORMAT} document")
    return [list(row) for row in doc.get("points", [])]


def aggregate_store(store_root: str) -> List[List]:
    """Merge the coverage snapshots of every object in a store."""
    from ..store import CampaignStore

    store = CampaignStore(store_root)
    total = CoverageMap()
    for fingerprint in store.fingerprints():
        data = store.get(fingerprint)
        if isinstance(data, dict):
            snapshot = data.get("coverage")
            if snapshot:
                total.merge_snapshot(snapshot)
    return total.snapshot()


def load_points(path: str) -> List[List]:
    """Coverage rows from a file, a --coverage dir, or a campaign dir."""
    if os.path.isfile(path):
        return _load_file(path)
    if not os.path.isdir(path):
        raise FileNotFoundError(f"no such coverage source: {path}")
    json_path = os.path.join(path, COVERAGE_FILE)
    if os.path.isfile(json_path):
        return _load_file(json_path)
    store_path = os.path.join(path, "store")
    if os.path.isdir(store_path):
        return aggregate_store(store_path)
    # Bare store root (the --campaign DIR/store layout already split).
    return aggregate_store(path)


# ----------------------------------------------------------------------
# Summaries and rendering
# ----------------------------------------------------------------------
def summarize_points(points: Sequence[Sequence]) -> Dict[str, Dict]:
    """Per-domain summary, keyed by domain name (declared ones first)."""
    by_domain: Dict[str, Dict] = {}
    for domain in DOMAINS:
        by_domain[domain] = {"hit": 0, "known": len(DOMAINS[domain]),
                             "hits": 0, "points": {}, "missing": [],
                             "undeclared": []}
    for domain, point, count, first_ns in points:
        entry = by_domain.setdefault(
            domain, {"hit": 0, "known": 0, "hits": 0, "points": {},
                     "missing": [], "undeclared": []})
        entry["hit"] += 1
        entry["hits"] += count
        entry["points"][point] = {"count": count, "first_hit_ns": first_ns}
        if point not in DOMAINS.get(domain, ()):
            entry["undeclared"].append(point)
    for domain, entry in by_domain.items():
        entry["missing"] = [p for p in DOMAINS.get(domain, ())
                            if p not in entry["points"]]
        entry["undeclared"].sort()
    return by_domain


def render_coverage(points: Sequence[Sequence],
                    title: str = "Coverage report") -> str:
    """Plain-text hit/known table plus the never-reached point lists."""
    summary = summarize_points(points)
    lines: List[str] = [title, "=" * len(title),
                        f"{'domain':<18s}{'points hit':>12s}{'hits':>10s}"]
    total_hit = total_known = total_hits = 0
    for domain in sorted(summary):
        entry = summary[domain]
        known = entry["known"] or entry["hit"]
        lines.append(f"{domain:<18s}{entry['hit']:>6d}/{known:<5d}"
                     f"{entry['hits']:>10d}")
        total_hit += entry["hit"]
        total_known += entry["known"]
        total_hits += entry["hits"]
    lines.append(f"{'total':<18s}{total_hit:>6d}/{total_known:<5d}"
                 f"{total_hits:>10d}")

    missing = [(domain, summary[domain]["missing"])
               for domain in sorted(summary) if summary[domain]["missing"]]
    if missing:
        lines += ["", "Never reached", "-" * 13]
        for domain, points_missing in missing:
            lines.append(f"  {domain}: " + ", ".join(points_missing))
    undeclared = [(domain, summary[domain]["undeclared"])
                  for domain in sorted(summary)
                  if summary[domain]["undeclared"]]
    if undeclared:
        lines += ["", "Undeclared points (update coverage/domains.py)",
                  "-" * 46]
        for domain, points_extra in undeclared:
            lines.append(f"  {domain}: " + ", ".join(points_extra))
    return "\n".join(lines) + "\n"


def render_coverage_json(points: Sequence[Sequence]) -> str:
    """Machine-readable summary (sorted keys, deterministic bytes)."""
    doc = {"format": COVERAGE_FORMAT, "domains": summarize_points(points)}
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"


# ----------------------------------------------------------------------
# Diffs
# ----------------------------------------------------------------------
def diff_points(a: Sequence[Sequence],
                b: Sequence[Sequence]) -> Tuple[List, List]:
    """Points hit only in ``a`` and only in ``b`` (sorted rows)."""
    a_keys = {(row[0], row[1]): row for row in a}
    b_keys = {(row[0], row[1]): row for row in b}
    only_a = [list(a_keys[k]) for k in sorted(a_keys.keys() - b_keys.keys())]
    only_b = [list(b_keys[k]) for k in sorted(b_keys.keys() - a_keys.keys())]
    return only_a, only_b


def render_diff(a: Sequence[Sequence], b: Sequence[Sequence],
                a_name: str = "A", b_name: str = "B") -> str:
    only_a, only_b = diff_points(a, b)
    shared = len({(r[0], r[1]) for r in a} & {(r[0], r[1]) for r in b})
    lines = [f"Coverage diff — {a_name} vs {b_name}",
             f"shared points: {shared}   only {a_name}: {len(only_a)}   "
             f"only {b_name}: {len(only_b)}"]
    if only_a:
        lines += ["", f"Only in {a_name}", "-" * (8 + len(a_name))]
        lines += [f"  {d}:{p} (x{n})" for d, p, n, _ in only_a]
    if only_b:
        lines += ["", f"Only in {b_name}", "-" * (8 + len(b_name))]
        lines += [f"  {d}:{p} (x{n})" for d, p, n, _ in only_b]
    if not only_a and not only_b:
        lines.append("coverage is identical")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Flight-record rendering
# ----------------------------------------------------------------------
def render_flight_record(entries: Sequence[Sequence], name: str,
                         trigger: str) -> str:
    """One dump: the merged last-N timeline for a triggered run/check."""
    header = f"Flight record — {name} ({trigger})"
    lines = [header, "=" * len(header),
             f"{len(entries)} event(s), oldest first; "
             f"t is sim-time in ns"]
    for _seq, now_ns, component, event, detail in entries:
        line = f"  t={now_ns:>12d}  {component:<22s} {event}"
        if detail:
            line += f"  {detail}"
        lines.append(line)
    if not entries:
        lines.append("  (no events recorded)")
    return "\n".join(lines) + "\n"


def flight_dump_name(name: str) -> str:
    """Filesystem-safe dump file name for a run/check identifier."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "run"
    return f"flight-{safe}.txt"
