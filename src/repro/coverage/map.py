"""The coverage map: hit counts + first-hit sim-time per point.

A :class:`CoverageMap` is a plain dictionary from ``(domain, point)``
to ``[hit_count, first_hit_sim_ns]``. Both merge operations — folding
a picklable snapshot in, or folding another map in — are commutative
and associative (counts sum, first-hit times take the minimum), which
is what makes campaign aggregation deterministic: merging per-run maps
in any order, across any number of ``ParallelRunner`` workers, yields
the same map and therefore the same canonical JSON bytes.

Sim-times are integer nanoseconds from the seeded engine clock; this
module never reads wall clocks or randomness (DET001/DET002 apply to
``coverage/``), and deliberately does not import ``repro.store`` — the
store serializes snapshots, not maps.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["CoverageMap", "canonical_coverage_json"]

#: (domain, point) — e.g. ("rdma.gbn", "timeout-retransmit").
PointKey = Tuple[str, str]

#: One snapshot row: [domain, point, hit_count, first_hit_sim_ns].
SnapshotRow = List

#: Version tag embedded in exported coverage documents.
COVERAGE_FORMAT = "repro-coverage-v1"


class CoverageMap:
    """Deterministic hit counts and first-hit sim-times per point."""

    __slots__ = ("_points",)

    def __init__(self) -> None:
        #: (domain, point) -> [hit_count, first_hit_sim_ns]
        self._points: Dict[PointKey, List[int]] = {}

    # ------------------------------------------------------------------
    # Recording (hot path) and merging (campaign aggregation)
    # ------------------------------------------------------------------
    def hit(self, domain: str, point: str, now_ns: int = 0) -> None:
        """Record one hit of ``point`` at sim-time ``now_ns``."""
        entry = self._points.get((domain, point))
        if entry is None:
            self._points[(domain, point)] = [1, now_ns]
        else:
            entry[0] += 1

    def merge_snapshot(self, snapshot: Iterable[Sequence]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) in."""
        for domain, point, count, first_ns in snapshot:
            entry = self._points.get((domain, point))
            if entry is None:
                self._points[(domain, point)] = [count, first_ns]
            else:
                entry[0] += count
                if first_ns < entry[1]:
                    entry[1] = first_ns

    def merge_map(self, other: "CoverageMap") -> None:
        """Fold another map in (counts sum, first-hit takes the min)."""
        for key, (count, first_ns) in other._points.items():
            entry = self._points.get(key)
            if entry is None:
                self._points[key] = [count, first_ns]
            else:
                entry[0] += count
                if first_ns < entry[1]:
                    entry[1] = first_ns

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> List[SnapshotRow]:
        """Sorted, picklable, JSON-safe rows: [domain, point, n, t0]."""
        return [[domain, point, entry[0], entry[1]]
                for (domain, point), entry in sorted(self._points.items())]

    @classmethod
    def from_snapshot(cls, snapshot: Iterable[Sequence]) -> "CoverageMap":
        new_map = cls()
        new_map.merge_snapshot(snapshot)
        return new_map

    def count(self, domain: str, point: str) -> int:
        entry = self._points.get((domain, point))
        return entry[0] if entry is not None else 0

    def point_keys(self) -> List[PointKey]:
        """Sorted (domain, point) keys — the map's coverage signature.

        Hit counts and timestamps are deliberately excluded: two runs
        that reach the same points are coverage-equivalent for corpus
        dominance and finding deduplication, however often they looped.
        """
        return sorted(self._points)

    def first_hit_ns(self, domain: str, point: str):
        """First-hit sim-time, or None if the point was never reached."""
        entry = self._points.get((domain, point))
        return entry[1] if entry is not None else None

    def domains(self) -> List[str]:
        return sorted({domain for domain, _ in self._points})

    def points_hit(self, domain: str) -> List[str]:
        return sorted(point for d, point in self._points if d == domain)

    def total_hits(self) -> int:
        return sum(entry[0] for entry in self._points.values())

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: PointKey) -> bool:
        return key in self._points

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return self._points == other._points


def canonical_coverage_json(snapshot: Iterable[Sequence]) -> str:
    """One canonical JSON document for a snapshot — byte-comparable.

    Sorted keys, no whitespace, trailing newline: two campaigns covered
    the same points iff their documents are byte-identical.
    """
    doc = {"format": COVERAGE_FORMAT,
           "points": [list(row) for row in snapshot]}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
