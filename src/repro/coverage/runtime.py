"""Session lifecycle: the global on/off switch for coverage.

Mirrors :mod:`repro.telemetry.runtime`: one :class:`CoverageSession`
is active at a time, components fetch handles once at construction
through :func:`current` (never None — the :data:`NULL_COVERAGE` twin
hands out no-op handles when disabled) and bump them on the hot path,
and :func:`active` (session or ``None``) guards work that is not free
even in no-op form.

The one structural addition is the **scope stack**. Campaign layers
need per-run and per-check maps (serialized onto results, shipped
across process boundaries) *and* a campaign total — so a session holds
a stack of :class:`~repro.coverage.map.CoverageMap` scopes. The
orchestrator pushes a scope around each run and the suite pushes one
around each check; :meth:`CoverageSession.pop_scope` returns the
popped map *without* folding it into the parent. Folding is the
caller's job (``run_test`` merges result-carried snapshots, the suite
merges check-carried snapshots, in battery order), which makes the
serial, pooled and store-replayed paths take the same single merge
route — the root of the workers∈{1,2,4} byte-identity guarantee.

Determinism guarantee: as with telemetry, nothing here feeds back into
the simulation. Coverage observes sim state but never schedules
events, draws randomness, or mutates component state — a run with
coverage enabled produces byte-identical traces and verdicts to a
disabled run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .map import CoverageMap
from .recorder import DEFAULT_RING_SIZE, NULL_RECORDER, FlightRecorder

__all__ = ["CoverageSession", "DomainHandle", "NullDomainHandle",
           "NULL_COVERAGE", "NULL_DOMAIN",
           "enable", "disable", "current", "active", "session"]


class DomainHandle:
    """A component's cached handle for one coverage domain.

    Re-reads ``session.live`` on every hit, so handles created before a
    scope push keep recording into the innermost scope.
    """

    __slots__ = ("_session", "name")
    enabled = True

    def __init__(self, session: "CoverageSession", name: str):
        self._session = session
        self.name = name

    def hit(self, point: str, now_ns: int = 0) -> None:
        self._session.live.hit(self.name, point, now_ns)


class NullDomainHandle:
    """Disabled-mode twin: one empty method call per instrumented site."""

    __slots__ = ()
    enabled = False
    name = ""

    def hit(self, point: str, now_ns: int = 0) -> None:
        pass


NULL_DOMAIN = NullDomainHandle()


class CoverageSession:
    """A live coverage collection: scope stack + flight-recorder rings."""

    enabled = True

    def __init__(self, out_dir: Optional[str] = None,
                 ring_size: int = DEFAULT_RING_SIZE):
        self.out_dir = out_dir
        self.ring_size = ring_size
        root = CoverageMap()
        self._stack: List[CoverageMap] = [root]
        #: The innermost scope — where hits land right now.
        self.live: CoverageMap = root
        self._handles: Dict[str, DomainHandle] = {}
        self._recorders: Dict[str, FlightRecorder] = {}
        self._seq = 0  # session-wide flight-record ordering

    # ------------------------------------------------------------------
    # Handle factories (one per domain/component; idempotent)
    # ------------------------------------------------------------------
    def domain(self, name: str) -> DomainHandle:
        handle = self._handles.get(name)
        if handle is None:
            handle = DomainHandle(self, name)
            self._handles[name] = handle
        return handle

    def recorder(self, component: str) -> FlightRecorder:
        rec = self._recorders.get(component)
        if rec is None:
            rec = FlightRecorder(self, component, self.ring_size)
            self._recorders[component] = rec
        return rec

    # ------------------------------------------------------------------
    # Scope stack
    # ------------------------------------------------------------------
    def push_scope(self) -> None:
        scope = CoverageMap()
        self._stack.append(scope)
        self.live = scope

    def pop_scope(self) -> CoverageMap:
        """Pop and return the innermost scope. Does NOT merge it up."""
        if len(self._stack) == 1:
            raise RuntimeError("cannot pop the root coverage scope")
        popped = self._stack.pop()
        self.live = self._stack[-1]
        return popped

    def scope(self) -> "_CoverageScope":
        """Context manager: isolate hits, then fold them into the parent.

        ``with session.scope() as run_map:`` pushes a fresh scope, hands
        it out so the caller can snapshot the isolated delta, and on
        exit pops it and merges it into the enclosing scope — the
        push/pop/fold discipline the fuzzer's in-process score path
        needs, packaged so no exit path can leave the stack unbalanced.
        """
        return _CoverageScope(self)

    def merge_snapshot(self, snapshot) -> None:
        """Fold a result-carried snapshot into the innermost scope."""
        self.live.merge_snapshot(snapshot)

    def total_snapshot(self) -> List[List]:
        """Everything the session has seen, across all open scopes."""
        total = CoverageMap()
        for scope in self._stack:
            total.merge_map(scope)
        return total.snapshot()

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------
    def reset_recorders(self) -> None:
        """Clear every ring (called at the start of each run attempt)."""
        for rec in self._recorders.values():
            rec.clear()
        self._seq = 0

    def flight_snapshot(self) -> List[List]:
        """All rings as one timeline, ordered by recording sequence."""
        entries: List[tuple] = []
        for component in sorted(self._recorders):
            entries.extend(self._recorders[component].entries())
        entries.sort()
        return [list(entry) for entry in entries]


class _CoverageScope:
    """``with session.scope()`` helper — see :meth:`CoverageSession.scope`."""

    __slots__ = ("_session", "map")

    def __init__(self, session_obj):
        self._session = session_obj
        self.map: Optional[CoverageMap] = None

    def __enter__(self) -> CoverageMap:
        self._session.push_scope()
        self.map = self._session.live
        return self.map

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = self._session.pop_scope()
        self._session.live.merge_map(popped)


class _NullCoverageScope:
    """Disabled-mode twin: hands out a throwaway map, folds nothing."""

    __slots__ = ()

    def __enter__(self) -> CoverageMap:
        return CoverageMap()

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SCOPE = _NullCoverageScope()


class _NullCoverageSession:
    """Shared disabled-mode session; all factories return no-op twins."""

    enabled = False
    out_dir = None
    ring_size = 0
    live = CoverageMap()  # never written: null handles drop hits

    def domain(self, name: str) -> NullDomainHandle:
        return NULL_DOMAIN

    def recorder(self, component: str):
        return NULL_RECORDER

    def push_scope(self) -> None:
        pass

    def pop_scope(self) -> CoverageMap:
        return CoverageMap()

    def scope(self) -> _NullCoverageScope:
        return _NULL_SCOPE

    def merge_snapshot(self, snapshot) -> None:
        pass

    def total_snapshot(self) -> List[List]:
        return []

    def reset_recorders(self) -> None:
        pass

    def flight_snapshot(self) -> List[List]:
        return []


NULL_COVERAGE = _NullCoverageSession()

_current: object = NULL_COVERAGE


def enable(out_dir: Optional[str] = None,
           ring_size: int = DEFAULT_RING_SIZE) -> CoverageSession:
    """Activate a fresh coverage session (replacing any existing one)."""
    global _current
    new_session = CoverageSession(out_dir=out_dir, ring_size=ring_size)
    # repro-lint: ignore[RACE001] — session lifecycle singleton: workers
    # enable/disable their own session and maps travel via snapshots.
    _current = new_session  # repro-lint: ignore[RACE001]
    return new_session


def disable() -> None:
    """Deactivate coverage; components fall back to no-op twins."""
    global _current
    _current = NULL_COVERAGE  # repro-lint: ignore[RACE001] — lifecycle


def current():
    """The active session, or :data:`NULL_COVERAGE`. Never None."""
    return _current


def active() -> Optional[CoverageSession]:
    """The active session, or ``None`` when coverage is disabled."""
    return _current if _current.enabled else None


class session:
    """Context manager: ``with coverage.session() as cov: ...``."""

    def __init__(self, out_dir: Optional[str] = None,
                 ring_size: int = DEFAULT_RING_SIZE):
        self._out_dir = out_dir
        self._ring_size = ring_size
        self.session: Optional[CoverageSession] = None

    def __enter__(self) -> CoverageSession:
        self.session = enable(self._out_dir, ring_size=self._ring_size)
        return self.session

    def __exit__(self, exc_type, exc, tb) -> None:
        disable()
