"""The anomaly flight recorder: last-N protocol events per component.

Each component (a QP, a NIC, the switch pipeline) owns one bounded
ring. Recording an event is one deque append; nothing is formatted or
written until a trigger fires (check FAIL, INCONCLUSIVE verdict,
integrity retry) and the session's :meth:`~repro.coverage.runtime.
CoverageSession.flight_snapshot` is taken. A session-wide sequence
number gives the merged timeline a stable total order even when two
components record at the same sim nanosecond.

Timestamps are engine sim-time; the recorder never reads wall clocks.
"""

from __future__ import annotations

from collections import deque
from typing import List

__all__ = ["FlightRecorder", "NullFlightRecorder", "NULL_RECORDER",
           "DEFAULT_RING_SIZE"]

#: Events kept per component before the ring overwrites itself.
DEFAULT_RING_SIZE = 64


class FlightRecorder:
    """One component's bounded event ring."""

    __slots__ = ("_session", "component", "_ring")
    enabled = True

    def __init__(self, session, component: str,
                 ring_size: int = DEFAULT_RING_SIZE):
        self._session = session
        self.component = component
        self._ring: deque = deque(maxlen=ring_size)

    def note(self, now_ns: int, event: str, detail: str = "") -> None:
        """Record one event at sim-time ``now_ns``."""
        session = self._session
        session._seq += 1
        self._ring.append((session._seq, now_ns, self.component,
                           event, detail))

    def entries(self) -> List[tuple]:
        """Ring contents, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class NullFlightRecorder:
    """Disabled-mode twin: every method is a no-op."""

    __slots__ = ()
    enabled = False
    component = ""

    def note(self, now_ns: int, event: str, detail: str = "") -> None:
        pass

    def entries(self) -> List[tuple]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_RECORDER = NullFlightRecorder()
