"""Reliable-Connected queue pair state machine.

Implements both roles of an RC connection on top of the NIC model:

* **Requester**: packetises Send/Write messages, issues Read requests,
  reacts to ACK/NAK (Go-back-N rewind after the profile's NACK-reaction
  delay), runs the retransmission timer (spec or adaptive mode, §6.3),
  and receives Read responses — re-issuing a Read request on an
  out-of-order response, which is Read's "implied NACK" (§6.1).
* **Responder**: the Go-back-N receiver — accepts in-order data,
  NAKs the expected PSN on a sequence gap (once per gap), ACKs on
  ack-request packets, and serves Read requests, including re-serving
  ranges for retransmitted requests after the NACK-reaction delay.

PSN accounting follows the IB spec: every data packet consumes one PSN
and a Read request consumes as many PSNs as it will generate response
packets, so request and response streams share one sequence space.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from ..net.headers import (
    AckExtendedHeader,
    BaseTransportHeader,
    EthernetHeader,
    Ipv4Header,
    Opcode,
    RdmaExtendedHeader,
    UdpHeader,
    ECN_ECT0,
)
from ..coverage import runtime as coverage
from ..net.packet import Packet
from ..net.addressing import ROCEV2_UDP_PORT
from .dcqcn import DcqcnRp
from .verbs import (
    CompletionQueue,
    Verb,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)

if TYPE_CHECKING:  # pragma: no cover
    from .nic import RdmaNic

__all__ = ["QpState", "QueuePair", "PSN_MASK"]

PSN_MASK = 0xFFFFFF


def psn_add(psn: int, delta: int) -> int:
    return (psn + delta) & PSN_MASK


def psn_distance(later: int, earlier: int) -> int:
    """Forward distance from ``earlier`` to ``later`` in 24-bit space."""
    return (later - earlier) & PSN_MASK


def psn_geq(a: int, b: int) -> bool:
    """a >= b under the IB 24-bit window comparison."""
    return psn_distance(a, b) < (1 << 23)


class QpState(str, Enum):
    RESET = "reset"
    RTS = "rts"  # ready to send (connected)
    ERROR = "error"


@dataclass(slots=True)
class _PacketTemplate:
    """Everything needed to (re)build one data packet of the request stream."""

    psn: int
    opcode: Opcode
    payload_len: int
    ack_request: bool
    wr_id: int
    reth: Optional[RdmaExtendedHeader] = None


@dataclass
class _SendMessage:
    """An in-flight Send/Write message awaiting its covering ACK."""

    wr: WorkRequest
    first_psn: int
    last_psn: int
    posted_at: int


@dataclass
class _ReadRange:
    """An outstanding Read: PSN range its responses will occupy."""

    wr: WorkRequest
    first_psn: int
    last_psn: int
    posted_at: int
    base_address: int
    rkey: int


class QueuePair:
    """One RC queue pair hosted on an :class:`~repro.rdma.nic.RdmaNic`."""

    def __init__(self, nic: "RdmaNic", qp_num: int, initial_psn: int,
                 cq: CompletionQueue, src_ip: int, mtu: int = 1024):
        self.nic = nic
        self.sim = nic.sim
        self.profile = nic.profile
        self.qp_num = qp_num
        self.initial_psn = initial_psn & PSN_MASK
        self.cq = cq
        self.src_ip = src_ip
        self.mtu = mtu
        self.state = QpState.RESET
        self.ets_queue_index = 0

        # Connection parameters (filled by connect()).
        self.dest_ip = 0
        self.dest_mac = 0
        self.dest_qp_num = 0
        self.dest_initial_psn = 0

        # Loss-recovery configuration (Listing 2 knobs).
        self.timeout_cfg = 14          # min RTO = 4.096 µs * 2^timeout
        self.retry_cnt = 7
        self.adaptive_retrans = False

        # ---- requester state ------------------------------------------
        self.next_psn = self.initial_psn
        self.snd_una = self.initial_psn      # oldest unacked request PSN
        self.pending_tx: Deque[Packet] = deque()
        self._templates: Dict[int, _PacketTemplate] = {}
        self._messages: List[_SendMessage] = []
        self._read_ranges: Deque[_ReadRange] = deque()
        self._highest_psn_sent: Optional[int] = None
        self.retry_count = 0
        self._timeout_event = None
        self._last_progress = 0
        self._adaptive_stage = 0
        self._adaptive_retry_budget: Optional[int] = None
        self._react_pending = False    # NACK reaction delay in progress
        self._read_gap_pending = False   # re-issued Read req being prepared
        self._read_nak_outstanding = False  # one implied NACK per gap

        # Read-response reception cursor (requester side).
        self._expected_resp_psn: Optional[int] = None

        # ---- responder state ------------------------------------------
        self.epsn = 0                  # expected PSN from the remote peer
        self._nak_sent_for_gap = False
        self.msn = 0
        self._resp_templates: Dict[int, _PacketTemplate] = {}
        self._first_message_done = False  # MigReq slow-path cache signal
        # Receive queue for inbound Sends. ``auto_recv`` models the
        # paper's responder, which continuously posts Recv requests
        # (§3.2); turning it off exposes the RC RNR-NAK path.
        self.auto_recv = True
        self._recv_wqes = 0
        self._rnr_nak_pending = False

        # ---- requester RNR handling ------------------------------------
        self.rnr_timer_ns = 10_000
        self.rnr_retry_limit = 7
        self._rnr_retry_count = 0

        # DCQCN reaction point paces this QP's data transmissions; rate
        # updates are surfaced through the NIC's telemetry handles.
        self.dcqcn = DcqcnRp(self.sim, nic.port.bandwidth_bps,
                             params=nic.dcqcn_params,
                             on_rate_change=nic.on_dcqcn_rate_change)
        self.dcqcn_enabled = True
        self._pacing_next = 0

        # Per-QP statistics surfaced through the traffic generator log.
        self.bytes_completed = 0
        self.messages_completed = 0

        # Coverage: GBN state-machine edges share the NIC's domain
        # handle; the flight recorder ring is per-QP.
        self._cov_gbn = nic._cov_gbn
        self._rec = coverage.current().recorder(
            f"qp:{nic.name}:{qp_num:#x}")

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self, dest_ip: int, dest_qp_num: int, dest_initial_psn: int,
                timeout_cfg: Optional[int] = None, retry_cnt: Optional[int] = None,
                adaptive_retrans: Optional[bool] = None) -> None:
        """Transition to RTS with the peer's metadata (exchanged in §3.2)."""
        self.dest_ip = dest_ip
        self.dest_mac = self.nic.resolve_mac(dest_ip)
        self.dest_qp_num = dest_qp_num
        self.dest_initial_psn = dest_initial_psn & PSN_MASK
        self.epsn = self.dest_initial_psn
        if timeout_cfg is not None:
            self.timeout_cfg = timeout_cfg
        if retry_cnt is not None:
            self.retry_cnt = retry_cnt
        if adaptive_retrans is not None:
            self.adaptive_retrans = adaptive_retrans and self.profile.supports_adaptive_retrans
        self.state = QpState.RTS
        self._last_progress = self.sim.now

    # ------------------------------------------------------------------
    # Pacing interface used by the NIC's ETS scheduler
    # ------------------------------------------------------------------
    def has_pending_tx(self) -> bool:
        return bool(self.pending_tx)

    @property
    def pacing_ready_at(self) -> int:
        return self._pacing_next if self.dcqcn_enabled else 0

    def dequeue_tx(self) -> Packet:
        packet = self.pending_tx.popleft()
        bth = packet.bth
        psn = bth.psn
        if self.dcqcn_enabled:
            size = packet.size
            rate = self.dcqcn.rate_bps
            if rate < 1:
                rate = 1
            gap = size * 8_000_000_000 // rate
            now = self.sim.now
            prev = self._pacing_next
            self._pacing_next = (now if now > prev else prev) + gap
            self.dcqcn.on_bytes_sent(size)
        highest = self._highest_psn_sent
        if highest is not None and psn in self._templates and \
                psn_geq(highest, psn):
            self.nic.counters.incr("retransmitted_packets")
            self.nic._m_retrans.inc()
        opcode = bth.opcode
        if opcode.is_data or opcode == Opcode.RDMA_READ_REQUEST:
            if highest is None or psn_geq(psn, highest):
                self._highest_psn_sent = psn
        return packet

    # ------------------------------------------------------------------
    # Posting work
    # ------------------------------------------------------------------
    def post_send(self, wr: WorkRequest) -> None:
        """Post a Send/Write/Read work request (requester role)."""
        if self.state is not QpState.RTS:
            raise RuntimeError(f"QP {self.qp_num:#x} not in RTS (is {self.state})")
        posted_at = self.sim.now
        if wr.verb is Verb.READ:
            self._post_read(wr, posted_at)
        else:
            self._post_send_or_write(wr, posted_at)
        self._arm_timeout()
        self.nic.notify_tx()

    def _post_send_or_write(self, wr: WorkRequest, posted_at: int) -> None:
        npkts = max(1, (wr.length + self.mtu - 1) // self.mtu)
        first_psn = self.next_psn
        remaining = wr.length
        for i in range(npkts):
            payload = min(self.mtu, remaining)
            remaining -= payload
            opcode = self._data_opcode(wr.verb, i, npkts)
            is_last = i == npkts - 1
            reth = None
            if wr.verb is Verb.WRITE and i == 0:
                reth = RdmaExtendedHeader(
                    virtual_address=wr.remote_address,
                    rkey=wr.remote_rkey,
                    dma_length=wr.length,
                )
            psn = psn_add(first_psn, i)
            template = _PacketTemplate(
                psn=psn, opcode=opcode, payload_len=payload,
                ack_request=is_last, wr_id=wr.wr_id, reth=reth,
            )
            self._templates[psn] = template
            self.pending_tx.append(self._build_from_template(template))
        last_psn = psn_add(first_psn, npkts - 1)
        self.next_psn = psn_add(first_psn, npkts)
        self._messages.append(_SendMessage(wr, first_psn, last_psn, posted_at))

    def _post_read(self, wr: WorkRequest, posted_at: int) -> None:
        npkts = max(1, (wr.length + self.mtu - 1) // self.mtu)
        first_psn = self.next_psn
        last_psn = psn_add(first_psn, npkts - 1)
        self.next_psn = psn_add(first_psn, npkts)
        rng = _ReadRange(wr, first_psn, last_psn, posted_at,
                         base_address=wr.remote_address, rkey=wr.remote_rkey)
        self._read_ranges.append(rng)
        if self._expected_resp_psn is None:
            self._expected_resp_psn = first_psn
        self.pending_tx.append(
            self._build_read_request(first_psn, wr.remote_address, wr.remote_rkey, wr.length)
        )

    @staticmethod
    def _data_opcode(verb: Verb, index: int, total: int) -> Opcode:
        if verb is Verb.SEND:
            if total == 1:
                return Opcode.SEND_ONLY
            if index == 0:
                return Opcode.SEND_FIRST
            return Opcode.SEND_LAST if index == total - 1 else Opcode.SEND_MIDDLE
        if verb is Verb.WRITE:
            if total == 1:
                return Opcode.RDMA_WRITE_ONLY
            if index == 0:
                return Opcode.RDMA_WRITE_FIRST
            return Opcode.RDMA_WRITE_LAST if index == total - 1 else Opcode.RDMA_WRITE_MIDDLE
        raise ValueError(f"no data opcode for verb {verb}")

    @staticmethod
    def _response_opcode(index: int, total: int) -> Opcode:
        if total == 1:
            return Opcode.RDMA_READ_RESPONSE_ONLY
        if index == 0:
            return Opcode.RDMA_READ_RESPONSE_FIRST
        if index == total - 1:
            return Opcode.RDMA_READ_RESPONSE_LAST
        return Opcode.RDMA_READ_RESPONSE_MIDDLE

    # ------------------------------------------------------------------
    # Packet builders
    # ------------------------------------------------------------------
    def _headers(self, payload_len: int, opcode: Opcode) -> Packet:
        # Positional header construction: this runs once per data packet
        # of every posted message, and keyword processing was measurable.
        return Packet(
            EthernetHeader(self.dest_mac, self.nic.mac),
            Ipv4Header(self.src_ip, self.dest_ip, ecn=ECN_ECT0),
            UdpHeader(0xC000 | (self.qp_num & 0x3FFF), ROCEV2_UDP_PORT),
            BaseTransportHeader(
                opcode,
                dest_qp=self.dest_qp_num,
                migreq=bool(self.profile.migreq_initial),
            ),
            payload_len=payload_len,
        )

    def _finalize_lengths(self, packet: Packet) -> Packet:
        ip = packet.ip
        udp = packet.udp
        assert ip is not None and udp is not None
        total = packet.size - 14  # everything after Ethernet
        ip.total_length = total
        udp.length = total - 20
        return packet

    def _build_from_template(self, template: _PacketTemplate) -> Packet:
        packet = self._headers(template.payload_len, template.opcode)
        packet.bth.psn = template.psn
        packet.bth.ack_request = template.ack_request
        if template.reth is not None:
            packet.reth = template.reth.copy()
        return self._finalize_lengths(packet)

    def _build_read_request(self, psn: int, address: int, rkey: int, length: int) -> Packet:
        packet = self._headers(0, Opcode.RDMA_READ_REQUEST)
        packet.bth.psn = psn
        packet.bth.ack_request = True
        packet.reth = RdmaExtendedHeader(virtual_address=address, rkey=rkey,
                                         dma_length=length)
        return self._finalize_lengths(packet)

    def _build_ack(self, psn: int, nak: bool = False) -> Packet:
        packet = self._headers(0, Opcode.ACKNOWLEDGE)
        packet.bth.psn = psn
        packet.aeth = (AckExtendedHeader.nak_sequence_error(self.msn) if nak
                       else AckExtendedHeader.ack(self.msn))
        return self._finalize_lengths(packet)

    def build_cnp(self) -> Packet:
        """A CNP addressed to this QP's peer (used by the NIC's NP block)."""
        packet = self._headers(0, Opcode.CNP)
        packet.bth.psn = 0
        return self._finalize_lengths(packet)

    # ------------------------------------------------------------------
    # Receive dispatch (called by the NIC after its RX pipeline delay)
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if self.state is QpState.ERROR:
            return
        opcode = packet.bth.opcode
        if opcode == Opcode.ACKNOWLEDGE:
            self._handle_ack(packet)
        elif opcode.is_read_response:
            self._handle_read_response(packet)
        elif opcode == Opcode.RDMA_READ_REQUEST:
            self._handle_read_request(packet)
        elif opcode.is_data:
            self._handle_data(packet)

    def handle_cnp(self) -> None:
        """RP role: a CNP arrived for this QP."""
        self.nic.counters.incr("cnp_handled")
        self.nic._m_cnp_handled.inc()
        self.nic._cov_nic.hit("cnp-handled", self.sim.now)
        if self.dcqcn_enabled:
            self.dcqcn.handle_cnp()

    def post_recv(self, count: int = 1) -> None:
        """Post receive WQEs for inbound Sends (responder role)."""
        if count < 1:
            raise ValueError("post_recv count must be positive")
        self._recv_wqes += count

    @property
    def recv_wqes_available(self) -> int:
        return self._recv_wqes

    # ---- responder: Send/Write data ----------------------------------
    def _handle_data(self, packet: Packet) -> None:
        psn = packet.bth.psn
        if psn == self.epsn:
            opcode = packet.bth.opcode
            if opcode in (Opcode.SEND_FIRST, Opcode.SEND_ONLY) \
                    and not self.auto_recv:
                # A new inbound Send consumes a receive WQE; with none
                # available the responder answers RNR NAK and does not
                # advance its expected PSN (IB spec 9.7.5.2.8).
                if self._recv_wqes <= 0:
                    self.nic.counters.incr("rnr_nak_sent")
                    self._cov_gbn.hit("rnr-nak-sent", self.sim.now)
                    self._rec.note(self.sim.now, "rnr-nak-sent",
                                   f"psn={psn}")
                    if not self._rnr_nak_pending:
                        self._rnr_nak_pending = True
                        delay = self.nic.rng.jitter_ns(
                            self.profile.ack_gen_ns,
                            self.profile.latency_jitter_frac)
                        self.sim.schedule(delay, self._emit_rnr_nak, psn)
                    return
                self._recv_wqes -= 1
                self._rnr_nak_pending = False
            self._cov_gbn.hit("in-order-accept", self.sim.now)
            self.epsn = psn_add(self.epsn, 1)
            self._nak_sent_for_gap = False
            if packet.bth.opcode.is_last:
                self.msn = (self.msn + 1) & PSN_MASK
                self._first_message_done = True
            if packet.bth.ack_request:
                self._schedule_ack(psn)
        elif psn_geq(psn, self.epsn):
            # Sequence gap: Go-back-N receiver NAKs the expected PSN,
            # once per gap (IB spec 9.7.5.2.8).
            self.nic.counters.incr("out_of_sequence")
            if not self._nak_sent_for_gap:
                self._nak_sent_for_gap = True
                self._cov_gbn.hit("gap-nak", self.sim.now)
                self._rec.note(self.sim.now, "gap-nak",
                               f"psn={psn} epsn={self.epsn}")
                self._schedule_nak(self.epsn)
        else:
            # Duplicate from a Go-back-N replay; re-ACK so the sender
            # can make progress if our ACK was lost.
            self.nic.counters.incr("duplicate_request")
            self._cov_gbn.hit("duplicate-request", self.sim.now)
            if packet.bth.ack_request:
                self._schedule_ack(psn)

    def _schedule_ack(self, psn: int) -> None:
        delay = self.nic.rng.jitter_ns(self.profile.ack_gen_ns,
                                       self.profile.latency_jitter_frac)
        self.sim.schedule(delay, self._emit_ack, psn, False)

    def _schedule_nak(self, psn: int) -> None:
        delay = self.nic.rng.jitter_ns(self.profile.nack_gen_write_ns,
                                       self.profile.latency_jitter_frac)
        self.sim.schedule(delay, self._emit_ack, psn, True)

    def _emit_ack(self, psn: int, nak: bool) -> None:
        if self.state is QpState.ERROR:
            return
        if nak:
            self.nic.counters.incr("nak_sent")
        self.nic.send_control(self._build_ack(psn, nak=nak))

    def _emit_rnr_nak(self, psn: int) -> None:
        self._rnr_nak_pending = False  # one RNR NAK per Send attempt
        if self.state is QpState.ERROR:
            return
        packet = self._headers(0, Opcode.ACKNOWLEDGE)
        packet.bth.psn = psn
        packet.aeth = AckExtendedHeader.rnr_nak(msn=self.msn)
        self.nic.send_control(self._finalize_lengths(packet))

    # ---- responder: Read requests -------------------------------------
    def _handle_read_request(self, packet: Packet) -> None:
        psn = packet.bth.psn
        reth = packet.reth
        if reth is None:
            return
        npkts = max(1, (reth.dma_length + self.mtu - 1) // self.mtu)
        if psn == self.epsn:
            self.epsn = psn_add(self.epsn, npkts)
            self._nak_sent_for_gap = False
            self._first_message_done = True
            self._cov_gbn.hit("read-in-order", self.sim.now)
            self._serve_read(psn, reth.dma_length, retransmit=False)
        elif psn_geq(psn, self.epsn):
            self.nic.counters.incr("out_of_sequence")
            if not self._nak_sent_for_gap:
                self._nak_sent_for_gap = True
                self._cov_gbn.hit("read-gap-nak", self.sim.now)
                self._rec.note(self.sim.now, "read-gap-nak",
                               f"psn={psn} epsn={self.epsn}")
                self._schedule_nak(self.epsn)
        else:
            # A re-issued (implied-NACK) or replayed Read request: serve
            # it again from the requested offset after the NACK-reaction
            # delay — this is the Fig. 9b latency.
            self.nic.counters.incr("duplicate_request")
            self._cov_gbn.hit("read-duplicate-retransmit", self.sim.now)
            self._rec.note(self.sim.now, "read-duplicate-retransmit",
                           f"psn={psn}")
            delay = self.nic.rng.jitter_ns(self.profile.nack_react_read_ns,
                                           self.profile.latency_jitter_frac)
            self.sim.schedule(delay, self._serve_read, psn, reth.dma_length, True)

    def _serve_read(self, first_psn: int, length: int, retransmit: bool) -> None:
        if self.state is QpState.ERROR:
            return
        npkts = max(1, (length + self.mtu - 1) // self.mtu)
        remaining = length
        for i in range(npkts):
            payload = min(self.mtu, remaining)
            remaining -= payload
            psn = psn_add(first_psn, i)
            template = _PacketTemplate(
                psn=psn,
                opcode=self._response_opcode(i, npkts),
                payload_len=payload,
                ack_request=False,
                wr_id=0,
            )
            self._resp_templates[psn] = template
            packet = self._build_from_template(template)
            if packet.bth.opcode in (Opcode.RDMA_READ_RESPONSE_LAST,
                                     Opcode.RDMA_READ_RESPONSE_ONLY):
                packet.aeth = AckExtendedHeader.ack(self.msn)
            if retransmit:
                self.nic.counters.incr("retransmitted_packets")
                self.nic._m_retrans.inc()
            self.pending_tx.append(packet)
        self.nic.notify_tx()

    # ---- requester: ACK / NAK -----------------------------------------
    def _handle_ack(self, packet: Packet) -> None:
        aeth = packet.aeth
        if aeth is None:
            return
        psn = packet.bth.psn
        if aeth.is_ack:
            self._cov_gbn.hit("ack-advance", self.sim.now)
            self._advance_una(psn_add(psn, 1))
        elif aeth.is_rnr:
            # Receiver not ready: back off for the RNR timer, then
            # resend from the NAK'd PSN (a separate retry budget from
            # the transport retry count, per the IB spec).
            self.nic.counters.incr("rnr_nak_received")
            self._cov_gbn.hit("rnr-nak-received", self.sim.now)
            self._advance_una(psn)
            self._rnr_retry_count += 1
            if self._rnr_retry_count > self.rnr_retry_limit:
                self._cov_gbn.hit("rnr-retry-exceeded", self.sim.now)
                self._rec.note(self.sim.now, "rnr-retry-exceeded",
                               f"retries={self._rnr_retry_count}")
                self._enter_error()
                return
            if not self._react_pending:
                self._react_pending = True
                self._cov_gbn.hit("rnr-backoff", self.sim.now)
                self._rec.note(self.sim.now, "rnr-backoff",
                               f"psn={psn} timer={self.rnr_timer_ns}")
                self.sim.schedule(self.rnr_timer_ns, self._rewind_to, psn, False)
        elif aeth.is_nak:
            self.nic.counters.incr("packet_seq_err")
            self._cov_gbn.hit("nak-rewind", self.sim.now)
            self._rec.note(self.sim.now, "nak-rewind", f"psn={psn}")
            self._advance_una(psn)  # everything before the NAK'd PSN is in
            self._schedule_rewind(psn)

    def _advance_una(self, new_una: int) -> None:
        if not psn_geq(new_una, self.snd_una) or new_una == self.snd_una:
            return
        for psn in self._iter_psns(self.snd_una, new_una):
            self._templates.pop(psn, None)
        self.snd_una = new_una
        self._note_progress()
        completed = [m for m in self._messages
                     if psn_geq(new_una, psn_add(m.last_psn, 1))]
        for message in completed:
            self._messages.remove(message)
            self._complete(message.wr, message.posted_at)
        if not self._outstanding():
            self._cancel_timeout()

    @staticmethod
    def _iter_psns(start: int, end: int):
        psn = start
        while psn != end:
            yield psn
            psn = psn_add(psn, 1)

    def _schedule_rewind(self, psn: int) -> None:
        """Go-back-N after the profile's NACK reaction latency (Fig. 9a)."""
        if self._react_pending:
            return
        self._react_pending = True
        delay = self.nic.rng.jitter_ns(self.profile.nack_react_write_ns,
                                       self.profile.latency_jitter_frac)
        self.sim.schedule(delay, self._rewind_to, psn, False)

    def _rewind_to(self, psn: int, from_timeout: bool) -> None:
        self._react_pending = False
        if from_timeout:
            # A timeout starts a fresh recovery round; a new implied
            # NACK may be generated for whatever gap remains.
            self._read_nak_outstanding = False
            self._read_gap_pending = False
        if self.state is QpState.ERROR:
            return
        if not psn_geq(psn, self.snd_una):
            psn = self.snd_una
        # Drop never-sent copies queued beyond the rewind point; they
        # will be regenerated in order.
        self.pending_tx = deque(
            p for p in self.pending_tx
            if not (p.bth.opcode.is_data or p.bth.opcode == Opcode.RDMA_READ_REQUEST)
            or not psn_geq(p.bth.psn, psn)
        )
        cursor = psn
        while cursor != self.next_psn:
            template = self._templates.get(cursor)
            if template is not None:
                self.pending_tx.append(self._build_from_template(template))
                cursor = psn_add(cursor, 1)
                continue
            read_range = self._find_read_range(cursor)
            if read_range is not None:
                offset = psn_distance(cursor, read_range.first_psn) * self.mtu
                length = read_range.wr.length - offset
                self.pending_tx.append(self._build_read_request(
                    cursor, read_range.base_address + offset, read_range.rkey, length))
                cursor = psn_add(read_range.last_psn, 1)
                continue
            cursor = psn_add(cursor, 1)
        self._arm_timeout()
        self.nic.notify_tx()

    def _find_read_range(self, psn: int) -> Optional[_ReadRange]:
        for read_range in self._read_ranges:
            if psn_geq(psn, read_range.first_psn) and psn_geq(read_range.last_psn, psn):
                return read_range
        return None

    # ---- requester: Read responses --------------------------------------
    def _handle_read_response(self, packet: Packet) -> None:
        if self._expected_resp_psn is None or not self._read_ranges:
            return
        psn = packet.bth.psn
        expected = self._expected_resp_psn
        if psn == expected:
            self._cov_gbn.hit("read-response-in-order", self.sim.now)
            self._read_nak_outstanding = False
            self._expected_resp_psn = psn_add(psn, 1)
            self._note_progress()
            head = self._read_ranges[0]
            if psn == head.last_psn:
                self._read_ranges.popleft()
                self._complete(head.wr, head.posted_at)
                if self._read_ranges:
                    nxt = self._read_ranges[0]
                    if not psn_geq(self._expected_resp_psn, nxt.first_psn):
                        self._expected_resp_psn = nxt.first_psn
                else:
                    self._expected_resp_psn = None
                    if not self._outstanding():
                        self._cancel_timeout()
        elif psn_geq(psn, expected):
            # Out-of-order Read response: the "implied NACK" path. The
            # requester re-issues a Read request for the missing range
            # after the (vendor-specific) NACK generation delay — this
            # is the Fig. 8b latency, 83 ms on E810.
            self.nic.counters.incr("implied_nak_seq_err")
            if not self._read_nak_outstanding:
                self._cov_gbn.hit("read-implied-nak", self.sim.now)
                self._rec.note(self.sim.now, "read-implied-nak",
                               f"psn={psn} expected={expected}")
                self.nic.note_read_loss_event(self)
                # One implied NACK per gap (mirrors the responder's
                # one-NAK-per-gap rule); a re-dropped retransmission is
                # recovered by the timeout, as the IB spec prescribes.
                self._read_nak_outstanding = True
                self._read_gap_pending = True
                delay = self.nic.rng.jitter_ns(self.profile.nack_gen_read_ns,
                                               self.profile.latency_jitter_frac)
                self.sim.schedule(delay, self._reissue_read_from, expected)
        # Duplicates (psn < expected) are silently dropped.

    def _reissue_read_from(self, psn: int) -> None:
        self._read_gap_pending = False
        if self.state is QpState.ERROR:
            return
        if self._expected_resp_psn is None or psn != self._expected_resp_psn:
            return  # the gap healed in the meantime
        read_range = self._find_read_range(psn)
        if read_range is None:
            return
        offset = psn_distance(psn, read_range.first_psn) * self.mtu
        length = read_range.wr.length - offset
        self.pending_tx.appendleft(self._build_read_request(
            psn, read_range.base_address + offset, read_range.rkey, length))
        self._arm_timeout()
        self.nic.notify_tx()

    # ------------------------------------------------------------------
    # Retransmission timer (spec §12.7.38 semantics + adaptive mode §6.3)
    # ------------------------------------------------------------------
    @property
    def base_timeout_ns(self) -> int:
        """4.096 µs * 2^timeout, the IB minimum retransmission timeout."""
        return int(4096 * (2 ** self.timeout_cfg))

    def _current_timeout_ns(self) -> int:
        if not self.adaptive_retrans:
            return self.base_timeout_ns
        ladder = self.profile.adaptive_timeout_ladder
        if not ladder:
            return self.base_timeout_ns
        if self._adaptive_stage < len(ladder):
            factor = ladder[self._adaptive_stage]
        else:
            # Beyond the measured ladder the timeout keeps doubling.
            factor = ladder[-1] * (2 ** (self._adaptive_stage - len(ladder) + 1))
        return max(4096, int(self.base_timeout_ns * factor))

    def _allowed_retries(self) -> int:
        if not self.adaptive_retrans:
            return self.retry_cnt
        if self._adaptive_retry_budget is None:
            lo, hi = self.profile.adaptive_extra_retries
            self._adaptive_retry_budget = self.retry_cnt + self.nic.rng.randint(lo, hi)
        return self._adaptive_retry_budget

    def _outstanding(self) -> bool:
        return self.snd_una != self.next_psn or bool(self._read_ranges)

    def _note_progress(self) -> None:
        self._last_progress = self.sim.now
        self.retry_count = 0
        self._rnr_retry_count = 0
        self._adaptive_stage = 0
        if self._outstanding():
            self._arm_timeout()

    def _arm_timeout(self) -> None:
        if self._timeout_event is not None:
            return
        if not self._outstanding():
            return
        self._timeout_event = self.sim.schedule(self._current_timeout_ns(),
                                                self._timeout_fired)
        self.nic._m_timer_arm.inc()

    def _cancel_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
            self.nic._m_timer_cancel.inc()

    def _timeout_fired(self) -> None:
        self._timeout_event = None
        if self.state is QpState.ERROR or not self._outstanding():
            return
        timeout = self._current_timeout_ns()
        elapsed = self.sim.now - self._last_progress
        if elapsed < timeout:
            # Progress happened since arming: re-arm for the remainder.
            self._cov_gbn.hit("timeout-rearm", self.sim.now)
            self._timeout_event = self.sim.schedule(timeout - elapsed, self._timeout_fired)
            return
        if self._read_gap_pending or self._react_pending:
            # The NIC is already in a loss-recovery slow path; hardware
            # defers the timer until that completes.
            self._cov_gbn.hit("timeout-deferred", self.sim.now)
            self._timeout_event = self.sim.schedule(timeout, self._timeout_fired)
            return
        self.nic.counters.incr("local_ack_timeout_err")
        self.nic._m_timeout.inc()
        self._cov_gbn.hit("timeout-retransmit", self.sim.now)
        self._rec.note(self.sim.now, "timeout-retransmit",
                       f"retry={self.retry_count + 1} psn={self.snd_una}")
        if self.nic._tel is not None:
            self.nic._tel.instant(
                "nic.retransmit", pid=self.nic.name,
                tid=f"qp-{self.qp_num:#x}", category="recovery",
                retry=self.retry_count + 1, psn=self.snd_una)
        self.retry_count += 1
        self._adaptive_stage += 1
        if self.retry_count > self._allowed_retries():
            self._cov_gbn.hit("retry-exceeded", self.sim.now)
            self._enter_error()
            return
        self._last_progress = self.sim.now
        rewind_psn = self.snd_una
        if self._read_ranges and self._expected_resp_psn is not None:
            head = self._read_ranges[0]
            if psn_geq(self._expected_resp_psn, head.first_psn) and \
                    not psn_geq(self._expected_resp_psn, psn_add(head.last_psn, 1)):
                rewind_psn = self._expected_resp_psn
        self._rewind_to(rewind_psn, True)

    def _enter_error(self) -> None:
        self.state = QpState.ERROR
        self.nic.counters.incr("qp_retry_exceeded")
        self._rec.note(self.sim.now, "qp-error",
                       f"retry={self.retry_count} "
                       f"rnr_retry={self._rnr_retry_count}")
        self._cancel_timeout()
        self.pending_tx.clear()
        for message in self._messages:
            self.cq.push(WorkCompletion(
                wr_id=message.wr.wr_id, verb=message.wr.verb,
                status=WcStatus.RETRY_EXC_ERR, qp_num=self.qp_num,
                length=message.wr.length, posted_at=message.posted_at,
                completed_at=self.sim.now,
            ))
        for read_range in self._read_ranges:
            self.cq.push(WorkCompletion(
                wr_id=read_range.wr.wr_id, verb=read_range.wr.verb,
                status=WcStatus.RETRY_EXC_ERR, qp_num=self.qp_num,
                length=read_range.wr.length, posted_at=read_range.posted_at,
                completed_at=self.sim.now,
            ))
        self._messages.clear()
        self._read_ranges.clear()

    def _complete(self, wr: WorkRequest, posted_at: int) -> None:
        self.bytes_completed += wr.length
        self.messages_completed += 1
        self.cq.push(WorkCompletion(
            wr_id=wr.wr_id, verb=wr.verb, status=WcStatus.SUCCESS,
            qp_num=self.qp_num, length=wr.length,
            posted_at=posted_at, completed_at=self.sim.now,
        ))

    @property
    def first_message_done(self) -> bool:
        """Responder-side: has a full message been received yet?

        The CX5 MigReq slow path stops applying to a QP once its first
        message completes (the NIC caches the connection, §6.2.3).
        """
        return self._first_message_done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QP {self.qp_num:#x} on {self.nic.name} state={self.state.value} "
                f"psn={self.next_psn} una={self.snd_una} epsn={self.epsn}>")
