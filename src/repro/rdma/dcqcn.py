"""DCQCN congestion control (Zhu et al., SIGCOMM 2015).

Both halves live here:

* :class:`DcqcnRp` — the reaction point: one instance per QP on the data
  sender. Cuts the sending rate when CNPs arrive and recovers through
  fast recovery / additive increase / hyper increase stages.
* :class:`CnpRateLimiter` — the notification-point side rate limiter
  that coalesces CNPs. Its *scope* is one of the hidden behaviours the
  paper uncovered (§6.3): CX4 Lx limits per destination IP, CX5/CX6 Dx
  per NIC port, and E810 per QP with a hidden ~50 µs floor.

All rates are bits/second; times are nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from ..coverage import runtime as coverage
from ..sim.engine import Simulator, US
from .profiles import CnpLimitMode, RnicProfile

__all__ = ["DcqcnParams", "DcqcnRp", "CnpRateLimiter"]


@dataclass(frozen=True)
class DcqcnParams:
    """Tunable DCQCN constants (defaults follow the paper's Table 1)."""

    g: float = 1.0 / 256.0
    #: Alpha-update timer K: alpha decays if no CNP arrives within K.
    alpha_timer_ns: int = 55 * US
    #: Rate-increase timer period T.
    increase_timer_ns: int = 300 * US
    #: Byte counter threshold for the byte-based increase trigger.
    byte_counter_bytes: int = 10 * 1024 * 1024
    #: Fast-recovery stages before additive increase starts.
    fast_recovery_rounds: int = 5
    #: Additive increase step.
    rai_bps: int = 40_000_000
    #: Hyper increase step.
    rhai_bps: int = 200_000_000
    #: Stages of additive increase before hyper increase kicks in.
    hyper_threshold: int = 5
    min_rate_bps: int = 10_000_000


class DcqcnRp:
    """Reaction-point rate machine for a single QP."""

    def __init__(self, sim: Simulator, line_rate_bps: int,
                 params: Optional[DcqcnParams] = None,
                 on_rate_change: Optional[Callable[[int], None]] = None):
        self.sim = sim
        self.params = params or DcqcnParams()
        self.line_rate_bps = line_rate_bps
        self.current_rate_bps = line_rate_bps
        self.target_rate_bps = line_rate_bps
        self.alpha = 1.0
        self.cnp_count = 0
        self._on_rate_change = on_rate_change
        self._alpha_timer = None
        self._increase_timer = None
        self._bytes_since_update = 0
        # Rate-increase stage counters (timer events and byte events).
        self._timer_rounds = 0
        self._byte_rounds = 0
        self._cov = coverage.current().domain("rdma.dcqcn")

    # ------------------------------------------------------------------
    def handle_cnp(self) -> None:
        """CNP received for this QP: cut the rate (DCQCN "cut" step)."""
        self.cnp_count += 1
        p = self.params
        self.target_rate_bps = self.current_rate_bps
        self.current_rate_bps = max(
            p.min_rate_bps,
            int(self.current_rate_bps * (1.0 - self.alpha / 2.0)),
        )
        self.alpha = (1.0 - p.g) * self.alpha + p.g
        self._timer_rounds = 0
        self._byte_rounds = 0
        self._bytes_since_update = 0
        self._cov.hit("cnp-rate-cut", self.sim.now)
        self._restart_timers()
        self._notify()

    def on_bytes_sent(self, nbytes: int) -> None:
        """Feed the byte counter that triggers byte-based rate increases."""
        if self.current_rate_bps >= self.line_rate_bps:
            return
        self._bytes_since_update += nbytes
        if self._bytes_since_update >= self.params.byte_counter_bytes:
            self._bytes_since_update = 0
            self._byte_rounds += 1
            self._cov.hit("byte-round", self.sim.now)
            self._increase()

    @property
    def rate_bps(self) -> int:
        return self.current_rate_bps

    # ------------------------------------------------------------------
    def _restart_timers(self) -> None:
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
        if self._increase_timer is not None:
            self._increase_timer.cancel()
        self._alpha_timer = self.sim.schedule(self.params.alpha_timer_ns, self._alpha_decay)
        self._increase_timer = self.sim.schedule(
            self.params.increase_timer_ns, self._timer_increase
        )

    def _alpha_decay(self) -> None:
        self.alpha = (1.0 - self.params.g) * self.alpha
        self._cov.hit("alpha-decay", self.sim.now)
        if self.current_rate_bps < self.line_rate_bps:
            self._alpha_timer = self.sim.schedule(self.params.alpha_timer_ns, self._alpha_decay)
        else:
            self._alpha_timer = None

    def _timer_increase(self) -> None:
        self._timer_rounds += 1
        self._cov.hit("timer-round", self.sim.now)
        self._increase()
        if self.current_rate_bps < self.line_rate_bps:
            self._increase_timer = self.sim.schedule(
                self.params.increase_timer_ns, self._timer_increase
            )
        else:
            self._increase_timer = None

    def _increase(self) -> None:
        """One rate-increase event (fast recovery / additive / hyper)."""
        p = self.params
        stage = max(self._timer_rounds, self._byte_rounds)
        if stage > p.fast_recovery_rounds:
            # Additive (or hyper) increase raises the target first.
            if min(self._timer_rounds, self._byte_rounds) > p.fast_recovery_rounds + p.hyper_threshold:
                self.target_rate_bps += p.rhai_bps
                self._cov.hit("hyper-increase", self.sim.now)
            else:
                self.target_rate_bps += p.rai_bps
                self._cov.hit("additive-increase", self.sim.now)
            self.target_rate_bps = min(self.target_rate_bps, self.line_rate_bps)
        else:
            self._cov.hit("fast-recovery", self.sim.now)
        # Round up so the rate actually converges onto the target
        # instead of sticking one bit below it forever.
        self.current_rate_bps = min(
            self.line_rate_bps,
            (self.target_rate_bps + self.current_rate_bps + 1) // 2,
        )
        self._notify()

    def _notify(self) -> None:
        if self._on_rate_change is not None:
            self._on_rate_change(self.current_rate_bps)


class CnpRateLimiter:
    """Notification-point CNP coalescing with a vendor-specific scope.

    One instance per NIC. :meth:`allow` returns True when a CNP may be
    generated right now for congestion observed on ``qp_num`` / traffic
    from ``src_ip``, applying the profile's scope and minimum interval.
    """

    def __init__(self, profile: RnicProfile,
                 configured_interval_ns: Optional[int] = None):
        self.profile = profile
        self._last_cnp: Dict[Hashable, int] = {}
        self.suppressed = 0
        if configured_interval_ns is not None and profile.min_time_between_cnps_configurable:
            configured = configured_interval_ns
        else:
            configured = profile.min_time_between_cnps_ns
        # A hidden hardware floor (E810's ~50 µs) wins over any config.
        self.effective_interval_ns = max(configured, profile.hidden_cnp_interval_ns)

    def _key(self, qp_num: int, src_ip: int) -> Hashable:
        mode = self.profile.cnp_limit_mode
        if mode == CnpLimitMode.PER_QP:
            return ("qp", qp_num)
        if mode == CnpLimitMode.PER_IP:
            return ("ip", src_ip)
        if mode == CnpLimitMode.PER_PORT:
            return ("port",)
        raise ValueError(f"unknown CNP limit mode: {mode}")

    def allow(self, now: int, qp_num: int, src_ip: int) -> bool:
        """Whether a CNP may be sent now; updates limiter state if so."""
        key = self._key(qp_num, src_ip)
        last = self._last_cnp.get(key)
        if last is not None and now - last < self.effective_interval_ns:
            self.suppressed += 1
            return False
        self._last_cnp[key] = now
        return True
