"""The RNIC node: RX/TX pipelines around the queue pairs.

This is the "hardware network stack under test". The TX side arbitrates
across QPs with the ETS scheduler and enforces per-QP DCQCN pacing; the
RX side validates iCRC, runs the DCQCN notification point (CNP
generation with the vendor's rate-limiting scope) and dispatches to QPs
after the profile's RX pipeline delay.

Two vendor-confirmed bugs live in the RX path because that is where
they physically occur:

* **Noisy neighbor** (§6.2.2, CX4 Lx): when too many QPs are in the
  Read loss-recovery slow path at once, the whole pipeline stalls and
  every arriving packet — whoever it belongs to — is discarded
  (visible as ``rx_discards_phy``).
* **MigReq slow path** (§6.2.3, CX5): packets carrying MigReq=0 are
  diverted to a slow path with a small buffer; many QPs starting
  simultaneously overflow it, so first messages get discarded.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..coverage import runtime as coverage
from ..net.headers import Opcode, ECN_CE
from ..net.link import Node, Port, gbps
from ..net.packet import Packet
from ..sim.engine import Simulator, MS
from ..sim.rng import SimRandom
from ..telemetry import runtime as telemetry
from .counters import NicCounters
from .dcqcn import CnpRateLimiter, DcqcnParams
from .ets import EtsQueueConfig, EtsScheduler
from .profiles import RnicProfile
from .qp import QueuePair
from .verbs import CompletionQueue

__all__ = ["RdmaNic"]

#: Width of the sliding window used to detect *concurrent* Read-loss
#: slow-path activations for the noisy-neighbor stall.
_READ_LOSS_WINDOW_NS = 1 * MS


class RdmaNic(Node):
    """A host NIC with a hardware-offloaded RoCEv2 stack."""

    def __init__(self, sim: Simulator, name: str, profile: RnicProfile,
                 rng: SimRandom, bandwidth_gbps: Optional[float] = None,
                 mtu: int = 1024,
                 min_time_between_cnps_ns: Optional[int] = None,
                 dcqcn_rp_enable: bool = True,
                 dcqcn_np_enable: bool = True,
                 adaptive_retrans: bool = False):
        super().__init__(sim, name)
        self.profile = profile
        self.rng = rng.child(f"nic/{name}")
        self.mtu = mtu
        bandwidth = gbps(bandwidth_gbps or profile.default_bandwidth_gbps)
        self.port: Port = self.add_port(bandwidth, name=f"{name}.eth0")
        self.mac = self.rng.randint(0x02_00_00_00_00_00, 0x02_FF_FF_FF_FF_FF)
        #: IP -> MAC resolution table, populated by the testbed builder.
        self.arp: Dict[int, int] = {}
        self.ip_list: List[int] = []

        self.counters = NicCounters(profile.counter_names, profile.stuck_counters)
        self.ets = EtsScheduler(bandwidth, work_conserving=profile.ets_work_conserving)
        self.dcqcn_params = DcqcnParams()
        self.dcqcn_rp_enable = dcqcn_rp_enable
        self.dcqcn_np_enable = dcqcn_np_enable
        self.adaptive_retrans_default = adaptive_retrans
        self.cnp_limiter = CnpRateLimiter(profile, min_time_between_cnps_ns)

        self.qps: Dict[int, QueuePair] = {}
        self._control_queue: Deque[Packet] = deque()
        self._tx_busy_until = 0
        self._kick_event = None
        self._kick_time: Optional[int] = None

        # Noisy-neighbor stall state: (time, qp_num) of recent slow-path
        # entries; the stall triggers on *distinct QPs* in the window.
        self._read_loss_events: Deque[tuple] = deque()
        self._stall_until = 0
        self.pipeline_stalls = 0

        # MigReq slow-path state: QPNs holding a slow-path context.
        self._migreq_contexts: set = set()
        self.migreq_slowpath_packets = 0

        # RX pipeline ordering: per-packet latency jitter must never
        # reorder packets (the pipeline is a FIFO in hardware).
        self._rx_dispatch_floor = 0

        # Telemetry handles, shared by this NIC's QPs (no-op twins when
        # telemetry is disabled — see repro.telemetry).
        tel = telemetry.current()
        self._tel = telemetry.active()
        self._m_retrans = tel.counter("nic_retransmitted_packets", host=name)
        self._m_timer_arm = tel.counter("nic_timer_armed", host=name)
        self._m_timer_cancel = tel.counter("nic_timer_cancelled", host=name)
        self._m_timeout = tel.counter("nic_timeout_fired", host=name)
        self._m_cnp_sent = tel.counter("nic_cnp_sent", host=name)
        self._m_cnp_handled = tel.counter("nic_cnp_handled", host=name)
        self._m_rate_updates = tel.counter("nic_dcqcn_rate_updates", host=name)
        self._m_rate = tel.gauge("nic_dcqcn_rate_bps", host=name)

        # Coverage handles, shared with this NIC's QPs (no-op twins when
        # coverage is disabled — see repro.coverage).
        cov = coverage.current()
        self._cov_nic = cov.domain("rdma.nic")
        self._cov_gbn = cov.domain("rdma.gbn")
        self._rec = cov.recorder(f"nic:{name}")

    # ------------------------------------------------------------------
    # QP management
    # ------------------------------------------------------------------
    def create_qp(self, cq: CompletionQueue, src_ip: int,
                  mtu: Optional[int] = None) -> QueuePair:
        """Allocate a QP with runtime-random QPN and initial PSN (§3.2)."""
        qp_num = self.rng.qpn()
        while qp_num in self.qps:
            qp_num = self.rng.qpn()
        qp = QueuePair(self, qp_num, self.rng.psn(), cq, src_ip,
                       mtu=mtu or self.mtu)
        qp.adaptive_retrans = (self.adaptive_retrans_default
                               and self.profile.supports_adaptive_retrans)
        qp.dcqcn_enabled = self.dcqcn_rp_enable
        self.qps[qp_num] = qp
        self.ets.assign(qp, 0)
        return qp

    def configure_ets(self, configs: List[EtsQueueConfig]) -> None:
        """Install ETS traffic classes and remap existing QPs to queue 0."""
        existing = list(self.qps.values())
        self.ets.configure(configs)
        for qp in existing:
            self.ets.assign(qp, configs[0].index)

    def resolve_mac(self, ip: int) -> int:
        return self.arp.get(ip, 0xFF_FF_FF_FF_FF_FF)

    # ------------------------------------------------------------------
    # RX path
    # ------------------------------------------------------------------
    def handle_packet(self, port: Port, packet: Packet) -> None:
        now = self.sim.now
        if now < self._stall_until:
            # Noisy-neighbor stall: the pipeline discards everything.
            self.counters.incr("rx_discards_phy")
            self._cov_nic.hit("stall-discard", now)
            return
        if packet.bth is None:
            return
        counters = self.counters
        counters.incr("rx_packets")
        counters.incr("rx_bytes", packet.size)
        if not packet.icrc_ok:
            counters.incr("rx_icrc_errors")
            self._cov_nic.hit("icrc-discard", now)
            self._rec.note(now, "icrc-discard",
                           f"qpn={packet.bth.dest_qp} psn={packet.bth.psn}")
            return
        if self._divert_to_migreq_slowpath(packet):
            return
        profile = self.profile
        delay = self.rng.jitter_ns(profile.rx_pipeline_ns,
                                   profile.latency_jitter_frac)
        dispatch_at = now + delay
        if dispatch_at < self._rx_dispatch_floor:
            dispatch_at = self._rx_dispatch_floor
        self._rx_dispatch_floor = dispatch_at
        self.sim.schedule_at(dispatch_at, self._dispatch, packet)

    def _divert_to_migreq_slowpath(self, packet: Packet) -> bool:
        """CX5 MigReq=0 slow path (§6.2.3). Returns True if diverted."""
        if not self.profile.migreq_zero_slow_path:
            return False
        if packet.bth.migreq:
            return False
        opcode = packet.bth.opcode
        if not (opcode.is_send or opcode.is_write or opcode == Opcode.RDMA_READ_REQUEST):
            return False
        qp = self.qps.get(packet.bth.dest_qp)
        if qp is None:
            return False
        if qp.first_message_done:
            # The NIC has cached this connection; later messages take
            # the fast path — which is why the paper sees drops mostly
            # on the *first* message of each QP.
            return False
        # Connections whose first message completed release their
        # slow-path context (the fast-path cache took over).
        self._migreq_contexts = {
            qpn for qpn in self._migreq_contexts
            if qpn in self.qps and not self.qps[qpn].first_message_done
        }
        if packet.bth.dest_qp not in self._migreq_contexts:
            if len(self._migreq_contexts) >= self.profile.migreq_slow_path_contexts:
                # Context table full: the APM slow path cannot admit
                # another new connection and the port discards.
                self.counters.incr("rx_discards_phy")
                self._cov_nic.hit("migreq-context-full-discard", self.sim.now)
                self._rec.note(self.sim.now, "migreq-context-full-discard",
                               f"qpn={packet.bth.dest_qp}")
                return True
            self._migreq_contexts.add(packet.bth.dest_qp)
        self.migreq_slowpath_packets += 1
        self._cov_nic.hit("migreq-slow-path", self.sim.now)
        delay = self.rng.jitter_ns(
            self.profile.rx_pipeline_ns + self.profile.migreq_slow_path_service_ns,
            self.profile.latency_jitter_frac)
        dispatch_at = max(self.sim.now + delay, self._rx_dispatch_floor)
        self._rx_dispatch_floor = dispatch_at
        self.sim.schedule_at(dispatch_at, self._dispatch, packet)
        return True

    def _dispatch(self, packet: Packet) -> None:
        qp = self.qps.get(packet.bth.dest_qp)
        if qp is None:
            return
        if packet.bth.opcode == Opcode.CNP:
            qp.handle_cnp()
            return
        if packet.ip is not None and packet.ip.ecn == ECN_CE and packet.bth.opcode.is_data:
            self._notification_point(qp, packet)
        qp.receive(packet)

    def _notification_point(self, qp: QueuePair, packet: Packet) -> None:
        """DCQCN NP: maybe generate a CNP for an ECN-marked data packet."""
        self.counters.incr("ecn_marked_packets")
        self._cov_nic.hit("ecn-marked-rx", self.sim.now)
        if not self.dcqcn_np_enable:
            return
        if not self.cnp_limiter.allow(self.sim.now, qp.qp_num, qp.dest_ip):
            self._cov_nic.hit("cnp-suppressed", self.sim.now)
            return
        self.counters.incr("cnp_sent")
        self._m_cnp_sent.inc()
        self._cov_nic.hit("cnp-sent", self.sim.now)
        cnp = qp.build_cnp()
        self.sim.schedule(self.rng.jitter_ns(500, 0.2), self.send_control, cnp)

    def on_dcqcn_rate_change(self, rate_bps: int) -> None:
        """Telemetry sink for per-QP DCQCN reaction-point rate updates."""
        self._m_rate_updates.inc()
        self._m_rate.set(rate_bps)

    # ------------------------------------------------------------------
    # Noisy-neighbor stall (§6.2.2)
    # ------------------------------------------------------------------
    def note_read_loss_event(self, qp: QueuePair) -> None:
        """A QP entered the Read loss-recovery slow path."""
        threshold = self.profile.pipeline_stall_read_loss_threshold
        if threshold is None:
            return
        now = self.sim.now
        self._read_loss_events.append((now, qp.qp_num))
        while self._read_loss_events and \
                now - self._read_loss_events[0][0] > _READ_LOSS_WINDOW_NS:
            self._read_loss_events.popleft()
        distinct_qps = {qp_num for _, qp_num in self._read_loss_events}
        if len(distinct_qps) >= threshold:
            self._stall_until = max(self._stall_until,
                                    now + self.profile.pipeline_stall_duration_ns)
            self.pipeline_stalls += 1
            self._cov_nic.hit("noisy-neighbor-stall", now)
            self._rec.note(now, "noisy-neighbor-stall",
                           f"qps={len(distinct_qps)} "
                           f"until={self._stall_until}")
            self._read_loss_events.clear()

    # ------------------------------------------------------------------
    # TX path
    # ------------------------------------------------------------------
    def send_control(self, packet: Packet) -> None:
        """Queue an ACK/NAK/CNP; control traffic bypasses ETS and pacing."""
        self._control_queue.append(packet)
        self.notify_tx()

    def notify_tx(self) -> None:
        """A QP has work queued: make sure the TX loop will run."""
        self._request_kick(self.sim.now)

    def _request_kick(self, at: int) -> None:
        at = max(at, self.sim.now)
        if self._kick_event is not None and self._kick_time is not None \
                and self._kick_time <= at:
            return
        if self._kick_event is not None:
            self._kick_event.cancel()
        self._kick_time = at
        self._kick_event = self.sim.schedule_at(at, self._tx_loop)

    def _tx_loop(self) -> None:
        self._kick_event = None
        self._kick_time = None
        now = self.sim.now
        if self._tx_busy_until > now:
            self._request_kick(self._tx_busy_until)
            return
        if self._control_queue:
            self._transmit(self._control_queue.popleft(), None)
            return
        qp, next_time = self.ets.select(now)
        if qp is not None:
            self._transmit(qp.dequeue_tx(), qp)
        elif next_time is not None:
            self._request_kick(next_time)

    def _transmit(self, packet: Packet, qp: Optional[QueuePair]) -> None:
        now = self.sim.now
        size = packet.size
        port = self.port
        port.send(packet)
        counters = self.counters
        counters.incr("tx_packets")
        counters.incr("tx_bytes", size)
        busy_until = now + port.serialization_delay_ns(size)
        self._tx_busy_until = busy_until
        if qp is not None:
            self.ets.account(qp, now, size)
        self._request_kick(busy_until)
