"""Enhanced Transmission Selection (IEEE 802.1Qaz) egress scheduler.

A hierarchical scheduler: strict-priority queues drain first; the
remaining bandwidth is shared between weighted queues. The spec requires
*work conservation* — a weighted queue that cannot use its guaranteed
share must yield the leftover to other queues.

The model implements both the spec-compliant scheduler and the CX6 Dx
bug (§6.2.1): with ``work_conserving=False`` every weighted queue is
additionally clamped by a shaper at its guaranteed rate, so spare
bandwidth from an underusing queue is simply wasted — exactly the
behaviour Figure 10 exposes.

Weighted sharing uses virtual finish times (start-time fair queueing),
which is how NIC hardware approximates weighted fair queueing; per-QP
round-robin inside a queue keeps co-mapped QPs fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .qp import QueuePair

__all__ = ["EtsQueueConfig", "EtsScheduler"]

_INFINITY = float("inf")


@dataclass(frozen=True)
class EtsQueueConfig:
    """Static configuration of one ETS traffic class."""

    index: int
    weight: float = 0.0          # share of line rate for weighted queues
    strict_priority: bool = False

    def __post_init__(self) -> None:
        if self.strict_priority:
            if self.weight:
                raise ValueError("strict-priority queues take no weight")
        elif not 0.0 < self.weight <= 1.0:
            raise ValueError(f"queue {self.index}: weight must be in (0, 1]")


class _Queue:
    """Runtime state of one traffic class."""

    def __init__(self, config: EtsQueueConfig, line_rate_bps: int):
        self.config = config
        self.qps: List["QueuePair"] = []
        self._rr_next = 0
        self.virtual_finish = 0.0
        # Shaper used only in the non-work-conserving (buggy) mode.
        self.shaper_free_at = 0
        self.guaranteed_bps = int(config.weight * line_rate_bps) or line_rate_bps
        self.bytes_sent = 0

    def backlogged_qps(self) -> List["QueuePair"]:
        return [qp for qp in self.qps if qp.has_pending_tx()]

    def pick_qp(self, now: int) -> Tuple[Optional["QueuePair"], float]:
        """Round-robin over this queue's QPs honouring per-QP pacing.

        Returns (qp, _) when some QP can send now, else (None,
        earliest-eligible-time) over backlogged QPs (inf if none).
        """
        if not self.qps:
            return None, _INFINITY
        n = len(self.qps)
        earliest = _INFINITY
        for offset in range(n):
            qp = self.qps[(self._rr_next + offset) % n]
            if not qp.has_pending_tx():
                continue
            ready_at = qp.pacing_ready_at
            if ready_at <= now:
                self._rr_next = (self._rr_next + offset + 1) % n
                return qp, float(now)
            earliest = min(earliest, ready_at)
        return None, earliest


class EtsScheduler:
    """Egress arbiter across ETS traffic classes."""

    def __init__(self, line_rate_bps: int, work_conserving: bool = True):
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        self.line_rate_bps = line_rate_bps
        self.work_conserving = work_conserving
        self._queues: Dict[int, _Queue] = {}
        self._strict_order: List[int] = []
        self._weighted_order: List[int] = []
        # Default single best-effort queue so NICs work unconfigured.
        self.configure([EtsQueueConfig(index=0, weight=1.0)])

    def configure(self, configs: List[EtsQueueConfig]) -> None:
        """Install traffic classes (replaces any previous configuration)."""
        if not configs:
            raise ValueError("at least one ETS queue is required")
        indices = [c.index for c in configs]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate ETS queue index")
        weights = sum(c.weight for c in configs if not c.strict_priority)
        if weights > 1.0 + 1e-9:
            raise ValueError(f"ETS weights sum to {weights:.2f} > 1")
        self._queues = {c.index: _Queue(c, self.line_rate_bps) for c in configs}
        self._strict_order = sorted(i for i in indices if self._queues[i].config.strict_priority)
        self._weighted_order = sorted(i for i in indices if not self._queues[i].config.strict_priority)

    def assign(self, qp: "QueuePair", queue_index: int) -> None:
        """Map a QP to a traffic class (Fig. 10's "map two QPs to ...")."""
        if queue_index not in self._queues:
            raise KeyError(f"no ETS queue {queue_index}")
        for queue in self._queues.values():
            if qp in queue.qps:
                queue.qps.remove(qp)
        self._queues[queue_index].qps.append(qp)
        qp.ets_queue_index = queue_index

    def queue_bytes_sent(self, queue_index: int) -> int:
        return self._queues[queue_index].bytes_sent

    # ------------------------------------------------------------------
    def select(self, now: int) -> Tuple[Optional["QueuePair"], Optional[int]]:
        """Choose the QP allowed to transmit next.

        Returns ``(qp, None)`` when a QP may send immediately, or
        ``(None, t)`` with the earliest future time a blocked QP becomes
        eligible (``None`` if nothing is backlogged at all).
        """
        earliest = _INFINITY

        # Strict-priority classes first, in index order.
        for index in self._strict_order:
            qp, when = self._queues[index].pick_qp(now)
            if qp is not None:
                return qp, None
            earliest = min(earliest, when)

        # Weighted classes: eligible queue with the smallest virtual
        # finish time wins; the buggy mode additionally requires the
        # queue's own shaper to have credit.
        best: Optional[_Queue] = None
        best_qp: Optional["QueuePair"] = None
        for index in self._weighted_order:
            queue = self._queues[index]
            # Truthiness only — avoid backlogged_qps()'s list build on
            # the per-transmission path.
            if not any(qp.has_pending_tx() for qp in queue.qps):
                continue
            if not self.work_conserving and queue.shaper_free_at > now:
                earliest = min(earliest, queue.shaper_free_at)
                continue
            qp, when = queue.pick_qp(now)
            if qp is None:
                earliest = min(earliest, when)
                continue
            if best is None or queue.virtual_finish < best.virtual_finish:
                best, best_qp = queue, qp
        if best_qp is not None:
            return best_qp, None
        if earliest is _INFINITY:
            return None, None
        return None, int(earliest)

    def account(self, qp: "QueuePair", now: int, size_bytes: int) -> None:
        """Charge a transmitted packet to the QP's traffic class."""
        queue = self._queues.get(getattr(qp, "ets_queue_index", 0))
        if queue is None:
            return
        queue.bytes_sent += size_bytes
        if queue.config.strict_priority:
            return
        share = queue.config.weight or 1.0
        cost = size_bytes * 8.0 / (share * self.line_rate_bps)
        queue.virtual_finish = max(queue.virtual_finish, now / 1e9) + cost
        if not self.work_conserving:
            # The bug: the queue may never exceed its guaranteed rate,
            # even when every other queue is idle.
            ser = size_bytes * 8 * 1_000_000_000 // queue.guaranteed_bps
            queue.shaper_free_at = max(queue.shaper_free_at, now) + ser
