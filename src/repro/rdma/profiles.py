"""Per-vendor RNIC behaviour profiles.

Real RNICs differ in micro-behaviours that are invisible in spec sheets
— that observation is the heart of the paper. Each profile below
encodes, as plain data, the measured latencies, hidden behaviours and
vendor-confirmed bugs Lumina discovered for one NIC model (§6), plus an
``IDEAL`` reference profile that is spec-compliant everywhere and is
used to validate the analyzers.

The numbers come straight from the paper's measurements:

* Fig. 8/9 — NACK generation / reaction latencies per verb.
* §6.2.1   — CX6 Dx ETS scheduler is not work conserving.
* §6.2.2   — CX4 Lx RX pipeline stalls when ≥12 Read flows hit drops.
* §6.2.3   — E810 sends MigReq=0; CX5 takes a slow path on MigReq=0.
* §6.2.4   — E810 ``cnpSent`` and CX4 ``implied_nak_seq_err`` stuck.
* §6.3     — CNP interval (NVIDIA 4 µs configurable, E810 hidden 50 µs),
             CNP rate-limit scope (per-IP / per-port / per-QP), and the
             adaptive-retransmission timeout ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple

from ..sim.engine import US, MS

__all__ = [
    "RnicProfile",
    "IDEAL",
    "CX4_LX",
    "CX5",
    "CX6_DX",
    "E810",
    "PROFILES",
    "get_profile",
    "CnpLimitMode",
]


class CnpLimitMode:
    """Scope at which the NP's CNP rate limiter coalesces CNPs (§6.3)."""

    PER_IP = "per_ip"      # CX4 Lx: per destination IP
    PER_PORT = "per_port"  # CX5 / CX6 Dx: one limiter for the whole port
    PER_QP = "per_qp"      # E810: per queue pair

    ALL = (PER_IP, PER_PORT, PER_QP)


#: NVIDIA mlx5 counter names for the canonical counters we model.
_NVIDIA_COUNTER_NAMES = {
    "cnp_sent": "np_cnp_sent",
    "cnp_handled": "rp_cnp_handled",
    "ecn_marked_packets": "np_ecn_marked_roce_packets",
    "packet_seq_err": "packet_seq_err",
    "implied_nak_seq_err": "implied_nak_seq_err",
    "out_of_sequence": "out_of_sequence",
    "local_ack_timeout_err": "local_ack_timeout_err",
    "rx_icrc_errors": "rx_icrc_encapsulated",
    "rx_discards_phy": "rx_discards_phy",
    "duplicate_request": "duplicate_request",
}

#: Intel irdma counter names.
_INTEL_COUNTER_NAMES = {
    "cnp_sent": "cnpSent",
    "cnp_handled": "cnpHandled",
    "ecn_marked_packets": "RxECNMrkd",
    "packet_seq_err": "rxSeqErr",
    "implied_nak_seq_err": "impliedNak",
    "out_of_sequence": "rxOOO",
    "local_ack_timeout_err": "txRetryTimeout",
    "rx_icrc_errors": "rxICRCErr",
    "rx_discards_phy": "rx_discards",
    "duplicate_request": "rxDupReq",
}


@dataclass(frozen=True)
class RnicProfile:
    """All behavioural knobs of one RNIC model.

    Latency fields are nanoseconds and represent the mean of the
    measured distribution; a small reproducible jitter
    (``latency_jitter_frac``) is applied around them at runtime.
    """

    name: str
    vendor: str
    default_bandwidth_gbps: float

    # --- basic pipeline latencies -------------------------------------
    tx_pipeline_ns: int = 1_000       # WQE fetch and DMA to wire
    rx_pipeline_ns: int = 1_000       # wire to completion processing
    ack_gen_ns: int = 1_000           # in-order data packet -> ACK out

    # --- retransmission micro-behaviours (Fig. 8 / Fig. 9) -------------
    nack_gen_write_ns: int = 2 * US
    nack_gen_read_ns: int = 2 * US
    nack_react_write_ns: int = 3 * US
    nack_react_read_ns: int = 3 * US
    latency_jitter_frac: float = 0.10

    # --- DCQCN / CNP (§6.3) --------------------------------------------
    cnp_limit_mode: str = CnpLimitMode.PER_PORT
    min_time_between_cnps_ns: int = 4 * US
    min_time_between_cnps_configurable: bool = True
    #: A floor the NIC silently enforces no matter the configuration
    #: (the E810 hidden ~50 µs interval). 0 means no hidden floor.
    hidden_cnp_interval_ns: int = 0

    # --- ETS scheduler (§6.2.1) ----------------------------------------
    #: False reproduces the CX6 Dx bug: each ETS queue is strictly capped
    #: at its guaranteed bandwidth regardless of other queues' usage.
    ets_work_conserving: bool = True

    # --- noisy neighbor (§6.2.2) ---------------------------------------
    #: When this many QPs are concurrently in the Read loss-recovery slow
    #: path, the whole RX pipeline stalls and arriving packets are
    #: discarded. ``None`` disables the bug.
    pipeline_stall_read_loss_threshold: Optional[int] = None
    pipeline_stall_duration_ns: int = 2 * MS

    # --- automatic path migration field (§6.2.3) ------------------------
    #: Value of the BTH MigReq bit on generated packets. Spec says 1 in
    #: the initial state; E810 sends 0.
    migreq_initial: int = 1
    #: True reproduces CX5's behaviour: packets arriving with MigReq=0
    #: are diverted to an APM slow path that holds per-connection
    #: contexts in a small table. Once the table is full, packets of
    #: further new connections are discarded at the port — which is why
    #: the paper sees drops appear when 16 QPs start simultaneously and
    #: concentrate on each QP's first message.
    migreq_zero_slow_path: bool = False
    #: Extra per-packet latency of the MigReq slow path.
    migreq_slow_path_service_ns: int = 3 * US
    #: Concurrent new connections the slow path can track.
    migreq_slow_path_contexts: int = 15

    # --- counter bugs (§6.2.4) ------------------------------------------
    stuck_counters: FrozenSet[str] = frozenset()

    # --- adaptive retransmission (§6.3) ----------------------------------
    supports_adaptive_retrans: bool = False
    #: Multipliers applied to the configured base timeout for successive
    #: timeout retransmissions when adaptive mode is on. The CX6 Dx
    #: ladder measured in the paper (timeout=14 → base 67.1 ms):
    #: 5.6 / 4.1 / 8.4 / 16.7 / 25.1 / 67.1 / 134.2 ms.
    adaptive_timeout_ladder: Tuple[float, ...] = ()
    #: Extra retries beyond the configured retry_cnt that adaptive mode
    #: performs (paper: retry_cnt=7 observed as 8–13 attempts). The
    #: actual value is drawn reproducibly from this inclusive range.
    adaptive_extra_retries: Tuple[int, int] = (0, 0)

    # --- counter naming ---------------------------------------------------
    counter_names: Dict[str, str] = field(default_factory=dict)

    def with_overrides(self, **kwargs) -> "RnicProfile":
        """A copy of the profile with selected fields replaced.

        Used by ablation benchmarks, e.g. "CX6 Dx with a work-conserving
        ETS" to quantify the cost of the bug.
        """
        return replace(self, **kwargs)


IDEAL = RnicProfile(
    name="ideal",
    vendor="reference",
    default_bandwidth_gbps=100.0,
    nack_gen_write_ns=1 * US,
    nack_gen_read_ns=1 * US,
    nack_react_write_ns=1 * US,
    nack_react_read_ns=1 * US,
    latency_jitter_frac=0.0,
    cnp_limit_mode=CnpLimitMode.PER_QP,
    min_time_between_cnps_ns=0,
)

CX4_LX = RnicProfile(
    name="cx4",
    vendor="nvidia",
    default_bandwidth_gbps=40.0,
    nack_gen_write_ns=4 * US,
    nack_gen_read_ns=150 * US,
    nack_react_write_ns=170 * US,
    nack_react_read_ns=170 * US,
    cnp_limit_mode=CnpLimitMode.PER_IP,
    pipeline_stall_read_loss_threshold=12,
    pipeline_stall_duration_ns=2 * MS,
    stuck_counters=frozenset({"implied_nak_seq_err"}),
    supports_adaptive_retrans=True,
    adaptive_timeout_ladder=(1 / 12, 1 / 16, 1 / 8, 1 / 4, 3 / 8, 1.0, 2.0),
    adaptive_extra_retries=(1, 6),
    counter_names=_NVIDIA_COUNTER_NAMES,
)

CX5 = RnicProfile(
    name="cx5",
    vendor="nvidia",
    default_bandwidth_gbps=100.0,
    nack_gen_write_ns=2 * US,
    nack_gen_read_ns=2 * US,
    nack_react_write_ns=4 * US,
    nack_react_read_ns=3 * US,
    cnp_limit_mode=CnpLimitMode.PER_PORT,
    migreq_zero_slow_path=True,
    supports_adaptive_retrans=True,
    adaptive_timeout_ladder=(1 / 12, 1 / 16, 1 / 8, 1 / 4, 3 / 8, 1.0, 2.0),
    adaptive_extra_retries=(1, 6),
    counter_names=_NVIDIA_COUNTER_NAMES,
)

CX6_DX = RnicProfile(
    name="cx6",
    vendor="nvidia",
    default_bandwidth_gbps=100.0,
    nack_gen_write_ns=2 * US,
    nack_gen_read_ns=2 * US,
    nack_react_write_ns=5 * US,
    nack_react_read_ns=3 * US,
    cnp_limit_mode=CnpLimitMode.PER_PORT,
    ets_work_conserving=False,
    supports_adaptive_retrans=True,
    adaptive_timeout_ladder=(1 / 12, 1 / 16, 1 / 8, 1 / 4, 3 / 8, 1.0, 2.0),
    adaptive_extra_retries=(1, 6),
    counter_names=_NVIDIA_COUNTER_NAMES,
)

E810 = RnicProfile(
    name="e810",
    vendor="intel",
    default_bandwidth_gbps=100.0,
    nack_gen_write_ns=10 * US,
    nack_gen_read_ns=83 * MS,
    nack_react_write_ns=100 * US,
    nack_react_read_ns=90 * US,
    cnp_limit_mode=CnpLimitMode.PER_QP,
    min_time_between_cnps_ns=0,
    min_time_between_cnps_configurable=False,
    hidden_cnp_interval_ns=50 * US,
    migreq_initial=0,
    stuck_counters=frozenset({"cnp_sent"}),
    supports_adaptive_retrans=False,
    counter_names=_INTEL_COUNTER_NAMES,
)

PROFILES: Dict[str, RnicProfile] = {
    p.name: p for p in (IDEAL, CX4_LX, CX5, CX6_DX, E810)
}


def get_profile(name: str) -> RnicProfile:
    """Look up a profile by the short name used in host configs (§3.2)."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown NIC type {name!r}; known: {sorted(PROFILES)}"
        ) from None
