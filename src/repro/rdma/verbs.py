"""Verbs-layer objects: work requests, completions and completion queues.

Mirrors the slice of libibverbs the paper's traffic generator uses
(§3.2, §5): RC transport, Send/Recv, Write and Read verbs, completion
queues polled by the application, and memory regions with rkeys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

__all__ = [
    "Verb",
    "WorkRequest",
    "WcStatus",
    "WorkCompletion",
    "CompletionQueue",
    "MemoryRegion",
]

_wr_ids = itertools.count(1)
_mr_keys = itertools.count(0x1000)


class Verb(str, Enum):
    """RDMA verbs supported by the traffic generator."""

    SEND = "send"
    WRITE = "write"
    READ = "read"

    @property
    def data_from_responder(self) -> bool:
        """True when the responder generates the data packets (§3.3).

        For Read the responder streams the data back; for Send/Write the
        requester does — which decides the direction the event injector
        must target.
        """
        return self is Verb.READ


class WcStatus(str, Enum):
    """Completion status codes (subset of ibv_wc_status)."""

    SUCCESS = "success"
    RETRY_EXC_ERR = "retry_exceeded"
    WR_FLUSH_ERR = "flushed"


@dataclass
class MemoryRegion:
    """A registered memory region; only its geometry matters here."""

    address: int
    length: int
    rkey: int = field(default_factory=lambda: next(_mr_keys))

    def contains(self, address: int, length: int) -> bool:
        return self.address <= address and address + length <= self.address + self.length


@dataclass
class WorkRequest:
    """One posted unit of work on a QP's send queue."""

    verb: Verb
    length: int
    wr_id: int = field(default_factory=lambda: next(_wr_ids))
    remote_address: int = 0
    remote_rkey: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("work request length must be positive")


@dataclass
class WorkCompletion:
    """A completion entry delivered to the CQ when a WR finishes."""

    wr_id: int
    verb: Verb
    status: WcStatus
    qp_num: int
    length: int
    #: Simulation timestamps for MCT accounting (ns).
    posted_at: int = 0
    completed_at: int = 0

    @property
    def completion_time_ns(self) -> int:
        return self.completed_at - self.posted_at


class CompletionQueue:
    """A completion queue with optional notification callback.

    The traffic generator either polls (:meth:`poll`) or registers a
    callback; both interfaces exist because the requester's barrier
    logic is callback-driven while tests prefer polling.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("CQ capacity must be positive")
        self.capacity = capacity
        self._entries: List[WorkCompletion] = []
        self._callback: Optional[Callable[[WorkCompletion], None]] = None
        self.overflows = 0

    def on_completion(self, callback: Optional[Callable[[WorkCompletion], None]]) -> None:
        """Register (or clear) a callback invoked on every new entry."""
        self._callback = callback

    def push(self, wc: WorkCompletion) -> None:
        if len(self._entries) >= self.capacity:
            self.overflows += 1
            return
        self._entries.append(wc)
        if self._callback is not None:
            self._callback(wc)

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Remove and return up to ``max_entries`` completions."""
        taken, self._entries = self._entries[:max_entries], self._entries[max_entries:]
        return taken

    def __len__(self) -> int:
        return len(self._entries)
