"""Behavioural RoCEv2 RNIC model — the hardware network stack under test."""

from .counters import NicCounters, CANONICAL_COUNTERS
from .dcqcn import CnpRateLimiter, DcqcnParams, DcqcnRp
from .ets import EtsQueueConfig, EtsScheduler
from .nic import RdmaNic
from .profiles import (
    CX4_LX,
    CX5,
    CX6_DX,
    E810,
    IDEAL,
    PROFILES,
    CnpLimitMode,
    RnicProfile,
    get_profile,
)
from .qp import QpState, QueuePair, PSN_MASK
from .verbs import (
    CompletionQueue,
    MemoryRegion,
    Verb,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)

__all__ = [
    "NicCounters",
    "CANONICAL_COUNTERS",
    "CnpRateLimiter",
    "DcqcnParams",
    "DcqcnRp",
    "EtsQueueConfig",
    "EtsScheduler",
    "RdmaNic",
    "CX4_LX",
    "CX5",
    "CX6_DX",
    "E810",
    "IDEAL",
    "PROFILES",
    "CnpLimitMode",
    "RnicProfile",
    "get_profile",
    "QpState",
    "QueuePair",
    "PSN_MASK",
    "CompletionQueue",
    "MemoryRegion",
    "Verb",
    "WcStatus",
    "WorkCompletion",
    "WorkRequest",
]
