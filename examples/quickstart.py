#!/usr/bin/env python3
"""Quickstart: run one Lumina test and look at everything it produced.

Drops the 5th data packet of a Write stream between two simulated
ConnectX-5 NICs, then walks through the collected artefacts: the
reconstructed packet trace, the integrity check, NIC counters and the
built-in analyzers.

Run:  python examples/quickstart.py
"""

from repro import quick_config, run_test
from repro.api import get_analyzer
from repro.core.analyzers import AnalyzerContext


def main() -> None:
    # 1. Describe the test (Listing 1 + 2 style, via the shortcut API).
    config = quick_config(
        nic="cx5",            # NIC model under test on both hosts
        verb="write",         # RDMA verb
        num_msgs=5,           # messages per QP
        message_size=10240,   # bytes -> 10 packets at MTU 1024
        drop_psn=5,           # drop the 5th data packet of connection 1
        seed=1,
    )

    # 2. Run it: builds the two-host + switch + dumper-pool testbed,
    #    installs the event, generates traffic, dumps and reconstructs.
    result = run_test(config)
    print(result.summary())
    print()

    # 3. The packet trace, rebuilt from the dumper pool (§3.5).
    print(f"trace: {len(result.trace)} packets, "
          f"integrity {'PASS' if result.integrity.ok else 'FAIL'}")
    dropped = [p for p in result.trace if p.was_dropped]
    print(f"injected drops visible in trace: "
          f"{[(p.psn, p.iteration) for p in dropped]}")
    naks = result.trace.naks()
    print(f"NAKs on the wire: {[(p.psn) for p in naks]}")
    print()

    # 4. Retransmission-performance analyzer (Fig. 5 breakdown). Every
    #    analyzer shares one protocol: analyze(trace, ctx) returns a
    #    uniform verdict with the rich per-analyzer report on .data.
    ctx = AnalyzerContext.for_result(result)
    for event in get_analyzer("retransmission").analyze(result.trace, ctx).data:
        print(f"drop PSN {event.dropped_psn}:")
        print(f"  NACK generation : {event.nack_generation_ns / 1e3:6.1f} us")
        print(f"  NACK reaction   : {event.nack_reaction_ns / 1e3:6.1f} us")
        print(f"  total recovery  : {event.total_recovery_ns / 1e3:6.1f} us")
    print()

    # 5. Go-back-N logic checker (§4).
    gbn = get_analyzer("gbn").analyze(result.trace, ctx)
    print(f"Go-back-N FSM check: [{gbn.outcome.value}] {gbn.detail}")

    # 6. Counter analyzer: NIC counters vs wire-derived expectations.
    counters = get_analyzer("counters").analyze(result.trace, ctx)
    print(f"counter check: [{counters.outcome.value}] {counters.detail}")

    # 7. Raw counters as an operator would see them (vendor names).
    req = result.requester_counters.vendor
    print(f"requester packet_seq_err={req['packet_seq_err']} "
          f"local_ack_timeout_err={req['local_ack_timeout_err']}")


if __name__ == "__main__":
    main()
