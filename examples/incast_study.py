#!/usr/bin/env python3
"""Incast congestion study on the N-to-1 extension topology.

§6.2.2 observes that "concurrent packet drops are common in incast
congestion". This study builds a real fan-in (each sender on its own
switch port) and sweeps the sender count under three regimes, showing
why the retransmission micro-behaviours Lumina measures matter:

* deep buffers        — the queue absorbs everything, fair sharing;
* shallow buffers     — tail drops trigger Go-back-N storms, fairness
                        collapses, goodput burns on replays;
* DCQCN + ECN marking — backpressure keeps the queue bounded without
                        any loss.

Run:  python examples/incast_study.py
"""

from repro.core.incast import IncastConfig, run_incast


def run(senders: int, regime: str, seed: int = 55):
    kwargs = {}
    if regime == "shallow":
        kwargs["receiver_queue_bytes"] = 200 * 1024
    elif regime == "dcqcn":
        kwargs["ecn_threshold_kb"] = 100
    return run_incast(IncastConfig(
        num_senders=senders, nic_type="cx6", num_msgs_per_sender=6,
        message_size=256 * 1024, seed=seed, **kwargs))


def main() -> None:
    print("N senders x 100G -> one 100G receiver, 6x256KB Writes each")
    print()
    header = (f"{'senders':>8s} {'regime':>9s} {'aggregate':>10s} "
              f"{'fairness':>9s} {'retransmits':>12s} {'drops':>6s}")
    print(header)
    print("-" * len(header))
    for senders in (2, 4, 8):
        for regime in ("deep", "shallow", "dcqcn"):
            result = run(senders, regime)
            drops = sum(p["tx_drops"]
                        for p in result.switch_counters["ports"].values())
            print(f"{senders:>8d} {regime:>9s} "
                  f"{result.aggregate_goodput_bps / 1e9:>9.1f}G "
                  f"{result.fairness:>9.2f} "
                  f"{sum(result.per_sender_retransmits.values()):>12d} "
                  f"{drops:>6d}")
        print()
    print("Reading: shallow buffers are where a NIC's loss-recovery speed")
    print("decides everything (compare the CX4-vs-CX5 recovery latencies")
    print("from examples/retransmission_study.py); DCQCN avoids the loss")
    print("entirely at the cost of conservative rate recovery.")


if __name__ == "__main__":
    main()
