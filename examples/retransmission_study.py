#!/usr/bin/env python3
"""Retransmission micro-behaviour study across NIC models (§6.1).

Reproduces the Fig. 8/9 methodology at small scale: for each NIC and
verb, drop one packet of a 100 KB message and break the recovery into
NACK generation (receiver side) and NACK reaction (sender side) using
only switch timestamps from the mirrored trace.

Run:  python examples/retransmission_study.py
"""

from repro.core.analyzers import AnalyzerContext, get_analyzer
from repro.core.config import (
    DataPacketEvent,
    DumperPoolConfig,
    HostConfig,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test

NICS = ("cx4", "cx5", "cx6", "e810")
VERBS = ("write", "read")


def measure(nic: str, verb: str, drop_psn: int = 50, seed: int = 3):
    traffic = TrafficConfig(
        num_connections=1, rdma_verb=verb, num_msgs_per_qp=2,
        message_size=102400, mtu=1024,
        min_retransmit_timeout=17,  # keep the RTO out of the way
        data_pkt_events=(DataPacketEvent(qpn=1, psn=drop_psn, type="drop"),),
    )
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic, seed=seed,
        dumpers=DumperPoolConfig(num_servers=3),
    )
    result = run_test(config)
    assert result.integrity.ok, "incomplete capture - rerun"
    analysis = get_analyzer("retransmission").analyze(
        result.trace, AnalyzerContext.for_result(result))
    return analysis.data[0]


def fmt_us(ns) -> str:
    if ns is None:
        return "      -"
    us = ns / 1e3
    return f"{us:>9.1f}" if us < 10_000 else f"{us / 1e3:>7.1f}ms"


def main() -> None:
    print("Go-back-N recovery breakdown (drop PSN 50 of a 100 KB message)")
    print()
    header = f"{'nic':>5s} {'verb':>6s} {'NACK-gen':>10s} {'NACK-react':>11s} {'total':>10s}"
    print(header)
    print("-" * len(header))
    for verb in VERBS:
        for nic in NICS:
            event = measure(nic, verb)
            print(f"{nic:>5s} {verb:>6s} {fmt_us(event.nack_generation_ns):>10s}"
                  f" {fmt_us(event.nack_reaction_ns):>11s}"
                  f" {fmt_us(event.total_recovery_ns):>10s}")
        print()
    print("Observations (match §6.1):")
    print(" * CX5/CX6 recover in single-digit microseconds.")
    print(" * CX4 Lx reaction is ~170 us -> total ~200 us, about 100 RTTs.")
    print(" * Read loss detection on E810 takes ~83 ms - a hidden slow")
    print("   path for out-of-order Read responses.")


if __name__ == "__main__":
    main()
