#!/usr/bin/env python3
"""Automatic bug hunting with the genetic fuzzer (§4, Algorithm 1).

Points the fuzzer at two targets:

1. A general target on an E810 pair ("find anything anomalous") — it
   quickly trips over the stuck ``cnpSent`` counter (§6.2.4).
2. A noisy-neighbor-shaped target on CX4 Lx: the mutation pool includes
   a "spread drops across connections" operator, which is how the
   paper's fuzzer found that concurrent Read losses stall the pipeline
   and hurt innocent connections (§6.2.2).

Run:  python examples/fuzz_for_bugs.py
"""

from repro import quick_config, run_fuzz_campaign
from repro.core.config import TrafficConfig
from repro.core.fuzz import LuminaFuzzer


def hunt_general_e810() -> None:
    print("=== target 1: general anomaly hunt on an E810 pair ===")
    base = quick_config(nic="e810", verb="write", num_msgs=2,
                        message_size=10240, num_connections=2)
    # The one-call facade; pass campaign_dir= to make the hunt
    # resumable and its runs replayable from the on-disk store.
    report = run_fuzz_campaign(base, iterations=15, seed=7,
                               anomaly_threshold=2.5)
    print(f"iterations: {report.iterations_run}, "
          f"findings: {len(report.findings)}, "
          f"invalid runs: {report.invalid_runs}")
    for finding in report.findings[:5]:
        print(" ", finding.summary())
    print()


def hunt_noisy_neighbor() -> None:
    print("=== target 2: cross-connection interference on CX4 Lx ===")
    # Seed the pool with a Read-heavy multi-connection workload so the
    # search space matches the specific target (§4: "the search space
    # is smaller for more specific targets").
    seed_traffic = TrafficConfig(num_connections=24, rdma_verb="read",
                                 num_msgs_per_qp=3, message_size=20480,
                                 mtu=1024)
    base = quick_config(nic="cx4", verb="read", num_msgs=3,
                        message_size=20480, num_connections=24)
    fuzzer = LuminaFuzzer(base, seed=13, anomaly_threshold=5.0,
                          initial_pool=[seed_traffic])
    report = fuzzer.run(iterations=20, stop_on_first=True)
    if not report.found_anomaly:
        print("no anomaly found within the iteration budget")
        return
    finding = report.best
    print(f"anomaly found at iteration {finding.iteration} "
          f"(score {finding.score.total:.1f}):")
    for line in finding.score.anomalies:
        print("  -", line)
    traffic = finding.config.traffic
    drops = [e for e in traffic.data_pkt_events if e.type == "drop"]
    print(f"trigger: {traffic.rdma_verb} traffic, "
          f"{traffic.num_connections} connections, "
          f"{len(drops)} injected drops on connections "
          f"{sorted({e.qpn for e in drops})}")
    print("=> concurrent Read losses on many connections degrade")
    print("   connections with no injected events at all - the noisy")
    print("   neighbor behaviour of §6.2.2.")


def main() -> None:
    hunt_general_e810()
    hunt_noisy_neighbor()


if __name__ == "__main__":
    main()
