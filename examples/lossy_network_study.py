#!/usr/bin/env python3
"""Lossy RoCE study (§2 + §7 discussion).

§2 recounts how end-to-end testing concluded that ConnectX-4 "provides
solid performance even in the presence of packet drops" — while Lumina
shows its per-loss recovery takes ~200 µs (~100 RTTs). This study makes
the connection explicit: sweep a deterministic loss rate (drop every
Nth packet, the reproducible stand-in for "N⁻¹ loss") and watch how
goodput degrades per NIC. NICs with fast Go-back-N recovery (CX5/CX6)
tolerate loss far better than CX4 Lx or E810.

Also demonstrates the §7 extension events: the same sweep with *delay*
instead of loss shows reordering-tolerance without retransmission cost.

Run:  python examples/lossy_network_study.py
"""

from repro.core.analyzers import mct_stats
from repro.core.config import (
    DataPacketEvent,
    DumperPoolConfig,
    HostConfig,
    PeriodicDropIntent,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test

NICS = ("cx4", "cx5", "cx6", "e810")
LOSS_PERIODS = (0, 1000, 200, 100)   # 0 = lossless; else drop every Nth


def run_lossy(nic: str, period: int, seed: int = 19):
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=10,
        message_size=102400, mtu=1024, barrier_sync=False, tx_depth=2,
        min_retransmit_timeout=17,
        periodic_events=(PeriodicDropIntent(qpn=1, period=period),)
        if period else (),
    )
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic, seed=seed, dumpers=DumperPoolConfig(num_servers=3),
    )
    result = run_test(config)
    return result.traffic_log.total_goodput_bps() / 1e9


def run_delay_sweep(nic: str, delay_us: float, seed: int = 23):
    """Same position in the stream, but delayed instead of dropped."""
    traffic = TrafficConfig(
        num_connections=1, rdma_verb="write", num_msgs_per_qp=10,
        message_size=102400, mtu=1024, barrier_sync=False, tx_depth=2,
        data_pkt_events=tuple(
            DataPacketEvent(qpn=1, psn=p, type="delay", delay_us=delay_us)
            for p in range(100, 1001, 100)),
    )
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic, seed=seed, dumpers=DumperPoolConfig(num_servers=3),
    )
    result = run_test(config)
    stats = mct_stats(result.traffic_log.all_messages)
    return stats.mean_us if stats else 0.0


def main() -> None:
    print("goodput (Gbps) under deterministic loss (drop every Nth packet)")
    header = "nic     " + "".join(
        f"{'lossless' if p == 0 else '1/' + str(p):>10s}" for p in LOSS_PERIODS)
    print(header)
    print("-" * len(header))
    for nic in NICS:
        row = [f"{nic:<6s}  "]
        for period in LOSS_PERIODS:
            row.append(f"{run_lossy(nic, period):>10.1f}")
        print("".join(row))
    print()
    print("mean MCT (us) when every 100th packet is *delayed* 20us instead")
    for nic in ("cx4", "cx5"):
        print(f"  {nic}: {run_delay_sweep(nic, 20.0):.1f} us "
              f"(recovery by NAK + late duplicate, no timeout)")
    print()
    print("Takeaway (matches §6.1): the slower a NIC's loss recovery,")
    print("the faster its goodput collapses as loss increases - CX5/CX6")
    print("keep most of their goodput at 1% loss, CX4 Lx and E810 do not.")


if __name__ == "__main__":
    main()
