#!/usr/bin/env python3
"""Testing ETS work conservation (§6.2.1, Fig. 10).

Three experiments with two QPs sending 1 MB Writes under DCQCN:

1. multi-queue vanilla      — two ETS queues, 50/50 weights, no marks;
2. multi-queue + ECN on QP0 — DCQCN throttles QP0; a work-conserving
   scheduler should hand the spare bandwidth to QP1;
3. single queue + ECN on QP0 — both QPs in one queue (control).

On the CX6 Dx model QP1 stays pinned at its 50% guarantee in
experiment 2 — the vendor-confirmed non-work-conserving ETS bug.

Run:  python examples/ets_work_conservation.py
"""

from repro.core.analyzers import per_qp_goodput_gbps
from repro.core.config import (
    DumperPoolConfig,
    EtsConfig,
    EtsQueueSpec,
    HostConfig,
    PeriodicEcnIntent,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import run_test

SETTINGS = {
    "multi-queue vanilla": dict(multi_queue=True, mark=False),
    "multi-queue w/ ECN": dict(multi_queue=True, mark=True),
    "single-queue w/ ECN": dict(multi_queue=False, mark=True),
}


def run_setting(nic: str, multi_queue: bool, mark: bool, seed: int = 5):
    if multi_queue:
        ets = EtsConfig(queues=(EtsQueueSpec(0, 50.0), EtsQueueSpec(1, 50.0)),
                        qp_to_queue={1: 0, 2: 1})
    else:
        ets = EtsConfig(queues=(EtsQueueSpec(0, 100.0),),
                        qp_to_queue={1: 0, 2: 0})
    traffic = TrafficConfig(
        num_connections=2, rdma_verb="write", num_msgs_per_qp=12,
        message_size=1024 * 1024, mtu=1024, barrier_sync=False, tx_depth=2,
        periodic_events=(PeriodicEcnIntent(qpn=1, period=50),) if mark else (),
        ets=ets,
    )
    config = TestConfig(
        requester=HostConfig(nic_type=nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=nic, ip_list=("10.0.0.2/24",)),
        traffic=traffic, seed=seed, dumpers=DumperPoolConfig(num_servers=3),
    )
    return per_qp_goodput_gbps(run_test(config).traffic_log)


def main() -> None:
    for nic in ("cx6", "cx5"):
        print(f"=== {nic} ===")
        for name, params in SETTINGS.items():
            goodput = run_setting(nic, **params)
            print(f"  {name:<22s} QP0 {goodput[1]:5.1f} Gbps   "
                  f"QP1 {goodput[2]:5.1f} Gbps")
        print()
    print("Expectation per the ETS spec: in 'multi-queue w/ ECN' QP1")
    print("should absorb the bandwidth DCQCN takes away from QP0.")
    print("On cx6 it cannot (non-work-conserving bug, §6.2.1); on cx5 it")
    print("does. The single-queue control works on both.")


if __name__ == "__main__":
    main()
