#!/usr/bin/env python3
"""Debugging the CX5/E810 interoperability problem (§6.2.3).

Walks the exact diagnostic path the paper describes:

1. Run plain Send traffic from E810 to CX5 with 16 QPs — observe
   rx_discards_phy on the CX5 and timeout-inflated completion times.
2. Confirm the control case: CX5 -> CX5 is clean.
3. Inspect the dumped trace — E810's packets carry MigReq=0 while
   CX5's carry MigReq=1 (IB spec says the initial state is 1).
4. Extend the event injector with a rewrite action setting MigReq=1
   on all packets from the E810 — the discards disappear, confirming
   the hypothesis.

Run:  python examples/interop_debugging.py
"""

from repro.core.config import (
    DumperPoolConfig,
    HostConfig,
    TestConfig,
    TrafficConfig,
)
from repro.core.orchestrator import Orchestrator
from repro.net.addressing import int_to_ip
from repro.switch.events import RewriteRule


def build_config(req_nic: str, resp_nic: str, qps: int = 16,
                 seed: int = 21) -> TestConfig:
    return TestConfig(
        requester=HostConfig(nic_type=req_nic, ip_list=("10.0.0.1/24",)),
        responder=HostConfig(nic_type=resp_nic, ip_list=("10.0.0.2/24",)),
        traffic=TrafficConfig(num_connections=qps, rdma_verb="send",
                              num_msgs_per_qp=5, message_size=102400,
                              mtu=1024, barrier_sync=True),
        dumpers=DumperPoolConfig(num_servers=3),
        seed=seed,
        max_duration_ns=120_000_000_000,
    )


def report(tag: str, result) -> None:
    messages = [m for m in result.traffic_log.all_messages if m.ok]
    slow = [m for m in messages if m.completion_time_ns > 1_000_000]
    clean = [m for m in messages if m.completion_time_ns <= 1_000_000]
    avg = lambda xs: sum(x.completion_time_ns for x in xs) / len(xs) / 1e3 if xs else 0
    print(f"{tag}: rx_discards_phy="
          f"{result.responder_counters['rx_discards_phy']}, "
          f"clean MCT {avg(clean):.0f}us, "
          f"affected MCT {avg(slow):.0f}us ({len(slow)} messages)")


def main() -> None:
    print("step 1: E810 -> CX5, 16 QPs, five 100KB Sends per QP")
    broken = Orchestrator(build_config("e810", "cx5")).run()
    report("  e810->cx5", broken)

    print("step 2: control case")
    control = Orchestrator(build_config("cx5", "cx5")).run()
    report("  cx5->cx5 ", control)

    print("step 3: inspect the dumped trace")
    sample = broken.trace.data_packets()[0]
    print(f"  first data packet from {int_to_ip(sample.record.ip.src_ip)}: "
          f"MigReq={int(sample.record.bth.migreq)}")
    control_pkt = control.trace.data_packets()[0]
    print(f"  CX5-generated packets carry MigReq="
          f"{int(control_pkt.record.bth.migreq)} "
          f"(IB spec initial state: 1)")
    print("  hypothesis: MigReq=0 triggers a slow path in CX5's APM logic")

    print("step 4: extend the injector - rewrite MigReq=1 for E810 traffic")
    fix = RewriteRule(field_name="migreq", value=1,
                      src_ip=sample.record.ip.src_ip)
    fixed = Orchestrator(build_config("e810", "cx5"),
                         rewrite_rules=[fix]).run()
    report("  with fix ", fixed)

    assert fixed.responder_counters["rx_discards_phy"] == 0
    print()
    print("conclusion: once MigReq is forced to 1, CX5 stops discarding -")
    print("the interoperability problem is the APM slow path (§6.2.3).")


if __name__ == "__main__":
    main()
