#!/usr/bin/env python3
"""Conformance scorecards for every NIC model.

The paper's conclusion calls for "a comprehensive suite of testing
tools and an ImageNet-like benchmark" for hardware network stacks
(§1). This example runs that standardised battery — twelve wire-
evidence checks derived from the IB/DCQCN/ETS specs — against each NIC
model and prints the scorecards side by side.

Run:  python examples/conformance_scorecard.py
      python -m repro suite cx6        # same thing for one NIC
"""

from repro import run_suite
from repro.core.suite import CHECKS

NICS = ("ideal", "cx4", "cx5", "cx6", "e810")


def main() -> None:
    cards = {nic: run_suite(nic) for nic in NICS}

    # Matrix view: one row per check, one column per NIC.
    name_width = max(len(name) for name in CHECKS) + 2
    header = " " * name_width + "".join(f"{nic:>7s}" for nic in NICS)
    print(header)
    print("-" * len(header))
    for name in CHECKS:
        row = f"{name:<{name_width}s}"
        for nic in NICS:
            result = next(r for r in cards[nic].results if r.name == name)
            row += f"{'ok' if result.passed else 'FAIL':>7s}"
        print(row)
    print("-" * len(header))
    totals = " " * name_width + "".join(
        f"{cards[nic].passed:>4d}/{cards[nic].total}" for nic in NICS)
    print(totals)
    print()

    # Failure details, per NIC.
    for nic in NICS:
        failures = cards[nic].failures()
        if not failures:
            continue
        print(f"{nic} failures:")
        for result in failures:
            print(f"  {result.name}: {result.detail}")
    print()
    print("Cross-check with Table 2: CX6 fails exactly the ETS check;")
    print("CX4 fails counters + isolation (+ its slow recovery budget);")
    print("E810 fails counters + the Read recovery budget; CX5 and the")
    print("ideal reference pass everything on a same-NIC testbed.")


if __name__ == "__main__":
    main()
